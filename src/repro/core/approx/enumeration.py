"""Parameter-space enumeration: regenerating tuples from a captured model.

§4.2 of the paper: a model can only replace a scan if every input the model
needs can be *enumerated* without reading the raw data.  Group keys come for
free (they are stored in the parameter table); other inputs are enumerable
when they are categorical / low-cardinality ("our telescope only creates
observations at a small set of frequencies, so ν would only assume values in
{0.12, 0.15, 0.16, 0.18}") or when the query itself pins them with equality
predicates.  This module decides enumerability, builds the value grid, and
materialises the model-generated ("gridded") virtual table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.captured_model import CapturedModel
from repro.db.column import Column
from repro.db.schema import ColumnDef, Schema
from repro.db.stats import TableStats
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import EnumerationError

__all__ = ["EnumerationPlan", "build_enumeration_plan", "generate_virtual_table"]

#: Refuse to materialise virtual tables larger than this many rows unless the
#: caller raises the cap explicitly; protects against combinatorial blow-up.
DEFAULT_MAX_ROWS = 2_000_000


@dataclass
class EnumerationPlan:
    """Concrete value domains for every column the model needs."""

    model: CapturedModel
    #: group-key tuples taken from the stored parameter table
    group_keys: list[tuple[Any, ...]]
    #: input column name -> list of values to enumerate
    input_domains: dict[str, list[float]] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        rows = max(len(self.group_keys), 1) if self.model.group_columns else 1
        for values in self.input_domains.values():
            rows *= max(len(values), 1)
        return rows

    def describe(self) -> str:
        parts = []
        if self.model.group_columns:
            parts.append(f"{len(self.group_keys)} group keys")
        for name, values in self.input_domains.items():
            parts.append(f"{name}: {len(values)} values")
        return ", ".join(parts) or "(empty plan)"


def build_enumeration_plan(
    model: CapturedModel,
    table_stats: TableStats,
    pinned_values: Mapping[str, Sequence[Any]] | None = None,
    max_rows: int = DEFAULT_MAX_ROWS,
) -> EnumerationPlan:
    """Work out how to enumerate every input the model requires.

    ``pinned_values`` carries values fixed by the query's equality / IN
    predicates; any remaining input column must be enumerable from the
    catalog statistics (a known small domain), otherwise
    :class:`~repro.errors.EnumerationError` is raised — the paper's "we
    might as well use the raw data directly" case.
    """
    pinned = {name: list(values) for name, values in (pinned_values or {}).items()}

    group_keys = _group_keys(model, pinned)
    _check_group_coverage(model, table_stats, pinned)
    input_domains: dict[str, list[float]] = {}
    for name in model.input_columns:
        if name in pinned:
            try:
                input_domains[name] = [float(v) for v in pinned[name]]
            except (TypeError, ValueError):
                raise EnumerationError(
                    f"input column {name!r} is pinned to a non-numeric value; "
                    "the model cannot be evaluated there"
                ) from None
            continue
        stats = table_stats.columns.get(name)
        if stats is None or not stats.is_enumerable or stats.domain is None:
            raise EnumerationError(
                f"input column {name!r} is not enumerable (unknown or high-cardinality domain) "
                "and the query does not pin its value"
            )
        input_domains[name] = [float(v) for v in stats.domain]

    plan = EnumerationPlan(model=model, group_keys=group_keys, input_domains=input_domains)
    if plan.num_rows > max_rows:
        raise EnumerationError(
            f"enumerating the parameter space would generate {plan.num_rows} rows "
            f"(> max_rows={max_rows}); refusing to materialise"
        )
    return plan


def _check_group_coverage(
    model: CapturedModel, table_stats: TableStats, pinned: dict[str, list[Any]]
) -> None:
    """Refuse to enumerate when group values appeared after the capture.

    The parameter table can only regenerate tuples for groups it has
    parameters for; if the catalog's current domain of a group column holds
    values the capture never saw (e.g. a brand-new entity that streamed in
    while the model is stale), the model-generated table would silently drop
    those rows.
    """
    if not model.is_grouped:
        return
    for position, column in enumerate(model.group_columns):
        column_stats = table_stats.columns.get(column)
        if column_stats is None or column_stats.domain is None:
            continue
        seen = {record.key[position] for record in model.fit.records}  # type: ignore[union-attr]
        allowed = pinned.get(column)
        new_values = [
            v
            for v in column_stats.domain
            if v not in seen and (allowed is None or v in allowed)
        ]
        if new_values:
            raise EnumerationError(
                f"group column {column!r} holds values {new_values[:5]} that appeared "
                f"after model {model.model_id} was captured; their tuples cannot be "
                "regenerated from the stored parameters"
            )


def _group_keys(model: CapturedModel, pinned: dict[str, list[Any]]) -> list[tuple[Any, ...]]:
    if not model.group_columns:
        return []
    if model.is_grouped:
        keys = [record.key for record in model.fit.records if record.result is not None]  # type: ignore[union-attr]
    else:  # pragma: no cover - grouped coverage always has a grouped fit
        keys = []
    # Apply pinning on group columns (e.g. WHERE source = 42).
    for position, column in enumerate(model.group_columns):
        if column in pinned:
            allowed = set(pinned[column])
            keys = [key for key in keys if key[position] in allowed]
    return keys


def generate_virtual_table(
    model: CapturedModel,
    plan: EnumerationPlan,
    table_name: str | None = None,
    include_error_column: bool = False,
) -> Table:
    """Materialise the model-generated table over the enumeration plan.

    The output has the model's group columns, input columns and predicted
    output column — the same shape as the raw table restricted to those
    columns, so the rest of the query plan can run against it unchanged.
    """
    group_columns = list(model.group_columns)
    input_columns = list(model.input_columns)
    input_values = [plan.input_domains[name] for name in input_columns]

    rows_group: list[tuple[Any, ...]] = []
    rows_inputs: list[tuple[float, ...]] = []
    predictions: list[float] = []
    errors: list[float] = []

    input_product = list(itertools.product(*input_values)) if input_values else [tuple()]

    if group_columns:
        for key in plan.group_keys:
            fit = model.result_for_group(key)
            if input_product:
                inputs_arrays = {
                    name: np.array([combo[i] for combo in input_product], dtype=np.float64)
                    for i, name in enumerate(input_columns)
                }
                predicted = fit.predict(inputs_arrays)
            else:
                predicted = np.array([])
            for combo, value in zip(input_product, predicted):
                rows_group.append(key)
                rows_inputs.append(combo)
                predictions.append(float(value))
                errors.append(fit.residual_standard_error)
    else:
        fit = model.fit  # type: ignore[assignment]
        inputs_arrays = {
            name: np.array([combo[i] for combo in input_product], dtype=np.float64)
            for i, name in enumerate(input_columns)
        }
        predicted = fit.predict(inputs_arrays) if input_product else np.array([])
        for combo, value in zip(input_product, predicted):
            rows_group.append(tuple())
            rows_inputs.append(combo)
            predictions.append(float(value))
            errors.append(fit.residual_standard_error)

    defs: list[ColumnDef] = []
    columns: dict[str, Column] = {}

    for position, column in enumerate(group_columns):
        values = [key[position] for key in rows_group]
        dtype = DataType.infer_common(values) if values else DataType.INT64
        defs.append(ColumnDef(column, dtype))
        columns[column] = Column.from_values(dtype, values)

    for position, column in enumerate(input_columns):
        values = [combo[position] for combo in rows_inputs]
        defs.append(ColumnDef(column, DataType.FLOAT64))
        columns[column] = Column.from_values(DataType.FLOAT64, values)

    defs.append(ColumnDef(model.output_column, DataType.FLOAT64))
    columns[model.output_column] = Column.from_values(DataType.FLOAT64, predictions)

    if include_error_column:
        error_name = f"{model.output_column}_error"
        defs.append(ColumnDef(error_name, DataType.FLOAT64))
        columns[error_name] = Column.from_values(DataType.FLOAT64, errors)

    name = table_name or model.table_name
    return Table(name, Schema(defs), columns)
