"""The range answer route: aggregates restricted by range predicates.

``SELECT SUM(y) FROM t WHERE x BETWEEN a AND b`` used to fall back to exact
execution whenever ``x`` was not pinned by an equality.  This route answers
it from the captured model instead, by restricting the model's input domain
to the queried range:

* enumerable inputs are evaluated over the *clipped* domain (the LOFAR
  frequencies inside ``[a, b]``), row-weighted like the grouped route;
* continuous inputs of closed-form-friendly families are integrated
  analytically over the clipped interval, with the covered row count
  estimated from the catalog's selectivity model;
* grouped models are combined across their (predicate-admitted) groups —
  sums add, averages weight by per-group covered rows, extremes take the
  extreme of the per-group extremes — with error estimates propagated
  accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.approx.aggregates import supports_analytic
from repro.core.approx.error_bounds import combine_independent, extreme_value_error
from repro.core.approx.aggregates import _corner_grid, _dense_grid
from repro.core.approx.routes.aggcalc import (
    ItemSpec,
    _as_floats,
    aggregate_value_error,
    analyse_select_items,
    build_result_table,
    current_group_rows,
    evaluate_fit_over_domains,
    growth_scale,
    restricted_domains,
    staleness_rows,
)
from repro.core.approx.routes.constraints import WhereConstraints, extract_constraints
from repro.core.captured_model import CapturedModel
from repro.db.sql.ast import SelectStatement
from repro.db.stats import TableStats
from repro.db.table import Table
from repro.fitting.families import Constant, Exponential, LinearModel, PowerLaw
from repro.fitting.model import FitResult

__all__ = ["RangeAnswer", "analyse_range_statement", "answer_range"]


@dataclass
class RangeAnswer:
    """An aggregate over a range-restricted domain answered from a model."""

    table: Table
    route: str  # "range-aggregate"
    used_model_ids: list[int]
    reason: str
    column_errors: dict[str, float]
    virtual_rows_generated: int
    #: Estimated raw rows the range restriction covers.
    covered_rows: float


def analyse_range_statement(
    statement: SelectStatement,
    model: CapturedModel,
) -> tuple[list[ItemSpec], WhereConstraints] | None:
    """The shape gate of the range route, shared with the unified planner.

    Returns the analysed select items plus WHERE constraints when this route
    *could* serve the statement from ``model``: an ungrouped aggregate whose
    predicates restrict only columns the model covers, with at least one
    genuine range (interval) restriction.  None means the statement belongs
    to another route.
    """
    if statement.group_by or statement.having is not None or statement.distinct:
        return None
    if statement.order_by:
        return None

    analysed = analyse_select_items(statement, group_columns=())
    if analysed is None:
        return None
    specs, output_column = analysed
    if output_column != model.output_column:
        return None

    constraints = extract_constraints(statement.where)
    if not constraints.fully_analysed:
        return None
    if constraints.constrains(output_column):
        return None
    meaningful = set(model.input_columns) | set(model.group_columns)
    if any(column not in meaningful for column in constraints.by_column):
        return None
    if not any(
        constraints.by_column[column].has_interval for column in constraints.by_column
    ):
        # Equality/IN-only restrictions stay on the point/enumeration routes.
        return None
    return specs, constraints


def answer_range(
    statement: SelectStatement,
    model: CapturedModel,
    stats: TableStats,
) -> RangeAnswer | None:
    """Try to answer an ungrouped aggregate with range predicates from ``model``.

    Returns None when the statement shape is outside this route — no range
    predicate (equality-only queries keep their existing routes), residual
    conjuncts the analysis cannot express, or predicates over the modelled
    output column (which need per-row filtering).
    """
    analysed_range = analyse_range_statement(statement, model)
    if analysed_range is None:
        return None
    specs, constraints = analysed_range

    if model.is_grouped:
        result = _combine_groups(specs, model, stats, constraints)
    else:
        result = _ungrouped(specs, model, stats, constraints)
    if result is None:
        return None
    values, errors, virtual_rows, covered, detail = result

    table = build_result_table(specs, {spec.name: [values[spec.name]] for spec in specs})
    if statement.limit is not None:
        table = table.slice(statement.offset, statement.offset + statement.limit)

    return RangeAnswer(
        table=table,
        route="range-aggregate",
        used_model_ids=[model.model_id],
        reason=f"model evaluated over range-restricted domain ({detail})",
        column_errors=errors,
        virtual_rows_generated=virtual_rows,
        covered_rows=covered,
    )


# ---------------------------------------------------------------------------
# Ungrouped models
# ---------------------------------------------------------------------------


def _ungrouped(
    specs: list[ItemSpec],
    model: CapturedModel,
    stats: TableStats,
    constraints: WhereConstraints,
):
    restricted = restricted_domains(model, stats, constraints)
    if restricted is not None:
        evaluation = evaluate_fit_over_domains(
            model.fit,  # type: ignore[arg-type]
            model,
            restricted,
            fitted_observations=stats.row_count,
            scale=1.0,
            stale_rows=0.0,  # cardinality comes from live statistics
            output_null_fraction=_output_null_fraction(model, stats),
        )
        if evaluation.n_points == 0:
            return _empty_result(specs)
        values: dict[str, Any] = {}
        errors: dict[str, float] = {}
        for spec in specs:
            value, error = aggregate_value_error(
                spec.function, evaluation, count_star=spec.argument is None
            )
            values[spec.name] = value
            errors[spec.name] = error
        detail = f"enumerated {evaluation.n_points} restricted domain point(s)"
        return values, errors, evaluation.n_points, evaluation.covered_rows, detail
    return _analytic_ranges(specs, model, stats, constraints)


def _analytic_ranges(
    specs: list[ItemSpec],
    model: CapturedModel,
    stats: TableStats,
    constraints: WhereConstraints,
):
    """Integrate a continuous-input model over the clipped input box."""
    if not supports_analytic(model):
        return None
    fit: FitResult = model.fit  # type: ignore[assignment]

    input_ranges: dict[str, tuple[float, float]] = {}
    point: dict[str, float] = {}
    fraction = 1.0
    for column in model.input_columns:
        column_stats = stats.columns.get(column)
        if (
            column_stats is None
            or column_stats.min_value is None
            or column_stats.max_value is None
        ):
            return None
        low, high = float(column_stats.min_value), float(column_stats.max_value)
        constraint = constraints.constraint(column)
        if constraint is None:
            input_ranges[column] = (low, high)
            point[column] = float(column_stats.mean) if column_stats.mean is not None else (low + high) / 2.0
        elif constraint.is_pinned:
            # A non-numeric pin is a type error the exact engine raises on.
            if _as_floats(constraint.values) is None:
                return None
            # admits() also applies any interval bounds pinned alongside
            # (e.g. ``x IN (2, 8) AND x < 5`` keeps only 2).
            pinned = [float(v) for v in constraint.values if constraint.admits(v)]
            if not pinned:
                return _empty_result(specs)
            input_ranges[column] = (min(pinned), max(pinned))
            point[column] = float(np.mean(pinned))
            fraction *= sum(column_stats.selectivity_equals(v) for v in pinned)
        else:
            clipped = constraint.clip_interval(low, high)
            if clipped is None:
                return _empty_result(specs)
            input_ranges[column] = clipped
            point[column] = (clipped[0] + clipped[1]) / 2.0
            fraction *= column_stats.selectivity_range(clipped[0], clipped[1])

    row_count = stats.row_count
    est_rows = row_count * fraction
    # Binomial allowance for the selectivity estimate under uniformity.
    rows_error = math.sqrt(max(row_count, 1) * fraction * max(1.0 - fraction, 0.0))
    if est_rows <= 0:
        return _empty_result(specs)

    # ``is_linear`` means linear in the *parameters* (a Polynomial is); the
    # shortcuts here need stronger properties: corner extremes need
    # monotonicity in each input, the midpoint average needs linearity in
    # the inputs.  Everything else gets the dense interior scan.
    family = fit.family
    linear_in_inputs = isinstance(family, (Constant, LinearModel))
    monotone = linear_in_inputs or isinstance(family, (Exponential, PowerLaw))
    grid_predictions: np.ndarray | None = None
    if not monotone or not linear_in_inputs:
        grid = _dense_grid(model.input_columns, input_ranges)
        grid_predictions = np.asarray(fit.predict(grid), dtype=np.float64)
    if monotone:
        extremes = _corner_predictions(fit, model.input_columns, input_ranges)
    else:
        extremes = grid_predictions
    span = float(np.max(extremes) - np.min(extremes)) if extremes.size else 0.0
    if linear_in_inputs:
        if model.input_columns:
            avg_value = float(
                fit.predict({name: np.array([point[name]]) for name in model.input_columns})[0]
            )
        else:
            avg_value = float(fit.predict({})[0])
    else:
        avg_value = float(np.mean(grid_predictions))
    rse = fit.residual_standard_error

    n = max(est_rows, 1.0)
    avg_error = math.sqrt(rse * rse * 2.0 / n + span * span / (12.0 * n))
    # Exact COUNT(col)/SUM skip NULL outputs; COUNT(*) counts every row.
    null_fraction = min(max(_output_null_fraction(model, stats), 0.0), 1.0)
    non_null_rows = est_rows * (1.0 - null_fraction)
    null_error = (
        math.sqrt(est_rows * null_fraction * (1.0 - null_fraction))
        if 0.0 < null_fraction < 1.0
        else 0.0
    )
    values: dict[str, Any] = {}
    errors: dict[str, float] = {}
    for spec in specs:
        function = spec.function
        if function == "count":
            if spec.argument is None:
                values[spec.name] = int(round(est_rows))
                errors[spec.name] = rows_error
            else:
                values[spec.name] = int(round(non_null_rows))
                errors[spec.name] = math.hypot(rows_error, null_error)
        elif function == "avg":
            values[spec.name] = avg_value
            errors[spec.name] = avg_error
        elif function == "sum":
            values[spec.name] = avg_value * non_null_rows
            errors[spec.name] = math.sqrt(
                (avg_value * math.hypot(rows_error, null_error)) ** 2
                + (avg_error * non_null_rows) ** 2
            )
        elif function == "min":
            values[spec.name] = float(np.min(extremes))
            errors[spec.name] = extreme_value_error(rse, est_rows)
        elif function == "max":
            values[spec.name] = float(np.max(extremes))
            errors[spec.name] = extreme_value_error(rse, est_rows)
        else:
            return None
    ranges_text = ", ".join(
        f"{name} in [{low:.6g}, {high:.6g}]" for name, (low, high) in input_ranges.items()
    )
    return values, errors, 0, est_rows, f"analytic integration over {ranges_text}"


# ---------------------------------------------------------------------------
# Grouped models (combine per-group answers)
# ---------------------------------------------------------------------------


def _combine_groups(
    specs: list[ItemSpec],
    model: CapturedModel,
    stats: TableStats,
    constraints: WhereConstraints,
):
    # Rows with a NULL group key have no per-group fit but still belong in a
    # global aggregate; combining fitted groups would silently drop them.
    for column in model.group_columns:
        column_stats = stats.columns.get(column)
        if column_stats is not None and column_stats.null_count > 0:
            return None

    restricted = restricted_domains(model, stats, constraints)
    if restricted is None:
        return None
    scale = growth_scale(model, stats)
    stale_allowance = staleness_rows(model, stats)
    live_rows = current_group_rows(stats, model.group_columns)

    group_columns = model.group_columns
    admitted = []
    for record in model.fit.records:  # type: ignore[union-attr]
        if not all(
            constraints.admits(column, record.key[i]) for i, column in enumerate(group_columns)
        ):
            continue
        if live_rows is not None and live_rows.get(record.key, 0.0) <= 0.0:
            # The group no longer holds any rows; it contributes nothing.
            continue
        if record.result is None:
            # A failed per-group fit would silently bias the global
            # aggregate; leave the query to the enumeration/exact paths.
            return None
        admitted.append(record)
    if live_rows is not None:
        # Groups that appeared after the capture have no per-group fit; a
        # combined answer missing their rows would be silently incomplete.
        covered_keys = {record.key for record in admitted}
        for key, count in live_rows.items():
            if count <= 0.0 or key in covered_keys:
                continue
            if all(
                constraints.admits(column, key[i]) for i, column in enumerate(group_columns)
            ):
                return None
    if not admitted:
        return _empty_result(specs)

    evaluations = []
    for record in admitted:
        if live_rows is not None and record.key in live_rows:
            observations, record_scale, record_stale = live_rows[record.key], 1.0, 0.0
        else:
            observations, record_scale, record_stale = (
                record.n_observations,
                scale,
                stale_allowance,
            )
        evaluation = evaluate_fit_over_domains(
            record.result,
            model,
            restricted,
            fitted_observations=observations,
            scale=record_scale,
            stale_rows=record_stale,
            output_null_fraction=_output_null_fraction(model, stats),
        )
        if evaluation.n_points == 0:
            return _empty_result(specs)
        evaluations.append(evaluation)

    per_group: dict[str, list[tuple[Any, float]]] = {}
    for spec in specs:
        per_group[spec.name] = [
            aggregate_value_error(
                spec.function, evaluation, count_star=spec.argument is None
            )
            for evaluation in evaluations
        ]

    total_covered = sum(evaluation.covered_rows for evaluation in evaluations)
    virtual_rows = sum(evaluation.n_points for evaluation in evaluations)
    weights = [
        evaluation.covered_rows / total_covered if total_covered > 0 else 0.0
        for evaluation in evaluations
    ]

    values: dict[str, Any] = {}
    errors: dict[str, float] = {}
    for spec in specs:
        pairs = per_group[spec.name]
        function = spec.function
        if function == "count":
            values[spec.name] = int(sum(v for v, _ in pairs))
            errors[spec.name] = combine_independent([e for _, e in pairs])
        elif function == "sum":
            values[spec.name] = float(sum(v for v, _ in pairs))
            errors[spec.name] = combine_independent([e for _, e in pairs])
        elif function == "avg":
            values[spec.name] = float(sum(w * v for w, (v, _) in zip(weights, pairs)))
            errors[spec.name] = combine_independent(
                [w * e for w, (_, e) in zip(weights, pairs)]
            )
        elif function in ("min", "max"):
            chooser = min if function == "min" else max
            index = chooser(range(len(pairs)), key=lambda i: pairs[i][0])
            values[spec.name] = float(pairs[index][0])
            errors[spec.name] = extreme_value_error(
                evaluations[index].residual_standard_error, max(total_covered, 2.0)
            )
        else:
            return None
    detail = f"combined {len(admitted)} group(s) over restricted domain"
    return values, errors, virtual_rows, total_covered, detail


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _output_null_fraction(model: CapturedModel, stats: TableStats) -> float:
    column_stats = stats.columns.get(model.output_column)
    return column_stats.null_fraction if column_stats is not None else 0.0


def _empty_result(specs: list[ItemSpec]):
    """SQL semantics of a global aggregate over zero rows: COUNT 0, rest NULL."""
    values = {
        spec.name: (0 if spec.function == "count" else None) for spec in specs
    }
    errors = {spec.name: 0.0 for spec in specs}
    return values, errors, 0, 0.0, "restriction covers no rows"


def _corner_predictions(
    fit: FitResult, input_columns: tuple[str, ...], input_ranges: dict[str, tuple[float, float]]
) -> np.ndarray:
    """The fit evaluated at every corner of the (clipped) input box."""
    if not input_columns:
        return np.asarray(fit.predict({}), dtype=np.float64).reshape(-1)[:1]
    return np.asarray(fit.predict(_corner_grid(input_columns, input_ranges)), dtype=np.float64)
