"""Answer routes for grouped and range-predicate approximate queries.

This package holds the machinery the engine uses to answer the two query
shapes the paper's Section 2 workload is built from — ``GROUP BY`` aggregates
and range-predicate aggregates — directly from captured models:

* :mod:`repro.core.approx.routes.constraints` analyses a WHERE clause's
  top-level conjuncts into per-column value/interval constraints;
* :mod:`repro.core.approx.routes.router` decides model-vs-exact *per group*,
  so healthy groups are served from models while uncovered groups are
  computed exactly and merged;
* :mod:`repro.core.approx.routes.grouped` evaluates per-group models
  group-by-group and attaches per-group error estimates;
* :mod:`repro.core.approx.routes.range_agg` answers aggregates restricted by
  range predicates by evaluating/integrating the model over the restricted
  input domain.
"""

from repro.core.approx.routes.constraints import (
    ColumnConstraint,
    WhereConstraints,
    extract_constraints,
)
from repro.core.approx.routes.grouped import GroupedAnswer, answer_grouped
from repro.core.approx.routes.range_agg import RangeAnswer, answer_range
from repro.core.approx.routes.router import (
    GroupAssignment,
    GroupRoutingPlan,
    RoutingPolicy,
    plan_group_routing,
)

__all__ = [
    "ColumnConstraint",
    "WhereConstraints",
    "extract_constraints",
    "GroupAssignment",
    "GroupRoutingPlan",
    "RoutingPolicy",
    "plan_group_routing",
    "GroupedAnswer",
    "answer_grouped",
    "RangeAnswer",
    "answer_range",
]
