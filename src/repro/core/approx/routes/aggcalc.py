"""Shared aggregate evaluation for the grouped and range routes.

Both routes answer ``agg(output_column)`` by evaluating a captured model
over a *restricted* input domain — the catalog's enumerable domain clipped
by the query's value/range constraints — and weighting by the number of raw
rows the restriction is estimated to cover.  This module holds the SELECT
list analysis, the domain restriction, and the value/error computation that
the two routes share.

Row weighting is what makes SUM/COUNT track exact semantics: the virtual
table has one row per enumerated input combination, but the raw table holds
many observations per combination.  A group fitted on ``n`` observations
with a restriction keeping a fraction ``f`` of the input domain covers about
``n * f * growth`` raw rows, where ``growth`` rescales fit-time cardinality
to the table's current row count (so answers stay honest while streaming
appends have marked the model stale).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.approx.error_bounds import aggregate_error, extreme_value_error
from repro.core.approx.routes.constraints import WhereConstraints, bare_name as _bare
from repro.core.captured_model import CapturedModel
from repro.db.column import Column
from repro.db.expressions import ColumnRef, FunctionCall
from repro.db.schema import ColumnDef, Schema
from repro.db.sql.ast import SelectStatement, Star
from repro.db.stats import TableStats
from repro.db.table import Table
from repro.db.types import DataType
from repro.fitting.model import FitResult

__all__ = [
    "ROUTE_AGGREGATES",
    "ItemSpec",
    "analyse_select_items",
    "DomainRestriction",
    "restricted_domains",
    "current_group_rows",
    "growth_scale",
    "staleness_rows",
    "build_result_table",
    "DomainEvaluation",
    "evaluate_fit_over_domains",
    "aggregate_value_error",
]

#: Aggregate functions the model-backed routes know how to weight.
ROUTE_AGGREGATES = {"count", "sum", "avg", "min", "max"}


@dataclass(frozen=True)
class ItemSpec:
    """One analysed SELECT item: a group key or a supported aggregate."""

    kind: str  # "group" | "aggregate"
    name: str  # output column name (alias or planner-compatible default)
    function: str | None = None
    #: Aggregate argument column (None for COUNT(*)).
    argument: str | None = None
    group_column: str | None = None


def analyse_select_items(
    statement: SelectStatement, group_columns: tuple[str, ...]
) -> tuple[list[ItemSpec], str] | None:
    """Analyse the SELECT list into group keys and weighted aggregates.

    Returns ``(specs, output_column)`` where ``output_column`` is the single
    column all value aggregates target, or None when the list contains
    anything the routes cannot serve (expressions, unsupported functions,
    aggregates over several distinct columns, duplicate output names).
    """
    specs: list[ItemSpec] = []
    value_columns: set[str] = set()
    names: set[str] = set()
    has_aggregate = False
    for item in statement.items:
        expression = item.expression
        if isinstance(expression, Star):
            return None
        if isinstance(expression, ColumnRef):
            bare = _bare(expression.name)
            if bare not in group_columns:
                return None
            name = item.alias or bare
            specs.append(ItemSpec(kind="group", name=name, group_column=bare))
        elif isinstance(expression, FunctionCall):
            function = expression.name.lower()
            if function not in ROUTE_AGGREGATES:
                return None
            if len(expression.args) == 0:
                if function != "count":
                    return None
                argument = None
            elif len(expression.args) == 1 and isinstance(expression.args[0], ColumnRef):
                argument = _bare(expression.args[0].name)
            else:
                return None
            if argument is not None and argument in group_columns:
                # Aggregates over a group-key column (MIN(g), SUM(g), ...)
                # would be evaluated against the output model's predictions;
                # decline rather than answer them wrongly.
                return None
            if argument is not None:
                value_columns.add(argument)
            name = item.alias or f"{function}({argument if argument is not None else '*'})"
            specs.append(ItemSpec(kind="aggregate", name=name, function=function, argument=argument))
            has_aggregate = True
        else:
            return None
        if specs[-1].name in names:
            return None
        names.add(specs[-1].name)
    if not has_aggregate or len(value_columns) != 1:
        return None
    return specs, next(iter(value_columns))


@dataclass
class DomainRestriction:
    """The query-admitted slice of a model's input domain, with frequencies."""

    #: input column -> admitted values (the points to evaluate the model at)
    domains: dict[str, list[float]]
    #: Estimated fraction of raw rows the restriction keeps.
    fraction: float
    #: input column -> relative row weight per admitted value (frequency
    #: counts from the catalog when available, else uniform).
    weights: dict[str, list[float]]


def restricted_domains(
    model: CapturedModel,
    stats: TableStats,
    constraints: WhereConstraints,
) -> DomainRestriction | None:
    """Clip every model input's enumerable domain by the query constraints.

    The coverage fraction and per-value weights come from the catalog's
    per-value frequency counts when it has them, so skewed input
    distributions are reflected instead of assumed uniform.  Returns None
    when some input has no known domain and is not pinned, in which case the
    caller falls back to analytic integration or enumeration.
    """
    domains: dict[str, list[float]] = {}
    weights: dict[str, list[float]] = {}
    fraction = 1.0
    for column in model.input_columns:
        constraint = constraints.constraint(column)
        column_stats = stats.columns.get(column)
        known = list(column_stats.domain) if column_stats is not None and column_stats.domain is not None else None

        # Model inputs are numeric by construction; a non-numeric pin is a
        # type error the exact engine raises on — decline so both paths agree.
        if constraint is not None and constraint.is_pinned and _as_floats(constraint.values) is None:
            return None

        if known is not None:
            admitted = known if constraint is None else constraint.restrict_domain(known)
            values = _as_floats(admitted)
            if values is None:
                return None
            domains[column] = values
            counts = column_stats.domain_counts
            if counts is not None and len(counts) == len(known):
                count_of = dict(zip(known, counts))
                admitted_counts = [float(count_of.get(v, 0)) for v in admitted]
                total = float(sum(counts))
                fraction *= sum(admitted_counts) / total if total else 0.0
                weights[column] = admitted_counts
            else:
                fraction *= len(admitted) / len(known) if known else 0.0
                weights[column] = [1.0] * len(admitted)
        elif constraint is not None and constraint.is_pinned:
            pinned = [v for v in constraint.values if constraint.admits(v)]
            domains[column] = [float(v) for v in pinned]
            weights[column] = [1.0] * len(pinned)
            if column_stats is not None:
                fraction *= sum(column_stats.selectivity_equals(v) for v in pinned)
            # Without statistics the pinned fraction is unknowable; assume
            # the pins select everything (the error estimate still applies).
        else:
            return None
    return DomainRestriction(domains=domains, fraction=fraction, weights=weights)


def _as_floats(values: list[Any]) -> list[float] | None:
    """Coerce domain values to floats; None when any value is non-numeric
    (e.g. ``WHERE x = 'abc'`` on a numeric model input) so the caller
    declines instead of crashing."""
    try:
        return [float(v) for v in values]
    except (TypeError, ValueError):
        return None


def growth_scale(model: CapturedModel, stats: TableStats) -> float:
    """Rescale fit-time group cardinalities to the table's current size.

    Streaming appends grow the table between captures; a whole-table model's
    per-group observation counts are scaled by the table growth so COUNT and
    SUM stay calibrated while the model is merely stale.  Partial (segment)
    models cover an unknown share of the table, so their counts are kept
    as fitted.
    """
    if not model.coverage.covers_whole_table or model.fitted_row_count <= 0:
        return 1.0
    return max(stats.row_count, 1) / model.fitted_row_count


def current_group_rows(
    stats: TableStats, group_columns: tuple[str, ...]
) -> dict[tuple[Any, ...], float] | None:
    """Live per-group row counts from the catalog statistics.

    For a single enumerable group column the catalog's per-value frequency
    counts *are* the current group cardinalities — no growth heuristics
    needed, COUNT/SUM stay exact even when streaming appends landed in just
    one group or formed brand-new groups.  None when the group key is
    multi-column or the column has no materialised domain.
    """
    if len(group_columns) != 1:
        return None
    column_stats = stats.columns.get(group_columns[0])
    if column_stats is None or column_stats.domain is None or column_stats.domain_counts is None:
        return None
    return {
        (value,): float(count)
        for value, count in zip(column_stats.domain, column_stats.domain_counts)
    }


def staleness_rows(model: CapturedModel, stats: TableStats) -> float | None:
    """Rows appended since the model's capture (whole-table models).

    The growth rescaling assumes appends are spread proportionally over the
    groups; in the worst case all of them landed in (or missed) the one
    group being served, so this delta is the honest cardinality allowance
    for stale COUNT/SUM answers.  None for partial (segment) models, whose
    coverage growth is unknowable from table-level statistics.
    """
    if not model.coverage.covers_whole_table or model.fitted_row_count <= 0:
        return None
    return abs(float(stats.row_count - model.fitted_row_count))


@dataclass
class DomainEvaluation:
    """A fit evaluated over a restricted input domain, with row weighting."""

    predictions: np.ndarray
    #: Relative row weight per prediction (frequency-based, may be uniform).
    point_weights: np.ndarray
    n_points: int
    covered_rows: float
    #: Fraction of the input domain the restriction keeps (1.0 = all rows).
    fraction: float
    residual_standard_error: float
    #: False when the serving model is stale (extra cardinality uncertainty).
    active: bool
    #: Worst-case cardinality drift from table growth since capture, already
    #: scaled to this restriction (None when unknowable — partial models).
    stale_rows: float | None = None
    #: Fraction of the aggregated column's rows that are NULL (table-level).
    output_null_fraction: float = 0.0

    @property
    def mean_prediction(self) -> float:
        """Frequency-weighted mean prediction over the restricted domain."""
        if self.point_weights.size and float(np.sum(self.point_weights)) > 0.0:
            return float(np.average(self.predictions, weights=self.point_weights))
        return float(np.mean(self.predictions))

    @property
    def occupied_predictions(self) -> np.ndarray:
        """Predictions at domain points that actually hold rows (for extremes)."""
        if self.point_weights.size and float(np.sum(self.point_weights)) > 0.0:
            occupied = self.predictions[self.point_weights > 0.0]
            if occupied.size:
                return occupied
        return self.predictions

    @property
    def covered_rows_error(self) -> float:
        """Binomial allowance for the covered-row estimate.

        Even with frequency-based weights, the per-group distribution over
        the domain is taken from table-level statistics; the binomial
        standard error of selecting ``fraction`` of the fitted rows is the
        allowance for a group deviating from the global distribution.
        """
        f = min(max(self.fraction, 0.0), 1.0)
        if f in (0.0, 1.0):
            return 0.0
        total = self.covered_rows / f
        return math.sqrt(total * f * (1.0 - f))


def evaluate_fit_over_domains(
    fit: FitResult,
    model: CapturedModel,
    restriction: DomainRestriction,
    fitted_observations: float,
    scale: float,
    stale_rows: float | None = 0.0,
    output_null_fraction: float = 0.0,
) -> DomainEvaluation:
    """Evaluate one (per-group) fit over the restricted domain product.

    ``stale_rows`` is the table-growth allowance from :func:`staleness_rows`
    (0.0 when cardinalities come from live statistics; None when unknowable).
    ``output_null_fraction`` is the aggregated column's NULL share, used to
    shrink COUNT(col)/SUM toward the rows exact SQL would actually count.
    """
    input_columns = list(model.input_columns)
    domains = restriction.domains
    combos = list(itertools.product(*[domains[name] for name in input_columns]))
    weight_combos = list(
        itertools.product(*[restriction.weights[name] for name in input_columns])
    )
    if combos and input_columns:
        arrays = {
            name: np.array([combo[i] for combo in combos], dtype=np.float64)
            for i, name in enumerate(input_columns)
        }
        predictions = np.asarray(fit.predict(arrays), dtype=np.float64)
        point_weights = np.array(
            [float(np.prod(combo)) for combo in weight_combos], dtype=np.float64
        )
    elif not input_columns:
        # Input-free models predict a single value per group.
        predictions = np.asarray(fit.predict({}), dtype=np.float64).reshape(-1)[:1]
        point_weights = np.ones_like(predictions)
        combos = [tuple()]
    else:
        predictions = np.array([], dtype=np.float64)
        point_weights = np.array([], dtype=np.float64)
    fraction = restriction.fraction
    covered = float(fitted_observations) * fraction * scale
    return DomainEvaluation(
        predictions=predictions,
        point_weights=point_weights,
        n_points=len(combos) if predictions.size else 0,
        covered_rows=covered,
        fraction=fraction,
        residual_standard_error=float(fit.residual_standard_error),
        active=model.status == "active",
        stale_rows=None if stale_rows is None else stale_rows * fraction,
        output_null_fraction=output_null_fraction,
    )


def aggregate_value_error(
    function: str, evaluation: DomainEvaluation, count_star: bool = False
) -> tuple[Any, float]:
    """The weighted aggregate value and its standard error for one group.

    * ``count`` — the estimated covered row count; exact for a fresh model
      over an unrestricted domain, carrying the binomial selectivity
      allowance when restricted (plus a ``sqrt(n)`` allowance when stale);
    * ``sum`` — mean prediction × covered rows; the error combines the raw
      rows' residual noise and fit uncertainty (``rse * sqrt(2n)``) with the
      cardinality uncertainty of the covered-row estimate;
    * ``avg`` — mean prediction over the restricted domain;
    * ``min`` / ``max`` — domain extremes; the exact extreme over ``n`` noisy
      rows concentrates ``rse * sqrt(2 ln n)`` beyond the model's band.
    """
    function = function.lower()
    predictions = evaluation.predictions
    covered = max(evaluation.covered_rows, 0.0)
    rse = evaluation.residual_standard_error
    rows_error = evaluation.covered_rows_error
    if evaluation.stale_rows is not None:
        cardinality_error = math.hypot(rows_error, evaluation.stale_rows)
    elif not evaluation.active:
        # Partial stale model: coverage growth unknowable, sqrt(n) fallback.
        cardinality_error = math.hypot(rows_error, math.sqrt(max(covered, 1.0)))
    else:
        cardinality_error = rows_error

    # Exact COUNT(col)/SUM/AVG skip NULLs; shrink by the (table-level) null
    # fraction and carry the binomial allowance for its per-group spread.
    # COUNT(*) counts every row, NULL output or not.
    null_fraction = min(max(evaluation.output_null_fraction, 0.0), 1.0)
    non_null = covered * (1.0 - null_fraction)
    null_error = (
        math.sqrt(covered * null_fraction * (1.0 - null_fraction))
        if 0.0 < null_fraction < 1.0
        else 0.0
    )

    if function == "count":
        if count_star:
            return int(round(covered)), cardinality_error
        return int(round(non_null)), math.hypot(cardinality_error, null_error)
    if predictions.size == 0:
        return None, 0.0
    if function == "sum":
        mean = evaluation.mean_prediction
        value = mean * non_null
        noise = rse * math.sqrt(2.0 * max(non_null, 1.0))
        return value, math.sqrt(
            noise * noise + (mean * math.hypot(cardinality_error, null_error)) ** 2
        )
    if function == "avg":
        return evaluation.mean_prediction, aggregate_error("avg", rse, max(evaluation.n_points, 1))
    if function == "min":
        return float(np.min(evaluation.occupied_predictions)), extreme_value_error(rse, covered)
    if function == "max":
        return float(np.max(evaluation.occupied_predictions)), extreme_value_error(rse, covered)
    raise ValueError(f"unsupported route aggregate {function!r}")


def build_result_table(specs: list[ItemSpec], data: dict[str, list[Any]]) -> Table:
    """Assemble the route's result table in SELECT order.

    Group columns infer their dtype from the key values; COUNT aggregates
    are integers, everything else is float.  Shared by the grouped and
    range routes so schema assembly has a single implementation.
    """
    defs: list[ColumnDef] = []
    columns: dict[str, Column] = {}
    for spec in specs:
        values = data[spec.name]
        if spec.kind == "group":
            non_null = [v for v in values if v is not None]
            dtype = DataType.infer_common(non_null) if non_null else DataType.INT64
        elif spec.function == "count":
            dtype = DataType.INT64
        else:
            dtype = DataType.FLOAT64
        defs.append(ColumnDef(spec.name, dtype))
        columns[spec.name] = Column.from_values(dtype, values)
    return Table("approximate", Schema(defs), columns)
