"""The grouped answer route: GROUP BY aggregates served group-by-group.

The paper's Section 2 workload is built from queries like::

    SELECT source, AVG(intensity) FROM measurements GROUP BY source

Instead of materialising a virtual table and running the full plan over it,
this route evaluates the captured *per-group* models directly — one model
evaluation per group over the (range-restricted) input domain — and attaches
a per-group :class:`~repro.core.approx.error_bounds.ErrorEstimate` to every
aggregate.  Groups no servable model covers (failed fits, groups that
appeared after the last capture) are computed exactly over just their rows
and merged in, per the routing plan of
:mod:`repro.core.approx.routes.router`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.approx.routes.aggcalc import (
    DomainRestriction,
    ItemSpec,
    aggregate_value_error,
    analyse_select_items,
    build_result_table,
    current_group_rows,
    evaluate_fit_over_domains,
    growth_scale,
    restricted_domains,
    staleness_rows,
)
from repro.core.approx.routes.constraints import (
    WhereConstraints,
    bare_name as _bare,
    extract_constraints,
)
from repro.core.approx.routes.router import RoutingPolicy, plan_group_routing
from repro.core.captured_model import CapturedModel
from repro.core.model_store import ModelStore
from repro.db.expressions import BinaryOp, ColumnRef, Expression, InList, Literal
from repro.db.sql.ast import SelectStatement
from repro.db.stats import TableStats
from repro.db.table import Table

__all__ = [
    "GroupedAnswer",
    "GroupedRoutePlan",
    "GroupedStatementAnalysis",
    "analyse_grouped_statement",
    "answer_grouped",
    "plan_grouped_route",
]


@dataclass
class GroupedAnswer:
    """A GROUP BY aggregate answered from per-group models (plus exact fill-in)."""

    table: Table
    route: str  # "grouped-model" | "grouped-hybrid"
    used_model_ids: list[int]
    reason: str
    #: aggregate column -> worst per-group standard error (conservative).
    column_errors: dict[str, float]
    #: group key -> aggregate column -> standard error (model-served groups).
    group_errors: dict[tuple[Any, ...], dict[str, float]]
    #: group key -> aggregate column -> value (model-served groups).
    group_values: dict[tuple[Any, ...], dict[str, Any]]
    #: group key -> "model#<id>" / "exact" provenance.
    group_routes: dict[tuple[Any, ...], str]
    virtual_rows_generated: int


@dataclass
class GroupedRoutePlan:
    """The planned (not yet evaluated) grouped route for one statement.

    This is the *plan phase* of the grouped route, split out so the unified
    query planner can inspect the model/exact group split — and predict cost
    and error for it — without evaluating a single model.  ``answer_grouped``
    consumes it to produce the actual answer.
    """

    analysis: GroupedStatementAnalysis
    #: Candidate models that can honor the statement's predicates.
    candidates: list[CapturedModel]
    #: Per-group model-vs-exact assignments (the PR-2 router's output).
    routing: Any  # GroupRoutingPlan
    output_null_fraction: float

    @property
    def n_model_groups(self) -> int:
        return len(self.routing.model_groups)

    @property
    def n_exact_groups(self) -> int:
        return len(self.routing.exact_groups)

    @property
    def is_hybrid(self) -> bool:
        return self.routing.is_hybrid

    @property
    def used_model_ids(self) -> list[int]:
        return self.routing.used_model_ids


def plan_grouped_route(
    statement: SelectStatement,
    store: ModelStore,
    stats: TableStats,
    policy: RoutingPolicy | None = None,
    models: list[CapturedModel] | None = None,
    analysis: "GroupedStatementAnalysis | None" = None,
) -> GroupedRoutePlan | None:
    """Plan the grouped route: shape gates + per-group routing, no evaluation.

    Returns None when the statement shape is outside this route or no group
    can be served from a model, leaving the statement to the
    enumeration/exact paths.  This is the single gate implementation shared
    by route execution (:func:`answer_grouped`) and the unified planner's
    static probe — what the probe predicts and what execution serves cannot
    drift apart.
    """
    if analysis is None:
        analysis = analyse_grouped_statement(statement)
    if analysis is None:
        return None
    group_columns = analysis.group_columns
    output_column = analysis.output_column
    constraints = analysis.constraints

    # NULL group keys form their own group in exact execution; the fitted
    # parameters cannot represent it, so decline when present.  (NULLs in
    # the aggregated column are handled quantitatively via the null
    # fraction below.)
    for column in group_columns:
        column_stats = stats.columns.get(column)
        if column_stats is not None and column_stats.null_count > 0:
            return None
    output_stats = stats.columns.get(output_column)
    output_null_fraction = output_stats.null_fraction if output_stats is not None else 0.0

    candidates = models if models is not None else store.grouped_candidates(
        stats.table_name, output_column, group_columns
    )
    # A model can only honor WHERE constraints over its own input (or group)
    # columns; serving a query whose predicate mentions anything else would
    # silently drop that predicate.  Restrict to candidates that cover every
    # constrained column — none left means exact execution.
    constrained_inputs = set(constraints.by_column) - set(group_columns)
    candidates = [m for m in candidates if constrained_inputs <= set(m.input_columns)]
    if not candidates:
        return None

    # The requested group set must be *complete*: either the catalog can
    # enumerate every current key (single enumerable group column), or some
    # fresh whole-table model's fit records do.  Otherwise groups that
    # appeared after the last capture would silently vanish from the result.
    single = group_columns[0] if len(group_columns) == 1 else None
    discoverable = (
        single is not None
        and stats.columns.get(single) is not None
        and stats.columns[single].domain is not None
    )
    if not discoverable and not any(
        model.status == "active"
        and model.coverage.covers_whole_table
        and model.fitted_row_count >= stats.row_count
        for model in candidates
    ):
        return None

    requested = _requested_group_keys(candidates, stats, group_columns, constraints)
    routing = plan_group_routing(
        store,
        stats.table_name,
        output_column,
        group_columns,
        requested,
        policy,
        models=candidates,
    )
    if not routing.model_groups:
        return None
    return GroupedRoutePlan(
        analysis=analysis,
        candidates=candidates,
        routing=routing,
        output_null_fraction=output_null_fraction,
    )


def answer_grouped(
    statement: SelectStatement,
    store: ModelStore,
    stats: TableStats,
    execute_exact_groups,
    policy: RoutingPolicy | None = None,
    models: list[CapturedModel] | None = None,
    analysis: "GroupedStatementAnalysis | None" = None,
    route_plan: GroupedRoutePlan | None = None,
) -> GroupedAnswer | None:
    """Try to answer a GROUP BY aggregate statement from per-group models.

    ``execute_exact_groups(statement, membership_expression)`` is a callback
    (supplied by the engine) that runs the statement exactly, restricted to
    the given groups, against the real catalog — charging real IO.
    ``analysis`` lets the engine pass the :func:`analyse_grouped_statement`
    result it already computed; ``route_plan`` an already-planned route
    (from :func:`plan_grouped_route`).  Returns None when the statement
    shape is outside this route, leaving it to the enumeration/exact paths.
    """
    if route_plan is None:
        route_plan = plan_grouped_route(
            statement, store, stats, policy=policy, models=models, analysis=analysis
        )
    if route_plan is None:
        return None
    analysis = route_plan.analysis
    group_columns = analysis.group_columns
    specs = analysis.specs
    order_keys = analysis.order_keys
    constraints = analysis.constraints
    output_null_fraction = route_plan.output_null_fraction
    plan = route_plan.routing

    data: dict[str, list[Any]] = {spec.name: [] for spec in specs}
    group_errors: dict[tuple[Any, ...], dict[str, float]] = {}
    group_values: dict[tuple[Any, ...], dict[str, Any]] = {}
    group_routes: dict[tuple[Any, ...], str] = {}
    virtual_rows = 0

    # The domain restriction depends only on the model's input set, not the
    # group — compute it once per serving model, not once per group.  Live
    # per-group cardinalities from the catalog supersede the fit-time counts
    # entirely (no growth heuristics, no staleness allowance needed).
    restriction_cache: dict[int, DomainRestriction | None] = {}
    live_rows = current_group_rows(stats, group_columns)
    for assignment in plan.model_groups:
        model = assignment.model
        if model.model_id not in restriction_cache:
            restriction_cache[model.model_id] = restricted_domains(model, stats, constraints)
        restricted = restriction_cache[model.model_id]
        if restricted is None:
            return None
        if live_rows is not None and assignment.key in live_rows:
            observations, scale, stale_rows = live_rows[assignment.key], 1.0, 0.0
        else:
            observations = assignment.fit.n_observations
            scale = growth_scale(model, stats)
            stale_rows = staleness_rows(model, stats)
        evaluation = evaluate_fit_over_domains(
            assignment.fit,
            model,
            restricted,
            fitted_observations=observations,
            scale=scale,
            stale_rows=stale_rows,
            output_null_fraction=output_null_fraction,
        )
        if evaluation.n_points == 0:
            # The restriction keeps no input values: the group has no
            # qualifying rows and (like exact execution) emits no row.
            group_routes[assignment.key] = f"model#{model.model_id} (empty restriction)"
            continue
        virtual_rows += evaluation.n_points
        errors: dict[str, float] = {}
        values: dict[str, Any] = {}
        for spec in specs:
            if spec.kind == "group":
                position = group_columns.index(spec.group_column)
                data[spec.name].append(assignment.key[position])
            else:
                value, error = aggregate_value_error(
                    spec.function, evaluation, count_star=spec.argument is None
                )
                data[spec.name].append(value)
                errors[spec.name] = error
                values[spec.name] = value
        group_errors[assignment.key] = errors
        group_values[assignment.key] = values
        group_routes[assignment.key] = assignment.reason

    exact_keys = [a.key for a in plan.exact_groups]
    if exact_keys:
        membership = _membership_expression(group_columns, exact_keys)
        exact_table = execute_exact_groups(statement, membership)
        spec_position = {
            spec.group_column: i for i, spec in enumerate(specs) if spec.kind == "group"
        }
        # Provenance is only trackable when every group column appears in
        # the SELECT list (it usually does; GROUP BY keys outside the list
        # still merge correctly, they just go unattributed).
        key_positions = (
            [spec_position[column] for column in group_columns]
            if all(column in spec_position for column in group_columns)
            else None
        )
        for row_index in range(exact_table.num_rows):
            row = exact_table.row(row_index)
            for position, spec in enumerate(specs):
                data[spec.name].append(row[position])
            if key_positions is not None:
                group_routes[tuple(row[p] for p in key_positions)] = "exact"

    table = build_result_table(specs, data)
    if order_keys:
        table = table.sort_by(order_keys)
    if statement.limit is not None:
        table = table.slice(statement.offset, statement.offset + statement.limit)
    elif statement.offset:
        table = table.slice(statement.offset, table.num_rows)

    column_errors = {
        spec.name: max(
            (errors[spec.name] for errors in group_errors.values() if spec.name in errors),
            default=0.0,
        )
        for spec in specs
        if spec.kind == "aggregate"
    }
    route = "grouped-hybrid" if exact_keys else "grouped-model"
    return GroupedAnswer(
        table=table,
        route=route,
        used_model_ids=plan.used_model_ids,
        reason=f"per-group model evaluation: {plan.describe()}",
        column_errors=column_errors,
        group_errors=group_errors,
        group_values=group_values,
        group_routes=group_routes,
        virtual_rows_generated=virtual_rows,
    )


# ---------------------------------------------------------------------------
# Statement analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupedStatementAnalysis:
    """Everything the grouped route needs to know about a statement's shape."""

    group_columns: tuple[str, ...]
    specs: list[ItemSpec]
    output_column: str
    order_keys: list[tuple[str, bool]]
    constraints: WhereConstraints


def analyse_grouped_statement(statement: SelectStatement) -> GroupedStatementAnalysis | None:
    """The single shape gate for the grouped route.

    The engine runs this once per query — to gate the model lookup and the
    on-demand grouped harvest — and hands the result to ``answer_grouped``,
    so what triggers a harvest and what the route serves cannot drift apart.
    """
    group_columns = _group_by_columns(statement)
    if group_columns is None:
        return None
    if statement.having is not None or statement.distinct:
        return None
    analysed = analyse_select_items(statement, group_columns)
    if analysed is None:
        return None
    specs, output_column = analysed
    order_keys = _order_keys(statement, [spec.name for spec in specs])
    if statement.order_by and order_keys is None:
        return None
    constraints = extract_constraints(statement.where)
    if not constraints.fully_analysed:
        return None
    if constraints.constrains(output_column):
        # Predicates over the predicted values need per-row filtering; the
        # virtual-table route handles those.
        return None
    return GroupedStatementAnalysis(
        group_columns=group_columns,
        specs=specs,
        output_column=output_column,
        order_keys=order_keys or [],
        constraints=constraints,
    )


def _group_by_columns(statement: SelectStatement) -> tuple[str, ...] | None:
    """The GROUP BY keys as bare column names (None if any key is complex)."""
    if not statement.group_by:
        return None
    columns: list[str] = []
    for expression in statement.group_by:
        if not isinstance(expression, ColumnRef):
            return None
        bare = _bare(expression.name)
        if bare not in columns:
            columns.append(bare)
    return tuple(columns)


def _order_keys(
    statement: SelectStatement, output_names: list[str]
) -> list[tuple[str, bool]] | None:
    """ORDER BY resolved against the route's output columns (None = decline)."""
    keys: list[tuple[str, bool]] = []
    for order in statement.order_by:
        expression = order.expression
        if isinstance(expression, Literal) and isinstance(expression.value, int):
            ordinal = expression.value
            if not 1 <= ordinal <= len(output_names):
                return None
            keys.append((output_names[ordinal - 1], order.ascending))
            continue
        if isinstance(expression, ColumnRef):
            name = expression.name
            if name in output_names:
                keys.append((name, order.ascending))
                continue
            bare = _bare(name)
            if bare in output_names:
                keys.append((bare, order.ascending))
                continue
        return None
    return keys


def _requested_group_keys(
    candidates: list[CapturedModel],
    stats: TableStats,
    group_columns: tuple[str, ...],
    constraints: WhereConstraints,
) -> list[tuple[Any, ...]]:
    """Every group key the query could produce, filtered by the WHERE clause.

    Keys come from two places: the candidate models' fit records (fitted
    *and* failed — failed groups must be computed exactly, not dropped) and,
    for a single enumerable group column, the catalog domain — which also
    surfaces groups that appeared after the last capture.
    """
    keys: dict[tuple[Any, ...], None] = {}
    for model in candidates:
        for record in model.fit.records:  # type: ignore[union-attr]
            aligned = tuple(
                record.key[model.group_columns.index(column)] for column in group_columns
            )
            keys.setdefault(aligned, None)
    if len(group_columns) == 1:
        column_stats = stats.columns.get(group_columns[0])
        if column_stats is not None and column_stats.domain is not None:
            for value in column_stats.domain:
                keys.setdefault((value,), None)

    admitted = [
        key
        for key in keys
        if all(constraints.admits(column, key[i]) for i, column in enumerate(group_columns))
    ]
    try:
        return sorted(admitted)
    except TypeError:
        return sorted(admitted, key=repr)


def _membership_expression(
    group_columns: tuple[str, ...], keys: list[tuple[Any, ...]]
) -> Expression:
    """A predicate selecting exactly the given group keys."""
    if len(group_columns) == 1:
        return InList(ColumnRef(group_columns[0]), [Literal(key[0]) for key in keys])
    disjunction: Expression | None = None
    for key in keys:
        conjunct: Expression | None = None
        for column, value in zip(group_columns, key):
            term = BinaryOp("=", ColumnRef(column), Literal(value))
            conjunct = term if conjunct is None else BinaryOp("and", conjunct, term)
        disjunction = conjunct if disjunction is None else BinaryOp("or", disjunction, conjunct)
    assert disjunction is not None
    return disjunction

