"""WHERE-clause analysis for the model-backed answer routes.

The grouped and range routes can only answer a query from captured models if
they understand exactly which part of the input domain the WHERE clause
selects.  This module decomposes a predicate's top-level conjuncts into
per-column :class:`ColumnConstraint`\\ s — discrete value sets from ``=`` /
``IN`` and intervals from ``<`` / ``<=`` / ``>`` / ``>=`` / ``BETWEEN`` —
and keeps anything it cannot analyse (disjunctions, ``IS NULL``, predicates
over expressions) as *residual* conjuncts, which makes the routes decline
and leaves the query to the enumeration or exact paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.db.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    Literal,
)

__all__ = ["ColumnConstraint", "WhereConstraints", "bare_name", "extract_constraints"]


def bare_name(name: str) -> str:
    """Strip any table qualifier (``t.g`` -> ``g``)."""
    return name.split(".")[-1]


@dataclass
class ColumnConstraint:
    """Everything the WHERE clause's conjuncts say about one column."""

    column: str
    #: Discrete allowed values from ``=`` / ``IN`` (None means unrestricted).
    values: list[Any] | None = None
    low: float | None = None
    low_inclusive: bool = True
    high: float | None = None
    high_inclusive: bool = True

    @property
    def has_interval(self) -> bool:
        return self.low is not None or self.high is not None

    @property
    def is_pinned(self) -> bool:
        """True when the column is restricted to an explicit value list."""
        return self.values is not None

    def pin(self, values: Sequence[Any]) -> None:
        """Intersect the allowed value set with ``values``."""
        incoming = list(dict.fromkeys(values))
        if self.values is None:
            self.values = incoming
        else:
            self.values = [v for v in self.values if v in incoming]

    def bound_below(self, value: float, inclusive: bool) -> None:
        if self.low is None or value > self.low or (value == self.low and not inclusive):
            self.low = value
            self.low_inclusive = inclusive

    def bound_above(self, value: float, inclusive: bool) -> None:
        if self.high is None or value < self.high or (value == self.high and not inclusive):
            self.high = value
            self.high_inclusive = inclusive

    def admits(self, value: Any) -> bool:
        """Does ``value`` satisfy every constraint recorded for this column?"""
        if self.values is not None and value not in self.values:
            return False
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            return not self.has_interval and (self.values is None or value in self.values)
        if self.low is not None:
            if numeric < self.low or (numeric == self.low and not self.low_inclusive):
                return False
        if self.high is not None:
            if numeric > self.high or (numeric == self.high and not self.high_inclusive):
                return False
        return True

    def restrict_domain(self, domain: Sequence[Any]) -> list[Any]:
        """The subset of a known column domain this constraint admits,
        preserving the domain's order."""
        return [v for v in domain if self.admits(v)]

    def clip_interval(self, low: float, high: float) -> tuple[float, float] | None:
        """Intersect ``[low, high]`` with the interval bounds (None if empty)."""
        lo = low if self.low is None else max(low, self.low)
        hi = high if self.high is None else min(high, self.high)
        if lo > hi:
            return None
        return lo, hi

    def describe(self) -> str:
        parts = []
        if self.values is not None:
            parts.append(f"in {self.values!r}")
        if self.low is not None:
            parts.append(f"{'>=' if self.low_inclusive else '>'} {self.low!r}")
        if self.high is not None:
            parts.append(f"{'<=' if self.high_inclusive else '<'} {self.high!r}")
        return f"{self.column} " + " and ".join(parts) if parts else self.column


@dataclass
class WhereConstraints:
    """Per-column constraints plus the conjuncts that resisted analysis."""

    by_column: dict[str, ColumnConstraint] = field(default_factory=dict)
    residual: list[Expression] = field(default_factory=list)

    @property
    def fully_analysed(self) -> bool:
        return not self.residual

    @property
    def has_interval(self) -> bool:
        return any(c.has_interval for c in self.by_column.values())

    def constraint(self, column: str) -> ColumnConstraint | None:
        return self.by_column.get(column)

    def constrains(self, column: str) -> bool:
        return column in self.by_column

    def admits(self, column: str, value: Any) -> bool:
        constraint = self.by_column.get(column)
        return constraint is None or constraint.admits(value)

    def _get(self, column: str) -> ColumnConstraint:
        if column not in self.by_column:
            self.by_column[column] = ColumnConstraint(column)
        return self.by_column[column]


def extract_constraints(where: Expression | None) -> WhereConstraints:
    """Decompose a WHERE expression into per-column constraints.

    Only top-level conjuncts of the forms ``col <op> literal``,
    ``literal <op> col``, ``col BETWEEN lit AND lit`` and ``col IN (lits)``
    are analysed; everything else lands in ``residual``.
    """
    constraints = WhereConstraints()
    for conjunct in _conjuncts(where):
        if not _apply_conjunct(constraints, conjunct):
            constraints.residual.append(conjunct)
    return constraints


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _apply_conjunct(constraints: WhereConstraints, conjunct: Expression) -> bool:
    if isinstance(conjunct, BinaryOp) and conjunct.op in ("=", "<", "<=", ">", ">="):
        op = conjunct.op
        column, literal = _column_literal(conjunct.left, conjunct.right)
        if column is None:
            column, literal = _column_literal(conjunct.right, conjunct.left)
            if column is None:
                return False
            op = _FLIP.get(op, op)
        if op == "=":
            constraints._get(column).pin([literal])
            return True
        try:
            numeric = float(literal)
        except (TypeError, ValueError):
            return False
        constraint = constraints._get(column)
        if op in ("<", "<="):
            constraint.bound_above(numeric, inclusive=op == "<=")
        else:
            constraint.bound_below(numeric, inclusive=op == ">=")
        return True

    if isinstance(conjunct, Between) and isinstance(conjunct.operand, ColumnRef):
        if not (isinstance(conjunct.low, Literal) and isinstance(conjunct.high, Literal)):
            return False
        try:
            low = float(conjunct.low.value)
            high = float(conjunct.high.value)
        except (TypeError, ValueError):
            return False
        constraint = constraints._get(bare_name(conjunct.operand.name))
        constraint.bound_below(low, inclusive=True)
        constraint.bound_above(high, inclusive=True)
        return True

    if isinstance(conjunct, InList) and isinstance(conjunct.operand, ColumnRef):
        values = [v.value for v in conjunct.values if isinstance(v, Literal)]
        if len(values) != len(conjunct.values):
            return False
        constraints._get(bare_name(conjunct.operand.name)).pin(values)
        return True

    return False


def _column_literal(left: Expression, right: Expression) -> tuple[str | None, Any]:
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return bare_name(left.name), right.value
    return None, None


def _conjuncts(expression: Expression | None) -> list[Expression]:
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.op.lower() == "and":
        return _conjuncts(expression.left) + _conjuncts(expression.right)
    return [expression]
