"""Per-group model-vs-exact routing.

§4.1's "multiple, partial or grouped models" challenge, at the granularity
the paper's workload actually needs: a single ``GROUP BY`` query may touch
groups covered by a healthy per-group fit, groups whose fit failed (too few
observations, optimiser divergence), groups that only a stale segment model
covers, and groups that appeared after every capture.  The router assigns
each requested group to the best servable model — or to exact execution —
so the engine can serve what it can from models and scan only the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.captured_model import CapturedModel
from repro.core.model_store import ModelStore, _default_ranking
from repro.fitting.model import FitResult

__all__ = ["RoutingPolicy", "GroupAssignment", "GroupRoutingPlan", "plan_group_routing"]


@dataclass(frozen=True)
class RoutingPolicy:
    """When is a per-group fit healthy enough to serve a query?

    The defaults serve every group that has finite fitted parameters —
    model acceptance already gated overall quality at capture time.  Callers
    wanting stricter routing can require a per-group R² floor or refuse
    stale models entirely.
    """

    #: Minimum per-group R² to serve the group from the model (None = any).
    min_group_r_squared: float | None = None
    #: Refuse groups whose only cover is a stale model awaiting maintenance.
    allow_stale: bool = True

    def is_healthy(self, fit: FitResult) -> bool:
        if not np.all(np.isfinite(np.asarray(fit.params, dtype=np.float64))):
            return False
        if self.min_group_r_squared is not None and fit.r_squared < self.min_group_r_squared:
            return False
        return True


@dataclass
class GroupAssignment:
    """One group's routing decision."""

    key: tuple[Any, ...]
    #: The serving model, or None when the group must be computed exactly.
    model: CapturedModel | None
    fit: FitResult | None
    reason: str

    @property
    def served_from_model(self) -> bool:
        return self.model is not None


@dataclass
class GroupRoutingPlan:
    """Every requested group, split into model-served and exact."""

    group_columns: tuple[str, ...]
    assignments: list[GroupAssignment] = field(default_factory=list)

    @property
    def model_groups(self) -> list[GroupAssignment]:
        return [a for a in self.assignments if a.served_from_model]

    @property
    def exact_groups(self) -> list[GroupAssignment]:
        return [a for a in self.assignments if not a.served_from_model]

    @property
    def used_model_ids(self) -> list[int]:
        seen: dict[int, None] = {}
        for assignment in self.model_groups:
            seen.setdefault(assignment.model.model_id, None)
        return list(seen)

    @property
    def is_hybrid(self) -> bool:
        return bool(self.model_groups) and bool(self.exact_groups)

    def describe(self) -> str:
        return (
            f"{len(self.model_groups)} group(s) from model(s) {self.used_model_ids}, "
            f"{len(self.exact_groups)} group(s) exact"
        )


def plan_group_routing(
    store: ModelStore,
    table_name: str,
    output_column: str,
    group_columns: tuple[str, ...],
    requested_keys: list[tuple[Any, ...]],
    policy: RoutingPolicy | None = None,
    models: list[CapturedModel] | None = None,
) -> GroupRoutingPlan:
    """Assign every requested group to the best servable model or to exact.

    The store is consulted once: candidates are ranked up front and their
    fit records indexed by (re-aligned) group key, so routing stays
    O(groups + models·records) instead of re-filtering the store per group.
    ``models`` restricts routing to a pre-filtered candidate list (the
    grouped route passes the models that can honor the query's predicates);
    the policy's staleness gate still applies.
    """
    policy = policy or RoutingPolicy()
    plan = GroupRoutingPlan(group_columns=group_columns)

    if models is not None:
        candidates = [
            m for m in models if (m.is_servable if policy.allow_stale else m.is_usable)
        ]
    else:
        candidates = store.grouped_candidates(
            table_name, output_column, group_columns, include_stale=policy.allow_stale
        )
    ranked = sorted(candidates, key=_default_ranking, reverse=True)
    indexed: list[tuple[CapturedModel, dict[tuple[Any, ...], FitResult]]] = []
    for model in ranked:
        positions = [model.group_columns.index(column) for column in group_columns]
        index: dict[tuple[Any, ...], FitResult] = {}
        for record in model.fit.records:  # type: ignore[union-attr]
            if record.result is not None:
                index[tuple(record.key[p] for p in positions)] = record.result
        indexed.append((model, index))

    for key in requested_keys:
        assignment = GroupAssignment(
            key=key, model=None, fit=None, reason="no servable per-group fit"
        )
        for model, index in indexed:
            fit = index.get(key)
            if fit is None:
                continue
            if not policy.is_healthy(fit):
                assignment = GroupAssignment(
                    key=key,
                    model=None,
                    fit=None,
                    reason=f"per-group fit of model#{model.model_id} below routing policy",
                )
                continue
            status = "" if model.status == "active" else f" ({model.status})"
            assignment = GroupAssignment(
                key=key, model=model, fit=fit, reason=f"model#{model.model_id}{status}"
            )
            break
        plan.assignments.append(assignment)
    return plan
