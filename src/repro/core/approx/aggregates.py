"""Analytic aggregate answers for captured models.

§4.2, "Analytic solutions for linear models": for models that are linear (or
at least monotone) in their inputs, aggregate queries over the modelled
column can be answered in closed form from the fitted parameters and the
input domain, without generating any tuples at all.

* ``min`` / ``max`` of a monotone model over an interval occur at the
  interval's endpoints;
* ``avg`` of a model linear in its inputs is the model evaluated at the
  input means (by linearity of expectation);
* ``sum`` is ``avg * row_count``.

Non-monotone or non-linear models fall back to evaluating the model over the
enumerated input domain (still zero IO, just not closed form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.approx.error_bounds import ErrorEstimate, aggregate_error
from repro.core.captured_model import CapturedModel
from repro.errors import ApproximationError
from repro.fitting.families import Constant, Exponential, LinearModel, Polynomial, PowerLaw
from repro.fitting.model import FitResult

__all__ = ["AnalyticAggregate", "analytic_aggregate", "supports_analytic"]

_SUPPORTED_FUNCTIONS = {"min", "max", "avg", "sum"}


@dataclass(frozen=True)
class AnalyticAggregate:
    """An aggregate value computed analytically from model parameters."""

    function: str
    value: float
    error: ErrorEstimate
    method: str  # "endpoint", "linearity", "domain-scan"
    model_id: int


def supports_analytic(model: CapturedModel) -> bool:
    """True if the model family admits an endpoint/linearity argument."""
    family = model.fit.family
    return isinstance(family, (LinearModel, PowerLaw, Exponential, Polynomial)) or family.is_linear


def analytic_aggregate(
    model: CapturedModel,
    function: str,
    input_ranges: Mapping[str, tuple[float, float]],
    row_count: int,
    group_key: tuple | None = None,
    input_means: Mapping[str, float] | None = None,
) -> AnalyticAggregate:
    """Answer ``function(output_column)`` over the given input ranges.

    Parameters
    ----------
    model:
        The captured (ungrouped, or grouped with ``group_key``) model.
    function:
        One of ``min``, ``max``, ``avg``, ``sum``.
    input_ranges:
        For every model input, the ``(low, high)`` interval the query covers
        (from the column statistics or the query predicate).
    row_count:
        Number of raw rows the aggregate notionally covers (needed for SUM
        and for the error bound).
    input_means:
        Per-input mean values from the column statistics.  For models linear
        in their inputs, ``avg(output) = model(mean(inputs))`` exactly (by
        linearity of expectation), so providing the means makes AVG/SUM
        answers track the true data distribution instead of assuming a
        uniform one over the range.
    """
    function = function.lower()
    if function not in _SUPPORTED_FUNCTIONS:
        raise ApproximationError(
            f"analytic aggregation supports {sorted(_SUPPORTED_FUNCTIONS)}, not {function!r}"
        )
    missing = [name for name in model.input_columns if name not in input_ranges]
    if missing:
        raise ApproximationError(f"analytic aggregation needs ranges for inputs {missing}")

    fit = model.result_for_group(group_key) if group_key is not None else model.fit
    if not isinstance(fit, FitResult):
        raise ApproximationError(
            "analytic aggregation over a grouped model requires a group key "
            "(or use the engine, which enumerates groups)"
        )

    if function in ("min", "max"):
        value, method = _extreme_value(fit, model, input_ranges, function)
    elif function == "avg":
        value, method = _average_value(fit, model, input_ranges, input_means)
    else:  # sum
        avg_value, method = _average_value(fit, model, input_ranges, input_means)
        value = avg_value * row_count

    per_row_error = fit.residual_standard_error
    error = ErrorEstimate(value=value, standard_error=aggregate_error(function, per_row_error, max(row_count, 1)))
    return AnalyticAggregate(function=function, value=value, error=error, method=method, model_id=model.model_id)


def _extreme_value(
    fit: FitResult,
    model: CapturedModel,
    input_ranges: Mapping[str, tuple[float, float]],
    function: str,
) -> tuple[float, str]:
    """Min/max over the input box: evaluate at all corners (monotone families).

    ``is_linear`` only means linear in the parameters (a degree-2 Polynomial
    qualifies but peaks in the interior), so the corner shortcut is reserved
    for families monotone in each input."""
    family = fit.family
    if isinstance(family, (Constant, LinearModel, PowerLaw, Exponential)):
        corners = _corner_grid(model.input_columns, input_ranges)
        values = fit.predict(corners)
        value = float(np.min(values) if function == "min" else np.max(values))
        return value, "endpoint"
    # General fallback: dense scan of the input box (still no data IO).
    grid = _dense_grid(model.input_columns, input_ranges)
    values = fit.predict(grid)
    value = float(np.min(values) if function == "min" else np.max(values))
    return value, "domain-scan"


def _average_value(
    fit: FitResult,
    model: CapturedModel,
    input_ranges: Mapping[str, tuple[float, float]],
    input_means: Mapping[str, float] | None = None,
) -> tuple[float, str]:
    family = fit.family
    # Linearity of expectation needs linearity in the *inputs*, not just the
    # parameters — a Polynomial must fall through to the domain scan.
    if isinstance(family, (Constant, LinearModel)):
        if input_means is not None and all(name in input_means for name in model.input_columns):
            points = {name: np.array([float(input_means[name])]) for name in model.input_columns}
            return float(fit.predict(points)[0]), "linearity"
        midpoints = {
            name: np.array([(low + high) / 2.0]) for name, (low, high) in input_ranges.items()
        }
        return float(fit.predict(midpoints)[0]), "linearity-uniform"
    grid = _dense_grid(model.input_columns, input_ranges)
    return float(np.mean(fit.predict(grid))), "domain-scan"


def _corner_grid(
    input_columns: tuple[str, ...], input_ranges: Mapping[str, tuple[float, float]]
) -> dict[str, np.ndarray]:
    """All corners of the input bounding box."""
    num_inputs = len(input_columns)
    corners = {name: [] for name in input_columns}
    for mask in range(2**num_inputs):
        for bit, name in enumerate(input_columns):
            low, high = input_ranges[name]
            corners[name].append(high if (mask >> bit) & 1 else low)
    return {name: np.asarray(values, dtype=np.float64) for name, values in corners.items()}


def _dense_grid(
    input_columns: tuple[str, ...],
    input_ranges: Mapping[str, tuple[float, float]],
    points_per_dim: int = 101,
) -> dict[str, np.ndarray]:
    """A dense regular grid over the input box (meshgrid, flattened)."""
    axes = [
        np.linspace(input_ranges[name][0], input_ranges[name][1], points_per_dim)
        for name in input_columns
    ]
    mesh = np.meshgrid(*axes, indexing="ij") if axes else []
    return {name: grid.ravel() for name, grid in zip(input_columns, mesh)}
