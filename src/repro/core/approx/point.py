"""Point queries answered directly from a captured model.

The paper's first example query::

    SELECT intensity FROM measurements
    WHERE source = 42 AND wavelength = 0.14;

"requires us to look up the two parameters to the model function
I = p * nu^alpha and evaluate the function with those parameters" — no data
access at all.  :func:`answer_point_query` is that lookup-and-evaluate step,
returning the prediction together with error bounds (Figure 2, step 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.approx.error_bounds import ErrorEstimate
from repro.core.captured_model import CapturedModel
from repro.errors import ApproximationError, ModelNotFoundError
from repro.fitting.predict import PredictionInterval, predict_interval

__all__ = ["PointAnswer", "answer_point_query"]


@dataclass(frozen=True)
class PointAnswer:
    """An approximate answer to a fully-pinned point query."""

    value: float
    error: ErrorEstimate
    interval: PredictionInterval
    model_id: int
    group_key: tuple[Any, ...] | None

    def __str__(self) -> str:
        return str(self.error)


def answer_point_query(
    model: CapturedModel,
    input_values: Mapping[str, float],
    group_key: Mapping[str, Any] | None = None,
    confidence: float = 0.95,
) -> PointAnswer:
    """Answer a point query from the captured model alone.

    Parameters
    ----------
    model:
        The captured model predicting the requested output column.
    input_values:
        One value per model input column (e.g. ``{"frequency": 0.14}``).
    group_key:
        Values for the model's group columns (e.g. ``{"source": 42}``); must
        be given iff the model is grouped.
    """
    missing = [name for name in model.input_columns if name not in input_values]
    if missing:
        raise ApproximationError(
            f"point query must pin every model input; missing {missing} for model {model.model_id}"
        )

    key_tuple: tuple[Any, ...] | None = None
    if model.group_columns:
        if group_key is None:
            raise ApproximationError(
                f"model {model.model_id} is grouped by {list(model.group_columns)}; "
                "the point query must pin the group key"
            )
        missing_keys = [name for name in model.group_columns if name not in group_key]
        if missing_keys:
            raise ApproximationError(f"point query does not pin group columns {missing_keys}")
        key_tuple = tuple(group_key[name] for name in model.group_columns)

    fit = model.result_for_group(key_tuple) if key_tuple is not None else model.fit
    if fit is None:  # pragma: no cover - result_for_group raises before this
        raise ModelNotFoundError(f"no parameters available for group {key_tuple!r}")

    inputs = {name: float(input_values[name]) for name in model.input_columns}
    interval = predict_interval(fit, inputs, confidence=confidence)[0]
    return PointAnswer(
        value=interval.value,
        error=ErrorEstimate(value=interval.value, standard_error=interval.standard_error),
        interval=interval,
        model_id=model.model_id,
        group_key=key_tuple,
    )
