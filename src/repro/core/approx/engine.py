"""The approximate query engine: answering SQL from captured models.

This is where the harvested models pay off (Figure 2, steps 4-5).  Given a
SQL query, the engine decides whether some usable captured model can stand
in for the stored data, regenerates the tuples the query needs from the
model ("zero-IO"), runs the rest of the query over the regenerated table,
and attaches error estimates.  Queries the models cannot cover fall back to
exact execution — with the reason recorded, because the fallback conditions
(no model, non-enumerable inputs, unsupported SQL shape) are themselves
findings the paper discusses in §4.2.

Answer routes
-------------
``point``
    Every model input and group key is pinned by equality predicates: a
    single model evaluation (the paper's first example query).
``grouped-model`` / ``grouped-hybrid``
    ``GROUP BY`` aggregates answered by evaluating the captured per-group
    models group-by-group, with per-group error estimates.  The per-group
    router serves healthy groups from models and — in the hybrid variant —
    computes only the uncovered groups exactly and merges the two.
``range-aggregate``
    Aggregates restricted by range predicates (``BETWEEN``, ``<``, ``>``,
    ``IN``): the model is evaluated/integrated over the restricted input
    domain instead of falling back.
``analytic-aggregate``
    A global aggregate over the modelled column of an ungrouped linear-ish
    model: closed-form answer from the parameters (§4.2).
``virtual-table``
    The general route: enumerate the parameter space, generate the virtual
    table, run the query plan over it (the paper's second example query).
``exact-fallback``
    No usable model covers the query; execute against the raw data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

import numpy as np

from repro.core.approx.aggregates import analytic_aggregate, supports_analytic
from repro.core.approx.enumeration import (
    DEFAULT_MAX_ROWS,
    build_enumeration_plan,
    generate_virtual_table,
)
from repro.core.approx.error_bounds import ErrorEstimate, aggregate_error
from repro.core.approx.legal import LegalCombinationFilter
from repro.core.approx.routes.constraints import (
    bare_name as _bare_name,
    extract_constraints,
)
from repro.core.approx.routes.grouped import (
    GroupedRoutePlan,
    analyse_grouped_statement,
    answer_grouped,
    plan_grouped_route,
)
from repro.core.approx.routes.range_agg import analyse_range_statement, answer_range
from repro.core.approx.routes.router import RoutingPolicy
from repro.core.captured_model import CapturedModel
from repro.core.model_store import ModelStore
from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.db.expressions import Between, BinaryOp, ColumnRef, Expression, InList
from repro.db.operators.aggregate import SUPPORTED_AGGREGATES
from repro.db.expressions import FunctionCall
from repro.db.sql.ast import SelectStatement, Star, Statement
from repro.db.sql.planner import plan_select
from repro.db.table import Table
from repro.errors import (
    ApproximationError,
    EnumerationError,
    ExecutionError,
    ModelNotFoundError,
    SQLError,
)
from repro.obs.trace import NULL_TRACER, traced_operator_execute

__all__ = ["ApproximateAnswer", "ApproximateQueryEngine", "RouteSketch"]


@dataclass
class RouteSketch:
    """A static prediction of the model route that would serve a statement.

    Produced by :meth:`ApproximateQueryEngine.sketch_route` *without
    executing anything*: the unified planner turns a sketch into a plan node
    with predicted cost and error, then decides model vs. exact.  The fields
    carry exactly what the cost/error models need.
    """

    route: str
    model_ids: list[int]
    detail: str
    #: Residual standard error of the serving model (worst across models).
    residual_standard_error: float = 0.0
    #: RSE relative to the output scale, when the capture recorded it.
    relative_rse: float | None = None
    #: Model evaluations / virtual rows the route would generate.
    est_points: int = 0
    #: Grouped routes: how many groups each side serves.
    n_model_groups: int = 0
    n_exact_groups: int = 0
    #: Estimated raw rows the exact side of a hybrid plan must scan.
    uncovered_rows: float = 0.0
    #: Aggregate functions the statement computes (error prediction input).
    aggregate_functions: tuple[str, ...] = ()
    #: The modelled output column (error prediction falls back to its scale).
    output_column: str = ""
    #: The grouped route plan, kept so execution can reuse it.
    grouped_plan: GroupedRoutePlan | None = None


@dataclass
class ApproximateAnswer:
    """The result of asking the engine to answer a query approximately."""

    sql: str
    table: Table
    route: str
    is_exact: bool
    used_model_ids: list[int] = field(default_factory=list)
    reason: str = ""
    #: result-column name -> standard error estimate attached to that column
    column_errors: dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    io: dict[str, float] = field(default_factory=dict)
    virtual_rows_generated: int = 0
    #: group key -> result column -> standard error (grouped routes only)
    group_errors: dict[tuple, dict[str, float]] = field(default_factory=dict)
    #: group key -> result column -> value (grouped routes only)
    group_values: dict[tuple, dict[str, Any]] = field(default_factory=dict)
    #: group key -> serving provenance ("model#<id>" / "exact"; grouped routes)
    group_routes: dict[tuple, str] = field(default_factory=dict)

    def rows(self) -> list[tuple]:
        return self.table.to_rows()

    def scalar(self) -> Any:
        if self.table.num_rows != 1 or self.table.num_columns != 1:
            raise ApproximationError(
                f"scalar() requires a 1x1 result, got {self.table.num_rows}x{self.table.num_columns}"
            )
        return self.table.row(0)[0]

    def error_estimate(self, column: str) -> ErrorEstimate | None:
        if column not in self.column_errors:
            return None
        values = [v for v in self.table.column(column).to_pylist() if v is not None]
        value = float(values[0]) if len(values) == 1 else float("nan")
        return ErrorEstimate(value=value, standard_error=self.column_errors[column])

    def group_error_estimate(self, group_key: tuple | Any, column: str) -> ErrorEstimate | None:
        """The per-group error band a grouped route attached to one aggregate."""
        key = group_key if isinstance(group_key, tuple) else (group_key,)
        errors = self.group_errors.get(key)
        if errors is None or column not in errors:
            return None
        value = self.group_values.get(key, {}).get(column)
        return ErrorEstimate(
            value=float(value) if value is not None else float("nan"),
            standard_error=errors[column],
        )


class ApproximateQueryEngine:
    """Routes SQL queries to captured models when possible."""

    def __init__(
        self,
        database: Database,
        store: ModelStore,
        max_virtual_rows: int = DEFAULT_MAX_ROWS,
        use_legal_filter: bool = False,
        routing_policy: RoutingPolicy | None = None,
    ) -> None:
        self.database = database
        self.store = store
        self.max_virtual_rows = max_virtual_rows
        self.use_legal_filter = use_legal_filter
        #: Per-group model-vs-exact routing thresholds for the grouped route.
        self.routing_policy = routing_policy or RoutingPolicy()
        #: :class:`repro.obs.Tracer` for per-route spans.  Defaults to the
        #: shared disabled tracer, so span calls cost one attribute check.
        self.tracer = NULL_TRACER
        #: Optional callback ``(table, output_column, group_columns) ->
        #: CapturedModel | None`` that harvests a grouped model on demand when
        #: a GROUP BY query finds only ungrouped captures (wired to
        #: :meth:`repro.core.harvester.ModelHarvester.ensure_grouped`).
        self.grouped_model_provider = None
        #: (table_name, key columns) -> legality filter, built lazily on demand
        self._legal_filters: dict[tuple[str, tuple[str, ...]], LegalCombinationFilter] = {}

    # -- public API -------------------------------------------------------------

    def answer(
        self,
        sql: str,
        allow_fallback: bool = True,
        statement: Statement | None = None,
        grouped_route_plan: GroupedRoutePlan | None = None,
    ) -> ApproximateAnswer:
        """Answer ``sql`` from captured models, falling back to exact execution.

        ``statement`` lets the unified planner hand over the AST it already
        parsed; without it, the SQL text is parsed through the executor's
        shared LRU parse cache — never re-lexed per call.
        ``grouped_route_plan`` likewise hands over the per-group routing the
        planner's sketch already computed, so grouped queries are not
        route-planned twice per execution (the caller guarantees it was
        built against the current catalog/store state).
        """
        started = perf_counter()
        # Per-execution IO scope: interleaved queries on other threads never
        # leak pages into this answer's attribution.
        with self.database.io_model.scope() as io_scope:
            try:
                answer = self._answer_from_models(
                    sql, statement=statement, grouped_route_plan=grouped_route_plan
                )
                self._note_staleness(answer)
            except (ApproximationError, EnumerationError, ModelNotFoundError) as exc:
                if not allow_fallback:
                    raise
                answer = self._exact(sql, reason=str(exc))
        answer.elapsed_seconds = perf_counter() - started
        answer.io = io_scope.snapshot()
        return answer

    def answer_exact(self, sql: str) -> ApproximateAnswer:
        """Execute ``sql`` exactly (for comparisons and benchmarks)."""
        started = perf_counter()
        with self.database.io_model.scope() as io_scope:
            answer = self._exact(sql, reason="exact execution requested")
        answer.elapsed_seconds = perf_counter() - started
        answer.io = io_scope.snapshot()
        return answer

    def compare(self, sql: str) -> dict[str, Any]:
        """Run both the approximate and the exact query; report errors.

        Returns a dict with the two answers plus per-column mean relative
        error (for numeric result columns aligned by position).
        """
        approx = self.answer(sql)
        exact = self.answer_exact(sql)
        errors = _relative_errors(approx.table, exact.table)
        return {
            "approximate": approx,
            "exact": exact,
            "route": approx.route,
            "group_routes": dict(approx.group_routes),
            "relative_errors": errors,
            "max_relative_error": max(errors.values()) if errors else None,
            "approx_pages_read": approx.io.get("pages_read", 0.0),
            "exact_pages_read": exact.io.get("pages_read", 0.0),
        }

    # -- static route probing (unified planner) -----------------------------------

    def sketch_route(
        self, sql: str, statement: Statement | None = None, for_execution: bool = False
    ) -> RouteSketch | None:
        """Predict — without executing — which model route would serve ``sql``.

        Mirrors the routing order of :meth:`answer` using the routes' shared
        plan/shape gates, so the prediction and the execution cannot drift
        apart.  Returns None when no model route applies (the statement can
        only run exactly).  ``for_execution=True`` permits side effects the
        real answer path would incur anyway (the on-demand grouped harvest);
        a pure EXPLAIN must leave the store untouched and passes False.
        """
        if statement is None:
            statement = self._parse(sql)
        if not isinstance(statement, SelectStatement):
            return None
        if statement.table is None or statement.joins:
            return None
        table_name = statement.table.name
        if not self.database.has_table(table_name):
            return None
        try:
            referenced = _referenced_columns(statement)
        except ApproximationError:
            return None

        functions = _aggregate_functions(statement)

        # Route 1: grouped (per-group model serving, exact fill-in).
        grouped = self._plan_grouped(statement, table_name, allow_harvest=for_execution)
        if grouped is not None:
            return self._sketch_grouped(grouped, table_name, functions)

        try:
            model = self._select_model(table_name, referenced)
        except ModelNotFoundError:
            return None
        covered = set(model.group_columns) | set(model.input_columns) | {model.output_column}
        if referenced - covered:
            return None
        rse = model.quality.residual_standard_error
        relative = model.quality.relative_rse
        pinned = _extract_pinned_values(statement.where)

        # Route 2: fully pinned point query.
        if self._point_shape(statement, model, pinned):
            return RouteSketch(
                route="point",
                model_ids=[model.model_id],
                detail="all model inputs pinned by equality predicates",
                residual_standard_error=rse,
                relative_rse=relative,
                est_points=1,
                aggregate_functions=functions,
                output_column=model.output_column,
            )

        # Route 3: aggregates restricted by range predicates.
        if analyse_range_statement(statement, model) is not None:
            return RouteSketch(
                route="range-aggregate",
                model_ids=[model.model_id],
                detail="model evaluated/integrated over the restricted input domain",
                residual_standard_error=rse,
                relative_rse=relative,
                est_points=self._domain_points(model),
                aggregate_functions=functions,
                output_column=model.output_column,
            )

        # Route 4: closed-form analytic aggregate.
        if self._analytic_shape(statement, model, table_name):
            return RouteSketch(
                route="analytic-aggregate",
                model_ids=[model.model_id],
                detail="closed-form aggregate from model parameters",
                residual_standard_error=rse,
                relative_rse=relative,
                est_points=0,
                aggregate_functions=functions,
                output_column=model.output_column,
            )

        # Route 5: parameter-space enumeration.
        stats = self.database.stats(model.table_name)
        try:
            plan = build_enumeration_plan(
                model, stats, pinned_values=pinned, max_rows=self.max_virtual_rows
            )
        except EnumerationError:
            return None
        return RouteSketch(
            route="virtual-table",
            model_ids=[model.model_id],
            detail=f"parameter space enumerable ({plan.describe()})",
            residual_standard_error=rse,
            relative_rse=relative,
            est_points=plan.num_rows,
            aggregate_functions=functions,
            output_column=model.output_column,
        )

    def _sketch_grouped(
        self, grouped: GroupedRoutePlan, table_name: str, functions: tuple[str, ...]
    ) -> RouteSketch:
        from repro.core.approx.routes.aggcalc import current_group_rows

        routing = grouped.routing
        stats = self.database.stats(table_name)
        uncovered_rows = 0.0
        if routing.exact_groups:
            live = current_group_rows(stats, grouped.analysis.group_columns)
            if live is not None:
                uncovered_rows = float(
                    sum(live.get(a.key, 0.0) for a in routing.exact_groups)
                )
            else:
                # No live per-group counts: assume uniform group sizes.
                uncovered_rows = stats.row_count * (
                    len(routing.exact_groups) / max(len(routing.assignments), 1)
                )
        rse = max(
            (m.quality.residual_standard_error for m in grouped.candidates), default=0.0
        )
        relatives = [
            m.quality.relative_rse
            for m in grouped.candidates
            if m.quality.relative_rse is not None
        ]
        route = "grouped-hybrid" if routing.exact_groups else "grouped-model"
        return RouteSketch(
            route=route,
            model_ids=grouped.used_model_ids,
            detail=routing.describe(),
            residual_standard_error=rse,
            relative_rse=max(relatives) if relatives else None,
            est_points=grouped.n_model_groups,
            n_model_groups=grouped.n_model_groups,
            n_exact_groups=grouped.n_exact_groups,
            uncovered_rows=uncovered_rows,
            aggregate_functions=functions,
            output_column=grouped.analysis.output_column,
            grouped_plan=grouped,
        )

    def _point_shape(
        self,
        statement: SelectStatement,
        model: CapturedModel,
        pinned: dict[str, list[Any]],
    ) -> bool:
        """The point route's shape gate (shared with :meth:`_try_point_route`)."""
        if statement.group_by or statement.order_by or statement.distinct:
            return False
        if _has_aggregates(statement):
            return False
        if len(statement.items) != 1:
            return False
        item = statement.items[0]
        if isinstance(item.expression, Star) or not isinstance(item.expression, ColumnRef):
            return False
        if _bare_name(item.expression.name) != model.output_column:
            return False
        needed = list(model.group_columns) + list(model.input_columns)
        return all(column in pinned and len(pinned[column]) == 1 for column in needed)

    def _analytic_shape(
        self, statement: SelectStatement, model: CapturedModel, table_name: str
    ) -> bool:
        """The analytic route's shape gate, including the stats it needs."""
        if model.is_grouped or statement.group_by or statement.where is not None:
            return False
        if not supports_analytic(model):
            return False
        if _simple_aggregates(statement, model.output_column) is None:
            return False
        stats = self.database.stats(table_name)
        for column in model.input_columns:
            column_stats = stats.columns.get(column)
            if column_stats is None or column_stats.min_value is None or column_stats.max_value is None:
                return False
        return True

    def _domain_points(self, model: CapturedModel) -> int:
        """How many domain points a range/enumeration evaluation touches."""
        stats = self.database.stats(model.table_name)
        points = 1
        for column in model.input_columns:
            column_stats = stats.columns.get(column)
            if column_stats is not None and column_stats.domain is not None:
                points *= max(len(column_stats.domain), 1)
        if model.is_grouped:
            points *= max(len(model.fit.records), 1)  # type: ignore[union-attr]
        return min(points, self.max_virtual_rows)

    # -- routing ------------------------------------------------------------------

    def _parse(self, sql: str) -> Statement:
        """Parse through the executor's shared LRU cache (PR-3 machinery).

        The engine re-analyses the same fallback and differential statements
        over and over; re-lexing each time used to dominate small queries.
        The cache is pure (ASTs are immutable), so no version key is needed
        here — the version-keyed *plan* cache guards exact execution.
        """
        return self.database.parse_sql(sql)

    def _answer_from_models(
        self,
        sql: str,
        statement: Statement | None = None,
        grouped_route_plan: GroupedRoutePlan | None = None,
    ) -> ApproximateAnswer:
        if statement is None:
            statement = self._parse(sql)
        if not isinstance(statement, SelectStatement):
            raise ApproximationError("only SELECT statements can be answered approximately")
        if statement.table is None or statement.joins:
            raise ApproximationError("approximate answering supports single-table queries only")

        table_name = statement.table.name
        if not self.database.has_table(table_name):
            raise ApproximationError(f"unknown table {table_name!r}")

        referenced = _referenced_columns(statement)

        # Route 1: GROUP BY aggregates served group-by-group (does its own
        # model lookup — the query's group keys need not be covered by the
        # generically best model, and grouped models can be harvested on
        # demand through ``grouped_model_provider``).
        grouped_answer = self._try_grouped_route(
            sql, statement, table_name, route_plan=grouped_route_plan
        )
        if grouped_answer is not None:
            return grouped_answer

        model = self._select_model(table_name, referenced)

        pinned = _extract_pinned_values(statement.where)
        covered = set(model.group_columns) | set(model.input_columns) | {model.output_column}
        uncovered = referenced - covered
        if uncovered:
            raise ApproximationError(
                f"query references columns {sorted(uncovered)} that model {model.model_id} does not cover"
            )

        # Route 2: fully pinned point query.
        point_answer = self._try_point_route(statement, model, pinned)
        if point_answer is not None:
            return point_answer

        # Route 3: aggregates restricted by range predicates.
        range_answer = self._try_range_route(sql, statement, model, table_name)
        if range_answer is not None:
            return range_answer

        # Route 4: analytic aggregate for ungrouped, closed-form friendly models.
        analytic_answer = self._try_analytic_route(statement, model, table_name)
        if analytic_answer is not None:
            return analytic_answer

        # Route 5: generic parameter-space enumeration.
        return self._virtual_table_route(sql, statement, model, pinned)

    def _select_model(self, table_name: str, referenced: set[str]) -> CapturedModel:
        """Pick the captured model whose output the query needs.

        Stale models are admitted (``include_stale``) but ranked behind any
        active one: during continuous ingestion every append briefly marks
        models stale, and falling back to exact execution for that window
        would defeat the purpose of answering from models.
        """
        candidate_outputs = [
            column
            for column in referenced
            if self.store.has_model_for(table_name, column, include_stale=True)
        ]
        if not candidate_outputs:
            raise ModelNotFoundError(
                f"no captured model predicts any column referenced by the query on {table_name!r}"
            )
        # Prefer the model that covers the most of the referenced columns.
        best: CapturedModel | None = None
        best_score = -1
        for output in candidate_outputs:
            try:
                model = self.store.best_model(table_name, output, include_stale=True)
            except ModelNotFoundError:
                continue
            covered = set(model.group_columns) | set(model.input_columns) | {model.output_column}
            score = len(referenced & covered)
            if score > best_score:
                best, best_score = model, score
        if best is None:
            raise ModelNotFoundError(f"no usable captured model for table {table_name!r}")
        return best

    # -- route implementations ---------------------------------------------------------

    def _grouped_candidates(
        self,
        statement_analysis,
        table_name: str,
        allow_harvest: bool = True,
    ) -> list[CapturedModel]:
        """Grouped candidate models, harvesting on demand when allowed."""
        group_columns = statement_analysis.group_columns
        output_column = statement_analysis.output_column
        candidates = self.store.grouped_candidates(table_name, output_column, group_columns)
        if not candidates and allow_harvest and self.grouped_model_provider is not None:
            harvested = self.grouped_model_provider(table_name, output_column, group_columns)
            if harvested is not None:
                # The on-demand grouped harvest reads the raw data once; like
                # building a legality filter, it is charged as a one-off scan.
                table = self.database.table(table_name)
                self.database.io_model.charge_scan(
                    table, [c for c in harvested.coverage.columns() if c in table.schema]
                )
                candidates = self.store.grouped_candidates(
                    table_name, output_column, group_columns
                )
        return candidates

    def _plan_grouped(
        self, statement: SelectStatement, table_name: str, allow_harvest: bool = True
    ) -> GroupedRoutePlan | None:
        """The grouped route's plan phase (shared by answer and sketch)."""
        analysis = analyse_grouped_statement(statement)
        if analysis is None:
            return None
        candidates = self._grouped_candidates(analysis, table_name, allow_harvest)
        if not candidates:
            return None
        stats = self.database.stats(table_name)
        return plan_grouped_route(
            statement,
            self.store,
            stats,
            policy=self.routing_policy,
            models=candidates,
            analysis=analysis,
        )

    def _try_grouped_route(
        self,
        sql: str,
        statement: SelectStatement,
        table_name: str,
        route_plan: GroupedRoutePlan | None = None,
    ) -> ApproximateAnswer | None:
        """GROUP BY aggregates evaluated per group, with exact fill-in."""
        if route_plan is None:
            route_plan = self._plan_grouped(statement, table_name)
        if route_plan is None:
            return None
        stats = self.database.stats(table_name)
        tracer = self.tracer
        with tracer.span("route:grouped") as span:
            if tracer.active:
                span.annotate(
                    model_groups=route_plan.n_model_groups,
                    exact_groups=route_plan.n_exact_groups,
                    models=list(route_plan.used_model_ids),
                )
            result = answer_grouped(
                statement,
                self.store,
                stats,
                self._execute_exact_groups,
                policy=self.routing_policy,
                route_plan=route_plan,
            )
        if result is None:
            return None
        return ApproximateAnswer(
            sql=sql,
            table=result.table,
            route=result.route,
            is_exact=False,
            used_model_ids=result.used_model_ids,
            reason=result.reason,
            column_errors=result.column_errors,
            virtual_rows_generated=result.virtual_rows_generated,
            group_errors=result.group_errors,
            group_values=result.group_values,
            group_routes=result.group_routes,
        )

    def _execute_exact_groups(
        self, statement: SelectStatement, membership: Expression
    ) -> Table:
        """Run ``statement`` exactly, restricted to the given groups.

        This is the exact half of the hybrid grouped route: only the rows of
        the uncovered groups are scanned (and charged as real IO).
        """
        where = (
            membership
            if statement.where is None
            else BinaryOp("and", statement.where, membership)
        )
        sub_statement = SelectStatement(
            items=list(statement.items),
            table=statement.table,
            joins=[],
            where=where,
            group_by=list(statement.group_by),
            having=None,
            order_by=[],
            limit=None,
            offset=0,
            distinct=False,
        )
        planned = plan_select(sub_statement, self.database.catalog, io_model=self.database.io_model)
        tracer = self.tracer
        if tracer.active:
            with tracer.span("exact-fill-in"):
                return traced_operator_execute(planned.root, tracer)
        return planned.root.execute()

    def _try_range_route(
        self, sql: str, statement: SelectStatement, model: CapturedModel, table_name: str
    ) -> ApproximateAnswer | None:
        """Aggregates over range-restricted input domains."""
        stats = self.database.stats(table_name)
        result = answer_range(statement, model, stats)
        if result is None:
            return None
        return ApproximateAnswer(
            sql=sql,
            table=result.table,
            route=result.route,
            is_exact=False,
            used_model_ids=result.used_model_ids,
            reason=result.reason,
            column_errors=result.column_errors,
            virtual_rows_generated=result.virtual_rows_generated,
        )

    def _try_point_route(
        self,
        statement: SelectStatement,
        model: CapturedModel,
        pinned: dict[str, list[Any]],
    ) -> ApproximateAnswer | None:
        """Single model evaluation when every group key and input is pinned to one value."""
        if not self._point_shape(statement, model, pinned):
            return None
        item = statement.items[0]

        from repro.core.approx.point import answer_point_query

        group_key = {column: pinned[column][0] for column in model.group_columns}
        input_values = {column: float(pinned[column][0]) for column in model.input_columns}
        point = answer_point_query(model, input_values, group_key or None)

        output_name = item.alias or model.output_column
        table = Table.from_dict("approximate", {output_name: [point.value]})
        return ApproximateAnswer(
            sql="",
            table=table,
            route="point",
            is_exact=False,
            used_model_ids=[model.model_id],
            reason="all model inputs pinned by equality predicates",
            column_errors={output_name: point.error.standard_error},
            virtual_rows_generated=1,
        )

    def _try_analytic_route(
        self,
        statement: SelectStatement,
        model: CapturedModel,
        table_name: str,
    ) -> ApproximateAnswer | None:
        """Closed-form aggregates for ungrouped models (§4.2 analytic solutions)."""
        if not self._analytic_shape(statement, model, table_name):
            return None
        aggregates = _simple_aggregates(statement, model.output_column)
        if aggregates is None:  # pragma: no cover - _analytic_shape already gated
            return None

        stats = self.database.stats(table_name)
        input_ranges = {}
        input_means: dict[str, float] = {}
        for column in model.input_columns:
            column_stats = stats.columns.get(column)
            if column_stats is None or column_stats.min_value is None or column_stats.max_value is None:
                return None
            input_ranges[column] = (float(column_stats.min_value), float(column_stats.max_value))
            if column_stats.mean is not None:
                input_means[column] = float(column_stats.mean)
        row_count = stats.row_count

        data: dict[str, list[Any]] = {}
        errors: dict[str, float] = {}
        for alias, function in aggregates:
            result = analytic_aggregate(
                model, function, input_ranges, row_count, input_means=input_means or None
            )
            data[alias] = [result.value]
            errors[alias] = result.error.standard_error
        table = Table.from_dict("approximate", data)
        return ApproximateAnswer(
            sql="",
            table=table,
            route="analytic-aggregate",
            is_exact=False,
            used_model_ids=[model.model_id],
            reason="closed-form aggregate from linear model parameters",
            column_errors=errors,
            virtual_rows_generated=0,
        )

    def _virtual_table_route(
        self,
        sql: str,
        statement: SelectStatement,
        model: CapturedModel,
        pinned: dict[str, list[Any]],
    ) -> ApproximateAnswer:
        stats = self.database.stats(model.table_name)
        tracer = self.tracer
        plan = build_enumeration_plan(model, stats, pinned_values=pinned, max_rows=self.max_virtual_rows)
        with tracer.span("enumerate") as span:
            virtual = generate_virtual_table(model, plan, table_name=model.table_name)
            if tracer.active:
                span.annotate(plan=plan.describe(), virtual_rows=virtual.num_rows)

        if self.use_legal_filter:
            legal = self._legal_filter_for(model)
            virtual = legal.filter_table(virtual)

        # Execute the original statement against the model-generated table.
        shadow_catalog = Catalog()
        shadow_catalog.register_table(virtual)
        try:
            planned = plan_select(statement, shadow_catalog, io_model=None)
            with tracer.span("evaluate"):
                if tracer.active:
                    result = traced_operator_execute(planned.root, tracer)
                else:
                    result = planned.root.execute()
        except (SQLError, ExecutionError) as exc:
            # e.g. an aggregate/function outside the supported set: record it
            # as a fallback reason instead of crashing the engine mid-route.
            raise ApproximationError(
                f"query plan cannot run over the model-generated table: {exc}"
            ) from exc

        errors = self._result_errors(statement, model, virtual)
        return ApproximateAnswer(
            sql=sql,
            table=result,
            route="virtual-table",
            is_exact=False,
            used_model_ids=[model.model_id],
            reason=f"parameter space enumerated ({plan.describe()})",
            column_errors=errors,
            virtual_rows_generated=virtual.num_rows,
        )

    def _exact(self, sql: str, reason: str) -> ApproximateAnswer:
        result = self.database.sql(sql)
        return ApproximateAnswer(
            sql=sql,
            table=result.table,
            route="exact-fallback",
            is_exact=True,
            reason=reason,
        )

    # -- helpers -------------------------------------------------------------------------

    def _note_staleness(self, answer: ApproximateAnswer) -> None:
        """Flag answers served by stale models so callers can tell a fresh
        answer from one awaiting the maintenance loop."""
        stale_ids = [
            model_id
            for model_id in answer.used_model_ids
            if self.store.get(model_id).status == "stale"
        ]
        if stale_ids:
            note = f"served by stale model(s) {stale_ids} pending maintenance"
            answer.reason = f"{answer.reason}; {note}" if answer.reason else note

    def _legal_filter_for(self, model: CapturedModel) -> LegalCombinationFilter:
        key_columns = tuple(list(model.group_columns) + list(model.input_columns))
        cache_key = (model.table_name, key_columns)
        if cache_key not in self._legal_filters:
            table = self.database.table(model.table_name)
            # Building the filter reads the raw data once; it is an auxiliary
            # structure like an index, charged as a one-off scan.
            self.database.io_model.charge_scan(table, list(key_columns))
            self._legal_filters[cache_key] = LegalCombinationFilter.from_table(
                table, key_columns, round_decimals=3
            )
        return self._legal_filters[cache_key]

    def _result_errors(
        self, statement: SelectStatement, model: CapturedModel, virtual: Table
    ) -> dict[str, float]:
        """Standard-error estimates for the result columns derived from the model."""
        per_row = model.quality.residual_standard_error
        errors: dict[str, float] = {}
        n = max(virtual.num_rows, 1)
        for item in statement.items:
            if isinstance(item.expression, Star):
                errors[model.output_column] = per_row
                continue
            expression = item.expression
            name = item.alias or expression.output_name()
            aggregate = _first_aggregate(expression)
            if aggregate is not None:
                function, argument = aggregate
                if argument is None or model.output_column in argument.referenced_columns():
                    errors[name] = aggregate_error(function, per_row, n)
            elif model.output_column in expression.referenced_columns():
                errors[name] = per_row
        return errors


# ---------------------------------------------------------------------------
# Statement analysis helpers (qualifier stripping and conjunct splitting are
# shared with the routes package — one implementation for the whole engine)
# ---------------------------------------------------------------------------


def _referenced_columns(statement: SelectStatement) -> set[str]:
    names: set[str] = set()
    for item in statement.items:
        if isinstance(item.expression, Star):
            raise ApproximationError("SELECT * cannot be answered from a model (unknown column set)")
        names |= item.expression.referenced_columns()
    if statement.where is not None:
        names |= statement.where.referenced_columns()
    for expression in statement.group_by:
        names |= expression.referenced_columns()
    if statement.having is not None:
        names |= statement.having.referenced_columns()
    for order in statement.order_by:
        names |= order.expression.referenced_columns()
    return {_bare_name(name) for name in names}


def _aggregate_functions(statement: SelectStatement) -> tuple[str, ...]:
    """The aggregate functions the SELECT list computes, in item order."""
    functions: list[str] = []
    for item in statement.items:
        if isinstance(item.expression, Star):
            continue
        found = _first_aggregate(item.expression)
        if found is not None:
            functions.append(found[0])
    return tuple(functions)


def _has_aggregates(statement: SelectStatement) -> bool:
    for item in statement.items:
        if isinstance(item.expression, Star):
            continue
        if _first_aggregate(item.expression) is not None:
            return True
    return False


def _first_aggregate(expression: Expression) -> tuple[str, Expression | None] | None:
    """Find the first aggregate call inside an expression tree."""
    if isinstance(expression, FunctionCall) and expression.name.lower() in SUPPORTED_AGGREGATES:
        argument = expression.args[0] if expression.args else None
        return expression.name.lower(), argument
    for child in _children_of(expression):
        found = _first_aggregate(child)
        if found is not None:
            return found
    return None


def _children_of(expression: Expression) -> list[Expression]:
    if isinstance(expression, BinaryOp):
        return [expression.left, expression.right]
    if isinstance(expression, FunctionCall):
        return list(expression.args)
    if isinstance(expression, Between):
        return [expression.operand, expression.low, expression.high]
    if isinstance(expression, InList):
        return [expression.operand, *expression.values]
    return []


def _simple_aggregates(
    statement: SelectStatement, output_column: str
) -> list[tuple[str, str]] | None:
    """If every SELECT item is ``agg(output_column)`` with a supported function,
    return the (alias, function) pairs; otherwise None."""
    pairs: list[tuple[str, str]] = []
    for item in statement.items:
        expression = item.expression
        if isinstance(expression, Star) or not isinstance(expression, FunctionCall):
            return None
        function = expression.name.lower()
        if function not in ("min", "max", "avg", "sum"):
            return None
        if len(expression.args) != 1 or not isinstance(expression.args[0], ColumnRef):
            return None
        if _bare_name(expression.args[0].name) != output_column:
            return None
        alias = item.alias or f"{function}({output_column})"
        pairs.append((alias, function))
    return pairs if pairs else None


def _extract_pinned_values(where: Expression | None) -> dict[str, list[Any]]:
    """Columns pinned to literal values by the WHERE clause's top-level
    conjuncts — derived from the routes' shared constraint analysis, so
    equality/IN decomposition has a single implementation.  Multiple pins on
    one column intersect (``g = 1 AND g IN (1, 2)`` pins to ``[1]``), which
    is always sound for enumeration: the statement's WHERE is re-applied
    over the generated table."""
    constraints = extract_constraints(where)
    return {
        column: list(constraint.values)
        for column, constraint in constraints.by_column.items()
        if constraint.is_pinned
    }


def _relative_errors(approx: Table, exact: Table) -> dict[str, float]:
    """Mean relative error per numeric column, aligning result rows by position."""
    errors: dict[str, float] = {}
    if approx.num_rows == 0 or exact.num_rows == 0:
        return errors
    for approx_name, exact_name in zip(approx.schema.names, exact.schema.names):
        approx_column = approx.column(approx_name)
        exact_column = exact.column(exact_name)
        if not (approx_column.dtype.is_numeric and exact_column.dtype.is_numeric):
            continue
        n = min(len(approx_column), len(exact_column))
        approx_values = np.asarray(approx_column.to_numpy()[:n], dtype=np.float64)
        exact_values = np.asarray(exact_column.to_numpy()[:n], dtype=np.float64)
        mask = np.isfinite(approx_values) & np.isfinite(exact_values)
        if not mask.any():
            continue
        denominator = np.where(np.abs(exact_values[mask]) > 1e-12, np.abs(exact_values[mask]), 1.0)
        errors[approx_name] = float(np.mean(np.abs(approx_values[mask] - exact_values[mask]) / denominator))
    return errors
