"""Captured models: what the database stores after intercepting a fit.

A :class:`CapturedModel` is the persistent artefact of the interception in
Figure 2: the model's *source form* (the formula text), the fitted
parameters (a single :class:`~repro.fitting.model.FitResult` or a grouped
result with one parameter set per group), the quality judgement, and the
coverage metadata (which table/columns/predicate the model describes) needed
to decide whether it can answer a later query.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.quality import ModelQuality
from repro.db.table import Table
from repro.errors import ModelNotFoundError
from repro.fitting.grouped import GroupedFitResult
from repro.fitting.model import FitResult

__all__ = ["ModelCoverage", "CapturedModel", "ensure_model_id_floor"]

_id_counter = itertools.count(1)


def ensure_model_id_floor(minimum: int) -> None:
    """Advance the model-id sequence past ``minimum``.

    The durable warehouse restores captured models with their original ids;
    without raising the floor, the next in-process capture would reuse an id
    the restored models already occupy.
    """
    global _id_counter
    current = next(_id_counter)
    _id_counter = itertools.count(max(current, int(minimum) + 1))


@dataclass(frozen=True)
class ModelCoverage:
    """What part of the data a captured model describes.

    ``predicate_sql`` is the textual WHERE clause of the fitted subset (None
    when the whole table was used) — this is the paper's "partial models"
    challenge: a model fitted to a restricted query result only covers that
    subset.

    ``row_range`` restricts coverage to a half-open row interval of the base
    table (partition-scoped models): the model was fitted on exactly
    ``table[start:stop]``.  Range-scoped models never serve whole-table
    queries directly; the grouped route merges their per-group partials the
    same way it merges archive-segment models.
    """

    table_name: str
    input_columns: tuple[str, ...]
    output_column: str
    group_columns: tuple[str, ...] = ()
    predicate_sql: str | None = None
    row_range: tuple[int, int] | None = None

    @property
    def covers_whole_table(self) -> bool:
        return self.predicate_sql is None and self.row_range is None

    def columns(self) -> set[str]:
        return set(self.input_columns) | {self.output_column} | set(self.group_columns)


@dataclass
class CapturedModel:
    """A harvested model stored inside the database."""

    coverage: ModelCoverage
    formula: str
    fit: FitResult | GroupedFitResult
    quality: ModelQuality
    accepted: bool
    #: Fraction of groups that fitted successfully (1.0 for ungrouped models).
    group_fit_fraction: float = 1.0
    #: Monotonically increasing capture sequence number (acts as a timestamp).
    model_id: int = field(default_factory=lambda: next(_id_counter))
    #: Catalog row-count of the table at capture time (staleness detection).
    fitted_row_count: int = 0
    #: Free-form extras (optimiser method, robustness, notes).
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Lifecycle status: "active", "stale", "retired" or "superseded".
    status: str = "active"
    #: Sampled |relative error| observations from executed plans (most
    #: recent last, bounded) — the planner's closed feedback loop: models
    #: the planner catches lying accumulate evidence here and are demoted.
    observed_errors: list[float] = field(default_factory=list)

    # -- classification ----------------------------------------------------------

    @property
    def is_grouped(self) -> bool:
        return isinstance(self.fit, GroupedFitResult)

    @property
    def family_name(self) -> str:
        if self.is_grouped:
            return self.fit.family.name
        return self.fit.family.name

    @property
    def is_linear(self) -> bool:
        family = self.fit.family
        return bool(family.is_linear)

    @property
    def table_name(self) -> str:
        return self.coverage.table_name

    @property
    def output_column(self) -> str:
        return self.coverage.output_column

    @property
    def input_columns(self) -> tuple[str, ...]:
        return self.coverage.input_columns

    @property
    def group_columns(self) -> tuple[str, ...]:
        return self.coverage.group_columns

    # -- prediction ----------------------------------------------------------------

    def result_for_group(self, key: tuple[Any, ...] | Any) -> FitResult:
        """The per-group FitResult (or the single FitResult for ungrouped models)."""
        if not self.is_grouped:
            return self.fit  # type: ignore[return-value]
        result = self.fit.result_for(key)  # type: ignore[union-attr]
        if result is None:
            pretty = key if isinstance(key, tuple) else (key,)
            raise ModelNotFoundError(
                f"model {self.model_id} has no fitted parameters for group {pretty!r}"
            )
        return result

    def predict(
        self,
        inputs: Mapping[str, np.ndarray | float],
        group_key: tuple[Any, ...] | Any | None = None,
    ) -> np.ndarray:
        """Predict output values for the given inputs (and group, if grouped)."""
        arrays = {name: np.atleast_1d(np.asarray(value, dtype=np.float64)) for name, value in inputs.items()}
        if self.is_grouped:
            if group_key is None:
                raise ModelNotFoundError(
                    f"model {self.model_id} is grouped by {self.group_columns}; a group key is required"
                )
            return self.result_for_group(group_key).predict(arrays)
        return self.fit.predict(arrays)  # type: ignore[union-attr]

    def predict_rows(
        self,
        inputs: Mapping[str, np.ndarray],
        group_key_lists: Sequence[Sequence[Any]] | None = None,
    ) -> np.ndarray:
        """Per-row predictions over aligned column arrays.

        For grouped models ``group_key_lists`` holds one value list per group
        column (aligned with the input arrays); rows whose group has no
        fitted parameters come back NaN instead of raising — callers scoring
        a model against data (revalidation, drift monitoring) skip them.
        """
        arrays = {
            name: np.asarray(values, dtype=np.float64) for name, values in inputs.items()
        }
        if not self.is_grouped:
            return np.asarray(self.fit.predict(arrays), dtype=np.float64)
        if group_key_lists is None:
            raise ModelNotFoundError(
                f"model {self.model_id} is grouped by {self.group_columns}; "
                "per-row group keys are required"
            )
        num_rows = len(next(iter(arrays.values()))) if arrays else len(group_key_lists[0])
        predictions = np.full(num_rows, np.nan)
        group_rows: dict[tuple[Any, ...], list[int]] = {}
        for row_index in range(num_rows):
            key = tuple(keys[row_index] for keys in group_key_lists)
            group_rows.setdefault(key, []).append(row_index)
        for key, rows in group_rows.items():
            fit = self.fit.result_for(key)  # type: ignore[union-attr]
            if fit is None:
                continue
            indices = np.asarray(rows, dtype=np.int64)
            group_inputs = {name: values[indices] for name, values in arrays.items()}
            predictions[indices] = fit.predict(group_inputs)
        return predictions

    def prediction_error(self, group_key: tuple[Any, ...] | Any | None = None) -> float:
        """The residual standard error to attach to approximate answers."""
        if self.is_grouped and group_key is not None:
            try:
                return self.result_for_group(group_key).residual_standard_error
            except ModelNotFoundError:
                return self.quality.residual_standard_error
        return self.quality.residual_standard_error

    # -- storage accounting -----------------------------------------------------------

    def parameter_table(self) -> Table:
        """The stored parameter table (Table 1 of the paper for grouped models)."""
        if self.is_grouped:
            return self.fit.to_parameter_table(f"model_{self.model_id}_parameters")  # type: ignore[union-attr]
        fit: FitResult = self.fit  # type: ignore[assignment]
        data: dict[str, list[Any]] = {name: [float(value)] for name, value in fit.param_dict.items()}
        data["residual_se"] = [fit.residual_standard_error]
        data["r_squared"] = [fit.r_squared]
        data["n_obs"] = [fit.n_observations]
        return Table.from_dict(f"model_{self.model_id}_parameters", data)

    def stored_byte_size(self) -> int:
        """Nominal bytes needed to store the captured model's parameters."""
        return self.parameter_table().byte_size()

    # -- lifecycle ------------------------------------------------------------------------

    def mark_stale(self) -> None:
        self.status = "stale"

    def retire(self) -> None:
        self.status = "retired"

    @property
    def is_usable(self) -> bool:
        return self.accepted and self.status == "active"

    @property
    def is_servable(self) -> bool:
        """Usable *or* merely stale: still the best available answer while
        the maintenance loop catches up with appended data."""
        return self.accepted and self.status in ("active", "stale")

    def describe(self) -> str:
        grouped = f" per {list(self.group_columns)}" if self.is_grouped else ""
        return (
            f"model#{self.model_id} [{self.status}] {self.coverage.table_name}: "
            f"{self.output_column} ~ {self.family_name}({', '.join(self.input_columns)}){grouped} "
            f"({self.quality.summary()})"
        )
