"""The end-to-end system façade: a database that captures the laws of its data.

:class:`LawsDatabase` wires together the relational substrate, the model
store, the harvester, the approximate query engine and the model-based
storage optimiser into the single object the paper envisions: "a database
system which is able to gain unprecedented understanding by autonomous and
proactive harvesting of statistical models as they are fitted to the stored
data."
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.approx.engine import ApproximateAnswer, ApproximateQueryEngine, _relative_errors
from repro.core.approx.anomalies import AnomalyReport, detect_anomalies
from repro.core.captured_model import CapturedModel
from repro.core.harvester import HarvestReport, ModelHarvester
from repro.core.model_store import ModelStore
from repro.core.planner import (
    AccuracyContract,
    ObservedErrorFeedback,
    PlannedAnswer,
    UnifiedPlan,
    UnifiedPlanner,
)
from repro.core.planner.cost import CostModel
from repro.core.quality import QualityPolicy
from repro.core.snapshot import Snapshot
from repro.core.storage.model_switching import ModelLifecycleManager
from repro.core.storage.semantic_compression import CompressedTable, ModelCompressor
from repro.core.storage.zero_io import ScanComparison, ZeroIOScanner
from repro.core.strawman import StrawmanFrame
from repro.db.database import Database
from repro.db.io_model import IOParameters
from repro.db.schema import Schema
from repro.db.sql.ast import InsertStatement, SelectStatement
from repro.db.sql.executor import QueryResult
from repro.db.table import Table
from repro.errors import ApproximationError, ArchiveError, PersistenceError
from repro.obs import (
    CostCalibrator,
    Event,
    FlightRecorder,
    Observability,
    SLO,
    SLOEngine,
    SlowQuery,
    Span,
    is_telemetry_table,
    spans_to_otlp,
)
from repro.parallel import ParallelQueryEngine
from repro.parallel.partition import (
    PARTITION_META_KEY,
    build_partition_map,
    hash_partition_order,
    range_partition_order,
)
from repro.persist.archive import ArchiveReport, ArchiveTier
from repro.persist.store import CheckpointReport, DurableStore, RecoveryReport
from repro.resilience import FaultInjector, ResilienceRuntime, RetryPolicy
from repro.streaming.ingest import IngestBatch, IngestStats, StreamIngestor
from repro.streaming.maintenance import MaintenanceReport, ModelMaintenancePolicy, WatchTarget

__all__ = ["LawsDatabase"]


class LawsDatabase:
    """A relational database that harvests and exploits user models."""

    def __init__(
        self,
        quality_policy: QualityPolicy | None = None,
        io_parameters: IOParameters | None = None,
        use_legal_filter: bool = False,
        ingest_batch_size: int = 512,
        verify_sample_fraction: float = 0.05,
        verify_seed: int | None = None,
        observability: bool = True,
        slow_query_seconds: float = 0.25,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.database = Database(io_parameters)
        self.models = ModelStore()
        self.harvester = ModelHarvester(self.database, self.models, quality_policy)
        self.approx = ApproximateQueryEngine(
            self.database, self.models, use_legal_filter=use_legal_filter
        )
        # GROUP BY queries over a column whose captures are all ungrouped
        # trigger an on-demand grouped harvest (same formula, per group) —
        # guarded so it never fits against a table whose cold rows moved to
        # the archive tier (the live remainder is predicate-biased).
        self.approx.grouped_model_provider = self._grouped_model_provider
        self.lifecycle = ModelLifecycleManager(self.database, self.models, self.harvester)
        self.zero_io = ZeroIOScanner(self.database)
        self.ingestor = StreamIngestor(self.database, batch_size=ingest_batch_size)
        self.maintenance = ModelMaintenancePolicy(
            self.database, self.models, self.harvester, self.lifecycle
        )
        self.maintenance.refit_guard = self._archive_refit_reason
        # Every capture path funnels through the harvester; the guard there
        # blocks fits over tables whose cold rows moved to the archive tier.
        self.harvester.fit_guard = self._archive_refit_reason
        self.ingestor.add_listener(self._on_ingest_batch)
        # WAL framing runs *inside* the batch's commit critical section so
        # a concurrent checkpoint can never observe the append without its
        # redo record (or vice versa).  Lifecycle/maintenance reactions stay
        # in the post-commit listener above — they can be expensive.
        self.ingestor.add_commit_listener(self._log_ingest_batch)
        # The unified planner: the single query entry point that cost-routes
        # between the model-serving routes and the exact vectorized engine,
        # auditing a sample of served answers against exact execution.
        self.planner = UnifiedPlanner(
            self.database,
            self.models,
            self.approx,
            feedback=ObservedErrorFeedback(
                self.database,
                self.models,
                quality_policy=self.harvester.policy,
                sample_fraction=verify_sample_fraction,
                seed=verify_seed,
            ),
        )
        # Durable storage is strictly opt-in: a directly constructed
        # LawsDatabase never touches disk.  ``LawsDatabase.open(path)``
        # attaches a DurableStore and the model-only archive tier.
        self.durable: DurableStore | None = None
        self.archive_tier: ArchiveTier | None = None
        self.last_recovery: RecoveryReport | None = None
        # The observability hub: one tracer/metrics/journal/compliance/
        # slow-log bundle threaded through every layer.  ``observability=
        # False`` leaves every collector a single attribute check.
        self.obs = Observability(
            io_snapshot=self.database.io_snapshot,
            enabled=observability,
            slow_query_seconds=slow_query_seconds,
            io_scope=self.database.io_model.scope,
        )
        self.planner.obs = self.obs
        self.database.executor.tracer = self.obs.tracer
        # Partitioned parallel execution: tables with a committed partition
        # map run scan/filter/join/group-by per shard on a worker pool (or
        # skip pruned shards entirely); everything else falls through to the
        # standard root execution at the cost of one attribute check.
        self.parallel = ParallelQueryEngine(
            self.database.catalog,
            io_model=self.database.io_model,
            cost_model=CostModel.from_bench(),
        )
        self.parallel.tracer = self.obs.tracer
        self.parallel.metrics = self.obs.metrics
        self.parallel.journal = self.obs.journal
        self.parallel.pool.journal = self.obs.journal
        self.parallel.pool.metrics = self.obs.metrics
        self.database.executor.parallel = self.parallel
        self.approx.tracer = self.obs.tracer
        self.maintenance.journal = self.obs.journal
        self.harvester.journal = self.obs.journal
        self.models.journal = self.obs.journal
        # The self-healing resilience runtime: retry with backoff, per-
        # component health, circuit breakers (refit storms, verifier
        # failures) and — once a durable store attaches — quarantine.
        # Fault injection stays strictly opt-in: without ``fault_injector``
        # every instrumented call site pays one attribute check and behaves
        # exactly as before.
        self.resilience = ResilienceRuntime(
            faults=fault_injector, retry_policy=retry_policy
        )
        self.resilience.attach_observability(self.obs.journal, self.obs.metrics)
        # Plans are cached by (catalog, store) version; a health transition
        # changes what the degraded guard answers, so it bumps the model
        # store version to invalidate affected plans — keeping health checks
        # off the per-query hot path.
        self.resilience.health.on_transition = self._on_health_transition
        self.planner.resilience = self.resilience
        self.planner.degraded_guard = self._degraded_reason
        self.maintenance.resilience = self.resilience
        if fault_injector is not None:
            self.ingestor.faults = fault_injector
            self.maintenance.faults = fault_injector
            self.harvester.faults = fault_injector
            self.planner.feedback.faults = fault_injector
            self.parallel.pool.faults = fault_injector
        # The self-observation loop (wired last — it needs the planner, the
        # health registry and this façade): adaptive cost calibration over
        # traced operator timings, declarative SLOs whose error-budget burn
        # degrades components through the health registry, and the flight
        # recorder streaming the system's own telemetry into reserved
        # ``_telemetry_*`` tables via the real ingest path.
        self.obs.calibration = CostCalibrator(
            self.planner, journal=self.obs.journal, metrics=self.obs.metrics
        )
        self.obs.slo = SLOEngine(
            health=self.resilience.health,
            journal=self.obs.journal,
            metrics=self.obs.metrics,
            slos=(
                SLO(
                    name="latency",
                    kind="latency",
                    objective=0.99,
                    threshold_seconds=slow_query_seconds,
                ),
                SLO(name="compliance", kind="compliance", objective=0.95),
                SLO(name="degraded-serving", kind="degraded", objective=0.99),
            ),
        )
        self.obs.flight = FlightRecorder(self)
        if not observability:
            self.obs.calibration.enabled = False
            self.obs.slo.enabled = False
            self.obs.flight.enabled = False

    # -- durable storage -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | Path,
        rows_per_segment: int = 65536,
        fsync: bool = False,
        **kwargs: Any,
    ) -> "LawsDatabase":
        """Open (or create) a durable database rooted at ``path``.

        Recovery order: the last checkpoint's columnar snapshots are
        loaded, the WAL tail is replayed (torn or corrupted tails are
        truncated), and the model warehouse rehydrates every captured model
        with its staleness, observed-error evidence and the planner's cost
        calibration — so a reopened database cold-starts straight into
        model serving.  Constructor keyword arguments pass through to
        :class:`LawsDatabase`.
        """
        system = cls(**kwargs)
        store = DurableStore(path, rows_per_segment=rows_per_segment, fsync=fsync)
        # Journal and resilience wired before recover(): the recovery event
        # is recorded, unreadable artefacts quarantine instead of blocking
        # the open, and the outcome lands in ``recovery_total``.
        store.journal = system.obs.journal
        store.metrics = system.obs.metrics
        store.attach_resilience(system.resilience)
        system.durable = store
        system.archive_tier = ArchiveTier(system.database, store.archive_dir)
        system.archive_tier.faults = system.resilience.faults
        system.planner.archive_guard = system.archive_tier.blocking_reason
        system.last_recovery = store.recover(system)
        return system

    def checkpoint(self, flush_ingest: bool = True) -> CheckpointReport:
        """Snapshot tables, warehouse and calibration; reset the WAL.

        ``flush_ingest`` first flushes buffered stream rows so nothing the
        producer already handed over is invisible to the snapshot.
        """
        store = self._require_durable("checkpoint")
        if flush_ingest:
            self.ingestor.flush()
        return store.checkpoint(self)

    def close(self) -> None:
        """Detach the durable store (closing the WAL).  The in-memory
        database stays usable; further writes are no longer logged."""
        if self.durable is not None:
            self.durable.close()
            self.durable = None

    def __enter__(self) -> "LawsDatabase":
        return self

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> None:
        # A clean exit persists everything; on an exception the WAL already
        # holds the acknowledged appends, so skip the (possibly failing)
        # checkpoint and keep the last consistent manifest.  close() runs
        # unconditionally — a failing exit checkpoint must still release
        # the WAL handle.
        if self.durable is not None:
            try:
                if exc_type is None:
                    self.checkpoint()
            finally:
                self.close()

    def _require_durable(self, operation: str) -> DurableStore:
        if self.durable is None:
            raise PersistenceError(
                f"{operation}() needs a durable store; construct the database "
                f"with LawsDatabase.open(path) — persistence is opt-in"
            )
        return self.durable

    # -- the model-only archive tier -------------------------------------------------

    def archive(self, table_name: str, predicate_sql: str) -> ArchiveReport:
        """Drop the raw rows matching ``predicate_sql`` to the archive tier.

        The rows move to durable archive segments; catalog statistics keep
        describing the full logical table, and queries that may touch the
        archived rows are served purely from warehouse models (or refused
        with an explicit reason when the accuracy contract cannot be met).
        """
        store = self._require_durable("archive")
        if self.archive_tier is None:  # pragma: no cover - open() always sets it
            raise ArchiveError("no archive tier attached")
        # The warehouse models about to serve in place of the raw rows must
        # be durable BEFORE the raw rows stop being: the archive record is
        # WAL-replayable immediately, but models only persist at
        # checkpoints — replaying an archive with no models behind it would
        # leave every non-disjoint query refusing until a manual recall.
        self.checkpoint()
        report = self.archive_tier.archive(table_name, predicate_sql)
        # Logged like every other acknowledged mutation: an archive that a
        # crash silently undoes would reload the shed rows into memory.
        store.log_archive(table_name, predicate_sql)
        self.obs.journal.record(
            "archive",
            table=table_name,
            predicate=predicate_sql,
            rows=report.rows_archived,
        )
        return report

    def recall_archive(self, table_name: str) -> int:
        """Load a table's archived segments back into memory."""
        store = self._require_durable("recall_archive")
        if self.archive_tier is None:  # pragma: no cover - open() always sets it
            raise ArchiveError("no archive tier attached")
        restored = self.archive_tier.recall(table_name)
        store.log_recall(table_name)
        self.obs.journal.record("archive-recall", table=table_name, rows=restored)
        return restored

    # -- data management (delegated to the substrate) -----------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        table = self.database.create_table(name, schema)
        self._log_new_table(table)
        return table

    def register_table(self, table: Table, replace: bool = False) -> Table:
        registered = self.database.register_table(table, replace=replace)
        if replace and self.archive_tier is not None:
            # Replacing a table replaces ALL of it: archived segments of the
            # old incarnation must not haunt the new one (phantom stats,
            # permanently blocked exact queries).
            self.archive_tier.drop(table.name)
        self._log_new_table(registered, replace=replace)
        return registered

    def load_dict(self, name: str, data: Mapping[str, Sequence[Any]], schema: Schema | None = None) -> Table:
        table = self.database.load_dict(name, data, schema)
        self._log_new_table(table)
        return table

    def _log_new_table(self, table: Table, replace: bool = False) -> None:
        if self.durable is None:
            return
        from repro.persist.store import LARGE_CREATE_SNAPSHOT_ROWS

        if table.num_rows >= LARGE_CREATE_SNAPSHOT_ROWS:
            # Bulk loads are snapshotted columnar and referenced from one
            # WAL record: framing millions of rows as JSON (and re-parsing
            # them on every reopen) is the slow path the cold-start bench
            # exists to avoid — and checkpointing per load would re-snapshot
            # every earlier table, going quadratic across a load burst.
            self.durable.log_load_table(table, replace=replace)
        else:
            self.durable.log_create_table(table, replace=replace)

    def drop_table(self, name: str) -> None:
        """Drop a table, retire its captured models, and log the drop.

        Dropping through this wrapper (not ``db.database.drop_table``)
        keeps the WAL consistent — an unlogged drop would be resurrected
        from the last snapshot on crash recovery.  Archived segments of the
        table are discarded with it (the rows belong to the table), so a
        recreated table of the same name starts clean.
        """
        self.database.drop_table(name)
        for model in self.models.models_for_table(name, include_unusable=True):
            if model.status != "retired":
                self.models.retire_model(model.model_id)
        if self.archive_tier is not None:
            self.archive_tier.drop(name)
        if self.durable is not None:
            self.durable.log_drop_table(name)

    def partition_table(
        self,
        name: str,
        partitions: int = 4,
        by: str | None = None,
        scheme: str | None = None,
    ) -> dict[str, Any]:
        """Commit a partition map for ``name``; queries fan out over it.

        ``scheme`` is ``"rows"`` (contiguous row ranges, no data movement —
        the default), ``"range"`` (physically re-cluster by sorting on
        ``by``, so contiguous shards coincide with key ranges and range
        predicates prune), or ``"hash"`` (re-cluster by a deterministic
        hash of ``by`` — co-locates equal keys for joins and DISTINCT).
        The re-clustering schemes rewrite the table (its captured models go
        stale); the map itself commits as table metadata under the catalog
        commit lock, so pinned snapshots keep seeing the map that matches
        their rows.  Appends stay cheap: rows past the map's ``built_rows``
        form an implicit unpruned tail shard until the next call.
        """
        scheme = scheme or ("range" if by is not None else "rows")
        if scheme in ("range", "hash") and by is None:
            raise ValueError(f"scheme {scheme!r} requires a partitioning column (by=...)")
        catalog = self.database.catalog
        with catalog.commit_lock:
            live = catalog.live_table(name)
            if scheme == "rows":
                table = live
            else:
                if scheme == "range":
                    order = range_partition_order(live, by)
                elif scheme == "hash":
                    order, _ = hash_partition_order(live, by, partitions)
                else:
                    raise ValueError(f"unknown partitioning scheme {scheme!r}")
                table = live.take(order)
                self.register_table(table, replace=True)
                self.lifecycle.on_data_changed(name)
            payload = build_partition_map(
                table.pinned(),
                partitions,
                scheme={"kind": scheme, "partitions": partitions, "column": by},
            )
            catalog.set_table_meta(name, PARTITION_META_KEY, payload)
        self.obs.journal.record(
            "partition-map",
            table=name,
            scheme=scheme,
            partitions=len(payload["partitions"]),
            rows=payload["built_rows"],
        )
        return payload

    def partition_map(self, name: str) -> dict[str, Any] | None:
        """The committed partition map of ``name`` (pin-aware), if any."""
        return self.database.catalog.table_meta(name, PARTITION_META_KEY)

    def table(self, name: str) -> Table:
        return self.database.table(name)

    def table_names(self) -> list[str]:
        return self.database.table_names()

    def insert_rows(self, name: str, rows: Sequence[Sequence[Any]]) -> None:
        """Append rows; captured models of the table become stale (§4.1)."""
        # Append and redo record commit as one critical section (the lock
        # is re-entrant — insert_rows takes it again internally); the log
        # still runs only after the append succeeded, so a row the
        # substrate rejected never reaches the redo log.
        with self.database.catalog.commit_lock:
            appended_from = self.database.catalog.live_table(name).num_rows
            self.database.insert_rows(name, rows)
            if self.durable is not None:
                self.durable.log_append(name, rows)
        self.lifecycle.on_data_changed(name, appended_from=appended_from)

    # -- streaming ingestion & online maintenance -----------------------------------

    def ingest(
        self,
        table_name: str,
        rows: Sequence[Sequence[Any]] | Mapping[str, Sequence[Any]],
        flush: bool = False,
    ) -> list[IngestBatch]:
        """Submit rows to the streaming append path.

        Rows are buffered and appended in batches of ``ingest_batch_size``;
        every flushed batch marks the table's models stale and feeds the
        drift monitors registered with :meth:`watch`.  ``flush=True`` forces
        any remainder out immediately.
        """
        batches = self.ingestor.submit(table_name, rows)
        if flush:
            batches.extend(self.ingestor.flush(table_name))
        return batches

    def flush_ingest(self, table_name: str | None = None) -> list[IngestBatch]:
        """Flush buffered stream rows (one table, or all)."""
        return self.ingestor.flush(table_name)

    def ingest_stats(self, table_name: str) -> IngestStats:
        """Per-table ingest throughput accounting."""
        return self.ingestor.stats(table_name)

    def watch(
        self, table_name: str, output_column: str, order_column: str | None = None
    ) -> WatchTarget:
        """Monitor the captured model of a target column under ingestion."""
        return self.maintenance.watch(table_name, output_column, order_column=order_column)

    def maintain(self) -> MaintenanceReport:
        """One online-maintenance tick: re-validate quiet models, segment and
        refit drifted ones (change-point driven), superseding stale models in
        the store instead of leaving them benched."""
        return self.maintenance.maintain()

    def _log_ingest_batch(self, batch: IngestBatch) -> None:
        """Commit-scoped listener: frame the batch into the WAL.

        Runs under the catalog commit lock, atomically with the append that
        produced the batch — what makes the rows survive a crash between
        checkpoints without ever being double-applied across one.
        """
        if self.durable is not None:
            self.durable.log_append(batch.table_name, batch.rows)

    def _on_ingest_batch(self, batch: IngestBatch) -> None:
        self.obs.metrics.inc("ingest_rows_total", len(batch.rows), table=batch.table_name)
        # An append's start row exempts partition models wholly below it —
        # only the shards the batch landed in go stale.
        self.lifecycle.on_data_changed(batch.table_name, appended_from=batch.start_row)
        self.maintenance.on_batch(batch)

    # -- SQL: the unified entry point ------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin a consistent view of the catalog and the model warehouse.

        The returned :class:`Snapshot` can be handed to :meth:`query` so a
        *sequence* of queries observes one committed state even while
        concurrent ``ingest()`` / ``maintain()`` / ``archive()`` commits
        land between them.  Individual queries already pin their own
        snapshot implicitly.
        """
        return self.planner.snapshot()

    def query(
        self,
        sql: str,
        contract: AccuracyContract | None = None,
        snapshot: Snapshot | None = None,
    ) -> PlannedAnswer:
        """Execute SQL through the unified accuracy-aware planner.

        This is the single entry point: the planner cost-routes every
        statement between the captured-model serving routes and the exact
        vectorized engine, honouring the :class:`AccuracyContract` (error
        budget, deadline, mode).  A sampled fraction of model-served
        answers is verified against exact execution; the observed errors
        feed model quality and demote models the planner caught lying, so
        the maintenance loop refits them.

        Every query executes against a pinned snapshot — its own by
        default, or an explicitly held one passed as ``snapshot`` (see
        :meth:`snapshot`) for repeatable reads across statements.
        """
        if self.durable is not None and not isinstance(
            self.database.parse_sql(sql), SelectStatement
        ):
            # DDL/DML through the SQL front-end mutates the catalog like any
            # programmatic write: it must survive a crash the same way, and
            # the mutation + redo record commit atomically with respect to
            # a concurrent checkpoint (same critical section).
            with self.database.catalog.commit_lock:
                answer = self.planner.execute(sql, contract, snapshot=snapshot)
                if answer.plan.statement_type in ("create", "insert"):
                    self.durable.log_sql(sql)
        else:
            answer = self.planner.execute(sql, contract, snapshot=snapshot)
        if answer.plan.statement_type in ("create", "insert"):
            statement = self.database.parse_sql(sql)
            if isinstance(statement, InsertStatement):
                # Same lifecycle contract as insert_rows(): appended data
                # marks the table's captured models stale (§4.1) — and keeps
                # the live process consistent with what a WAL replay of this
                # very statement does on recovery.
                self.lifecycle.on_data_changed(statement.name)
        return answer

    def explain(self, sql: str, contract: AccuracyContract | None = None) -> str:
        """The unified plan for ``sql``: candidate routes, predicted cost
        and predicted error per node, and the contract-driven decision —
        without executing anything or mutating the model store."""
        return self.planner.explain(sql, contract)

    def plan(
        self, sql: str, contract: AccuracyContract | None = None
    ) -> UnifiedPlan:
        """The :class:`UnifiedPlan` for ``sql`` (side-effect free)."""
        return self.planner.plan(sql, contract, for_execution=False)

    # -- observability -----------------------------------------------------------------

    def explain_analyze(
        self, sql: str, contract: AccuracyContract | None = None
    ) -> str:
        """Execute ``sql`` under tracing and render the span tree.

        Unlike :meth:`explain` this *runs* the query: every stage's wall
        time and simulated page IO, the route decision (with the rejected
        candidates and their predicted cost/error), per-operator execution
        spans, and — for model routes — the predicted vs. observed relative
        error (verification is forced, not sampled).  A leading ``EXPLAIN
        ANALYZE`` prefix in the SQL text is accepted and stripped.
        """
        from dataclasses import replace

        stripped = sql.strip()
        if stripped[:15].upper() == "EXPLAIN ANALYZE":
            stripped = stripped[15:].strip()
        contract = replace(contract or AccuracyContract(), verify_fraction=1.0)
        obs = self.obs
        was_enabled = obs.enabled
        if not was_enabled:
            obs.enable()
        try:
            answer = self.query(stripped, contract)
            trace = obs.tracer.last_trace()
        finally:
            if not was_enabled:
                obs.disable()
        lines = [
            f"EXPLAIN ANALYZE: {stripped}",
            f"Route: {answer.route_taken} — {answer.plan.reason}",
        ]
        if trace is not None:
            lines.append(trace.to_text())
        return "\n".join(lines)

    def last_trace(self) -> Span | None:
        """The span tree of the most recently traced query."""
        return self.obs.tracer.last_trace()

    def metrics(self) -> dict[str, Any]:
        """A stable snapshot of every counter, gauge and histogram.

        Derived gauges — plan-cache hit/miss stats of both caching layers,
        storage savings, model population by status, cumulative simulated
        IO — are refreshed on every call, so the snapshot is always
        current without per-query bookkeeping.
        """
        self._refresh_gauges()
        return self.obs.metrics.snapshot()

    def metrics_json(self, indent: int | None = 2) -> str:
        self._refresh_gauges()
        return self.obs.metrics.to_json(indent=indent)

    def metrics_prometheus(self) -> str:
        """The metrics snapshot in the Prometheus text exposition format."""
        self._refresh_gauges()
        return self.obs.metrics.to_prometheus_text()

    def _refresh_gauges(self) -> None:
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        for layer, info in (
            ("sql", self.database.plan_cache_info()),
            ("planner", self.planner.plan_cache_info()),
        ):
            for key, value in info.items():
                metrics.set_gauge(f"plan_cache_{key}", value, layer=layer)
        report = self.storage_report()
        for name, entry in report["tables"].items():
            for key, value in entry.items():
                metrics.set_gauge(f"storage_{key}", value, table=name)
        metrics.set_gauge("storage_total_raw_bytes", report["total_raw_bytes"])
        metrics.set_gauge("storage_total_model_bytes", report["total_model_bytes"])
        metrics.set_gauge(
            "storage_total_archived_bytes", report["total_archived_bytes"]
        )
        status_counts: dict[str, int] = {}
        for model in self.models.all_models():
            status_counts[model.status] = status_counts.get(model.status, 0) + 1
        for status, count in status_counts.items():
            metrics.set_gauge("models", count, status=status)
        for key, value in self.database.io_snapshot().items():
            metrics.set_gauge(f"io_{key}", value)
        metrics.set_gauge("slow_queries", self.obs.slow_log.total)

    def events(
        self, kind: str | None = None, limit: int | None = None, **field_filters: Any
    ) -> list[Event]:
        """Lifecycle events from the journal (drift, changepoints, model
        captures/demotions/refits, checkpoint/recovery/archive operations)."""
        return self.obs.journal.events(kind=kind, limit=limit, **field_filters)

    def slow_queries(self, limit: int | None = None) -> list[SlowQuery]:
        """Queries that exceeded the slow-query wall-time threshold."""
        return self.obs.slow_log.entries(limit=limit)

    def compliance_report(self) -> dict[str, Any]:
        """Per-route and per-model predicted-vs-observed error accounting."""
        return self.obs.compliance.report()

    def slo_report(self) -> dict[str, Any]:
        """Current SLO burn-rate evaluation and latency percentiles."""
        if self.obs.slo is None:
            return {"observed_queries": 0, "objectives": {}}
        return self.obs.slo.report()

    def calibration_report(self) -> dict[str, Any]:
        """Cost-model provenance and the adaptive calibrator's estimates."""
        if self.obs.calibration is None:
            return {"source": self.planner.cost_model.source, "recalibrations": 0}
        return self.obs.calibration.report()

    def flush_telemetry(self) -> int:
        """Force the flight recorder's pending records through ingest."""
        if self.obs.flight is None:
            return 0
        return self.obs.flight.flush()

    def export_traces_otlp(self) -> dict[str, Any]:
        """Completed traces as an OTLP/JSON ``ExportTraceServiceRequest``."""
        return spans_to_otlp(self.obs.tracer.traces())

    def ops_report(self) -> dict[str, Any]:
        """One JSON-serializable operational status document.

        Everything an operator (or the ``tools/repro_top.py`` dashboard, or
        the CI artifact upload) needs in one call: query counters by route,
        SLO burn rates with latency percentiles, cost-calibration
        provenance, the flight recorder's self-telemetry accounting,
        journal event totals (monotonic — these reconcile with the metrics
        counters), component health, plan-cache and storage figures.
        """
        self._refresh_gauges()
        metrics = self.obs.metrics

        def by_label(counter: str, label: str) -> dict[str, float]:
            return {
                dict(key).get(label, ""): value
                for key, value in metrics.counter_series(counter).items()
            }

        return {
            "queries": {
                "total": metrics.counter_total("queries_total"),
                "by_route": by_label("queries_total", "route"),
                "errors": metrics.counter_total("query_errors_total"),
                "fallbacks": metrics.counter_total("fallbacks_total"),
                "degraded": metrics.counter_total("degraded_answers_total"),
                "verified": metrics.counter_total("feedback_verifications_total"),
                "contract_violations": metrics.counter_total(
                    "contract_violations_total"
                ),
                "slow": self.obs.slow_log.total,
            },
            "slo": self.slo_report(),
            "calibration": self.calibration_report(),
            "flight": self.obs.flight.report() if self.obs.flight is not None else {},
            "events": self.obs.journal.totals(),
            "health": self.health_report(),
            "plan_cache": {
                "sql": self.database.plan_cache_info(),
                "planner": self.planner.plan_cache_info(),
            },
            "storage": self.storage_report(),
            "compliance": self.compliance_report(),
        }

    # -- resilience --------------------------------------------------------------------

    def health_report(self) -> dict[str, Any]:
        """Component health, circuit breakers and quarantined artefacts."""
        return self.resilience.report()

    def quarantine_report(self) -> dict[str, Any]:
        """What recovery moved aside instead of failing the open."""
        if self.durable is not None:
            return self.durable.quarantine.report()
        quarantine = self.resilience.quarantine
        return quarantine.report() if quarantine is not None else {"records": []}

    def acknowledge_degraded(self, component: str) -> None:
        """Operator acknowledgement: mark a failed/degraded component healthy.

        Quarantined artefacts stay journaled on disk for forensics; this
        only lifts the planner's degraded guard (e.g. after the lost rows
        were re-ingested or the loss was accepted).
        """
        self.resilience.health.mark_healthy(
            component, "operator acknowledged the degradation"
        )

    def _on_health_transition(self, name: str, previous: str, state: str) -> None:
        # Cached plans were costed against the old health state; the bump
        # invalidates them through the (sql, contract, versions) cache key.
        self.models._bump()

    def _degraded_reason(self, statement: SelectStatement) -> str | None:
        """Why ``statement`` cannot honestly run over the raw rows right now.

        A table whose snapshot segments were quarantined at recovery is
        FAILED: its surviving in-memory rows are incomplete, so exact
        execution would silently under-count.  Formatted as
        ``component — reason`` (the planner splits it back for the typed
        :class:`~repro.errors.DegradedServiceError`).
        """
        health = self.resilience.health
        names = []
        if statement.table is not None:
            names.append(statement.table.name)
        names.extend(join.table.name for join in statement.joins)
        for name in names:
            component = f"table:{name}"
            if health.is_failed(component):
                reason = health.reason(component) or "snapshot segments quarantined"
                return f"{component} — {reason}"
        return None

    # -- SQL: deprecated pre-planner entry points -------------------------------------

    def sql(self, query: str) -> QueryResult:
        """Execute SQL exactly against the stored data.

        .. deprecated:: use :meth:`query` with
           ``AccuracyContract(mode="exact")`` — the unified planner is the
           single entry point and keeps EXPLAIN/feedback consistent.
        """
        warnings.warn(
            'LawsDatabase.sql() is deprecated; use query(sql, AccuracyContract(mode="exact"))',
            DeprecationWarning,
            stacklevel=2,
        )
        answer = self.query(query, AccuracyContract(mode="exact"))
        assert answer.query_result is not None
        return answer.query_result

    def approximate_sql(self, query: str, allow_fallback: bool = True) -> ApproximateAnswer:
        """Answer SQL approximately from captured models (§4.2).

        .. deprecated:: use :meth:`query` with
           ``AccuracyContract(mode="approx")`` (set
           ``allow_exact_fallback=False`` for the strict variant).
        """
        warnings.warn(
            'LawsDatabase.approximate_sql() is deprecated; use '
            'query(sql, AccuracyContract(mode="approx"))',
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.db.sql.ast import SelectStatement

        if not isinstance(self.database.parse_sql(query), SelectStatement):
            # Non-SELECT statements: the engine never served these from
            # models; preserve its behaviour (raise before any side effect
            # when fallback is refused, else execute exactly with reason).
            if not allow_fallback:
                raise ApproximationError(
                    "only SELECT statements can be answered approximately"
                )
            result = self.query(query).query_result
            assert result is not None
            return ApproximateAnswer(
                sql=query,
                table=result.table,
                route="exact-fallback",
                is_exact=True,
                reason="only SELECT statements can be answered approximately",
                elapsed_seconds=result.elapsed_seconds,
                io=dict(result.io),
            )
        answer = self.query(
            query,
            AccuracyContract(
                mode="approx",
                allow_exact_fallback=allow_fallback,
                verify_fraction=0.0,
            ),
        )
        assert answer.approx is not None
        return answer.approx

    def compare_sql(self, query: str) -> dict[str, Any]:
        """Run a query both ways and report the approximation error.

        .. deprecated:: use :meth:`query` twice with pinned contracts (one
           ``mode="approx"``, one ``mode="exact"``) — this shim does
           exactly that.
        """
        warnings.warn(
            "LawsDatabase.compare_sql() is deprecated; use query() with pinned "
            "approx/exact contracts",
            DeprecationWarning,
            stacklevel=2,
        )
        approx_answer = self.query(
            query,
            AccuracyContract(mode="approx", verify_fraction=0.0),
        ).approx
        assert approx_answer is not None
        exact_result = self.query(query, AccuracyContract(mode="exact")).query_result
        assert exact_result is not None
        exact_answer = ApproximateAnswer(
            sql=query,
            table=exact_result.table,
            route="exact-fallback",
            is_exact=True,
            reason="exact execution requested",
            elapsed_seconds=exact_result.elapsed_seconds,
            io=dict(exact_result.io),
        )
        errors = _relative_errors(approx_answer.table, exact_answer.table)
        return {
            "approximate": approx_answer,
            "exact": exact_answer,
            "route": approx_answer.route,
            "group_routes": dict(approx_answer.group_routes),
            "relative_errors": errors,
            "max_relative_error": max(errors.values()) if errors else None,
            "approx_pages_read": approx_answer.io.get("pages_read", 0.0),
            "exact_pages_read": exact_answer.io.get("pages_read", 0.0),
        }

    # -- model harvesting -----------------------------------------------------------------

    def strawman(self, table_name: str, predicate_sql: str | None = None) -> StrawmanFrame:
        """The user-facing proxy object whose fits are intercepted (Figure 2)."""
        # Validate eagerly so typos fail fast.
        self.database.table(table_name)
        return StrawmanFrame(self, table_name, predicate_sql)

    def fit(
        self,
        table_name: str,
        formula: str,
        group_by: str | list[str] | None = None,
        **kwargs: Any,
    ) -> HarvestReport:
        """Fit a model formula in-database and capture it."""
        return self.harvester.fit_and_capture(table_name, formula, group_by=group_by, **kwargs)

    def fit_partitioned(
        self,
        table_name: str,
        formula: str,
        group_by: str | list[str] | None = None,
        **kwargs: Any,
    ) -> list[HarvestReport]:
        """Fit one model per partition of ``table_name`` (see
        :meth:`partition_table`); drift, demotion and refit then run per
        shard instead of staleness cascading across the whole table."""
        return self.harvester.fit_partitioned(table_name, formula, group_by=group_by, **kwargs)

    def ensure_grouped_model(
        self,
        table_name: str,
        output_column: str,
        group_columns: str | list[str],
        formula: str | None = None,
    ) -> CapturedModel | None:
        """Harvest (or return) a grouped model for GROUP BY answering."""
        if isinstance(group_columns, str):
            group_columns = [group_columns]
        return self.harvester.ensure_grouped(
            table_name, output_column, tuple(group_columns), formula=formula
        )

    def captured_models(self, table_name: str | None = None) -> list[CapturedModel]:
        if table_name is None:
            return self.models.all_models()
        return self.models.models_for_table(table_name, include_unusable=True)

    def best_model(self, table_name: str, output_column: str) -> CapturedModel:
        # Stale models stay servable (deprioritized behind active ones) so
        # the window between an ingest batch and the next maintain() tick
        # does not break model-backed features.
        return self.models.best_model(table_name, output_column, include_stale=True)

    # -- storage optimisation ------------------------------------------------------------------

    def compress_table(
        self,
        table_name: str,
        model: CapturedModel | None = None,
        quantisation_step: float = 0.0,
    ) -> CompressedTable:
        """Semantic compression of a table using a captured model (§4.1)."""
        table = self.database.table(table_name)
        if model is None:
            model = self._any_model_for(table_name)
        compressor = ModelCompressor(quantisation_step=quantisation_step)
        return compressor.compress(table, model)

    def compare_scan(self, table_name: str, output_column: str | None = None) -> ScanComparison:
        """Raw scan vs. zero-IO model scan for a modelled table (§4.1)."""
        model = (
            self.models.best_model(table_name, output_column, include_stale=True)
            if output_column is not None
            else self._any_model_for(table_name)
        )
        return self.zero_io.compare(model)

    def anomalies(
        self,
        table_name: str,
        output_column: str | None = None,
        metric: str = "relative_rse",
        mad_multiplier: float = 4.0,
    ) -> AnomalyReport:
        """Groups of a table that the captured model fails to explain (§4.2)."""
        model = (
            self.models.best_model(table_name, output_column, include_stale=True)
            if output_column is not None
            else self._any_model_for(table_name)
        )
        return detect_anomalies(model, metric=metric, mad_multiplier=mad_multiplier)

    # -- accounting -----------------------------------------------------------------------------

    def storage_report(self) -> dict[str, Any]:
        """Raw table bytes vs. captured-model bytes, per table and total.

        ``archived_bytes`` counts rows moved to the model-only tier: on
        disk, no longer in memory, served from warehouse models."""
        per_table: dict[str, dict[str, int]] = {}
        for name in self.database.table_names():
            raw = self.database.table(name).byte_size()
            model_bytes = sum(
                model.stored_byte_size() for model in self.models.models_for_table(name)
            )
            archived = (
                self.archive_tier.archived_bytes(name) if self.archive_tier is not None else 0
            )
            per_table[name] = {
                "raw_bytes": raw,
                "model_bytes": model_bytes,
                "archived_bytes": archived,
            }
        return {
            "tables": per_table,
            "total_raw_bytes": sum(entry["raw_bytes"] for entry in per_table.values()),
            "total_model_bytes": self.models.total_stored_bytes(),
            "total_archived_bytes": sum(
                entry["archived_bytes"] for entry in per_table.values()
            ),
        }

    def describe(self) -> str:
        return f"{self.database.describe()}\n\nCaptured models:\n{self.models.describe()}"

    # -- internals ---------------------------------------------------------------------------------

    def _archive_refit_reason(self, table_name: str) -> str | None:
        """Why refitting models of ``table_name`` is unsound right now.

        With raw segments in the model-only tier, a fresh fit would see only
        the (predicate-biased) live remainder yet be served as describing
        the full logical table — and the archive guard disables feedback
        verification, so nothing would ever catch the bias.
        """
        if self.archive_tier is not None and self.archive_tier.has_archived(table_name):
            rows = self.archive_tier.archived_rows(table_name)
            return (
                f"{rows} row(s) of {table_name!r} are archived; a refit would "
                f"fit only the live remainder — recall the archive first"
            )
        return None

    def _grouped_model_provider(self, table_name: str, output_column: str, group_columns, formula=None):
        if is_telemetry_table(table_name):
            # No auto-harvest over the system's own telemetry: the flight
            # recorder owns its baselines, and a query-triggered fit here
            # would mint models (and journal events) as a side effect of
            # merely reading telemetry.
            return None
        if self._archive_refit_reason(table_name) is not None:
            return None
        return self.harvester.ensure_grouped(
            table_name, output_column, group_columns, formula=formula
        )

    def _any_model_for(self, table_name: str) -> CapturedModel:
        # include_stale: during continuous ingestion a stale (deprioritized)
        # model still beats failing.
        return self.models.best_model_for_table(table_name, include_stale=True)
