"""The end-to-end system façade: a database that captures the laws of its data.

:class:`LawsDatabase` wires together the relational substrate, the model
store, the harvester, the approximate query engine and the model-based
storage optimiser into the single object the paper envisions: "a database
system which is able to gain unprecedented understanding by autonomous and
proactive harvesting of statistical models as they are fitted to the stored
data."
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping, Sequence

from repro.core.approx.engine import ApproximateAnswer, ApproximateQueryEngine, _relative_errors
from repro.core.approx.anomalies import AnomalyReport, detect_anomalies
from repro.core.captured_model import CapturedModel
from repro.core.harvester import HarvestReport, ModelHarvester
from repro.core.model_store import ModelStore
from repro.core.planner import (
    AccuracyContract,
    ObservedErrorFeedback,
    PlannedAnswer,
    UnifiedPlan,
    UnifiedPlanner,
)
from repro.core.quality import QualityPolicy
from repro.core.storage.model_switching import ModelLifecycleManager
from repro.core.storage.semantic_compression import CompressedTable, ModelCompressor
from repro.core.storage.zero_io import ScanComparison, ZeroIOScanner
from repro.core.strawman import StrawmanFrame
from repro.db.database import Database
from repro.db.io_model import IOParameters
from repro.db.schema import Schema
from repro.db.sql.executor import QueryResult
from repro.db.table import Table
from repro.errors import ApproximationError
from repro.streaming.ingest import IngestBatch, IngestStats, StreamIngestor
from repro.streaming.maintenance import MaintenanceReport, ModelMaintenancePolicy, WatchTarget

__all__ = ["LawsDatabase"]


class LawsDatabase:
    """A relational database that harvests and exploits user models."""

    def __init__(
        self,
        quality_policy: QualityPolicy | None = None,
        io_parameters: IOParameters | None = None,
        use_legal_filter: bool = False,
        ingest_batch_size: int = 512,
        verify_sample_fraction: float = 0.05,
        verify_seed: int | None = None,
    ) -> None:
        self.database = Database(io_parameters)
        self.models = ModelStore()
        self.harvester = ModelHarvester(self.database, self.models, quality_policy)
        self.approx = ApproximateQueryEngine(
            self.database, self.models, use_legal_filter=use_legal_filter
        )
        # GROUP BY queries over a column whose captures are all ungrouped
        # trigger an on-demand grouped harvest (same formula, per group).
        self.approx.grouped_model_provider = self.harvester.ensure_grouped
        self.lifecycle = ModelLifecycleManager(self.database, self.models, self.harvester)
        self.zero_io = ZeroIOScanner(self.database)
        self.ingestor = StreamIngestor(self.database, batch_size=ingest_batch_size)
        self.maintenance = ModelMaintenancePolicy(
            self.database, self.models, self.harvester, self.lifecycle
        )
        self.ingestor.add_listener(self._on_ingest_batch)
        # The unified planner: the single query entry point that cost-routes
        # between the model-serving routes and the exact vectorized engine,
        # auditing a sample of served answers against exact execution.
        self.planner = UnifiedPlanner(
            self.database,
            self.models,
            self.approx,
            feedback=ObservedErrorFeedback(
                self.database,
                self.models,
                quality_policy=self.harvester.policy,
                sample_fraction=verify_sample_fraction,
                seed=verify_seed,
            ),
        )

    # -- data management (delegated to the substrate) -----------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        return self.database.create_table(name, schema)

    def register_table(self, table: Table, replace: bool = False) -> Table:
        return self.database.register_table(table, replace=replace)

    def load_dict(self, name: str, data: Mapping[str, Sequence[Any]], schema: Schema | None = None) -> Table:
        return self.database.load_dict(name, data, schema)

    def table(self, name: str) -> Table:
        return self.database.table(name)

    def table_names(self) -> list[str]:
        return self.database.table_names()

    def insert_rows(self, name: str, rows: Sequence[Sequence[Any]]) -> None:
        """Append rows; captured models of the table become stale (§4.1)."""
        self.database.insert_rows(name, rows)
        self.lifecycle.on_data_changed(name)

    # -- streaming ingestion & online maintenance -----------------------------------

    def ingest(
        self,
        table_name: str,
        rows: Sequence[Sequence[Any]] | Mapping[str, Sequence[Any]],
        flush: bool = False,
    ) -> list[IngestBatch]:
        """Submit rows to the streaming append path.

        Rows are buffered and appended in batches of ``ingest_batch_size``;
        every flushed batch marks the table's models stale and feeds the
        drift monitors registered with :meth:`watch`.  ``flush=True`` forces
        any remainder out immediately.
        """
        batches = self.ingestor.submit(table_name, rows)
        if flush:
            batches.extend(self.ingestor.flush(table_name))
        return batches

    def flush_ingest(self, table_name: str | None = None) -> list[IngestBatch]:
        """Flush buffered stream rows (one table, or all)."""
        return self.ingestor.flush(table_name)

    def ingest_stats(self, table_name: str) -> IngestStats:
        """Per-table ingest throughput accounting."""
        return self.ingestor.stats(table_name)

    def watch(
        self, table_name: str, output_column: str, order_column: str | None = None
    ) -> WatchTarget:
        """Monitor the captured model of a target column under ingestion."""
        return self.maintenance.watch(table_name, output_column, order_column=order_column)

    def maintain(self) -> MaintenanceReport:
        """One online-maintenance tick: re-validate quiet models, segment and
        refit drifted ones (change-point driven), superseding stale models in
        the store instead of leaving them benched."""
        return self.maintenance.maintain()

    def _on_ingest_batch(self, batch: IngestBatch) -> None:
        self.lifecycle.on_data_changed(batch.table_name)
        self.maintenance.on_batch(batch)

    # -- SQL: the unified entry point ------------------------------------------------

    def query(
        self, sql: str, contract: AccuracyContract | None = None
    ) -> PlannedAnswer:
        """Execute SQL through the unified accuracy-aware planner.

        This is the single entry point: the planner cost-routes every
        statement between the captured-model serving routes and the exact
        vectorized engine, honouring the :class:`AccuracyContract` (error
        budget, deadline, mode).  A sampled fraction of model-served
        answers is verified against exact execution; the observed errors
        feed model quality and demote models the planner caught lying, so
        the maintenance loop refits them.
        """
        return self.planner.execute(sql, contract)

    def explain(self, sql: str, contract: AccuracyContract | None = None) -> str:
        """The unified plan for ``sql``: candidate routes, predicted cost
        and predicted error per node, and the contract-driven decision —
        without executing anything or mutating the model store."""
        return self.planner.explain(sql, contract)

    def plan(
        self, sql: str, contract: AccuracyContract | None = None
    ) -> UnifiedPlan:
        """The :class:`UnifiedPlan` for ``sql`` (side-effect free)."""
        return self.planner.plan(sql, contract, for_execution=False)

    # -- SQL: deprecated pre-planner entry points -------------------------------------

    def sql(self, query: str) -> QueryResult:
        """Execute SQL exactly against the stored data.

        .. deprecated:: use :meth:`query` with
           ``AccuracyContract(mode="exact")`` — the unified planner is the
           single entry point and keeps EXPLAIN/feedback consistent.
        """
        warnings.warn(
            'LawsDatabase.sql() is deprecated; use query(sql, AccuracyContract(mode="exact"))',
            DeprecationWarning,
            stacklevel=2,
        )
        answer = self.query(query, AccuracyContract(mode="exact"))
        assert answer.query_result is not None
        return answer.query_result

    def approximate_sql(self, query: str, allow_fallback: bool = True) -> ApproximateAnswer:
        """Answer SQL approximately from captured models (§4.2).

        .. deprecated:: use :meth:`query` with
           ``AccuracyContract(mode="approx")`` (set
           ``allow_exact_fallback=False`` for the strict variant).
        """
        warnings.warn(
            'LawsDatabase.approximate_sql() is deprecated; use '
            'query(sql, AccuracyContract(mode="approx"))',
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.db.sql.ast import SelectStatement

        if not isinstance(self.database.parse_sql(query), SelectStatement):
            # Non-SELECT statements: the engine never served these from
            # models; preserve its behaviour (raise before any side effect
            # when fallback is refused, else execute exactly with reason).
            if not allow_fallback:
                raise ApproximationError(
                    "only SELECT statements can be answered approximately"
                )
            result = self.query(query).query_result
            assert result is not None
            return ApproximateAnswer(
                sql=query,
                table=result.table,
                route="exact-fallback",
                is_exact=True,
                reason="only SELECT statements can be answered approximately",
                elapsed_seconds=result.elapsed_seconds,
                io=dict(result.io),
            )
        answer = self.query(
            query,
            AccuracyContract(
                mode="approx",
                allow_exact_fallback=allow_fallback,
                verify_fraction=0.0,
            ),
        )
        assert answer.approx is not None
        return answer.approx

    def compare_sql(self, query: str) -> dict[str, Any]:
        """Run a query both ways and report the approximation error.

        .. deprecated:: use :meth:`query` twice with pinned contracts (one
           ``mode="approx"``, one ``mode="exact"``) — this shim does
           exactly that.
        """
        warnings.warn(
            "LawsDatabase.compare_sql() is deprecated; use query() with pinned "
            "approx/exact contracts",
            DeprecationWarning,
            stacklevel=2,
        )
        approx_answer = self.query(
            query,
            AccuracyContract(mode="approx", verify_fraction=0.0),
        ).approx
        assert approx_answer is not None
        exact_result = self.query(query, AccuracyContract(mode="exact")).query_result
        assert exact_result is not None
        exact_answer = ApproximateAnswer(
            sql=query,
            table=exact_result.table,
            route="exact-fallback",
            is_exact=True,
            reason="exact execution requested",
            elapsed_seconds=exact_result.elapsed_seconds,
            io=dict(exact_result.io),
        )
        errors = _relative_errors(approx_answer.table, exact_answer.table)
        return {
            "approximate": approx_answer,
            "exact": exact_answer,
            "route": approx_answer.route,
            "group_routes": dict(approx_answer.group_routes),
            "relative_errors": errors,
            "max_relative_error": max(errors.values()) if errors else None,
            "approx_pages_read": approx_answer.io.get("pages_read", 0.0),
            "exact_pages_read": exact_answer.io.get("pages_read", 0.0),
        }

    # -- model harvesting -----------------------------------------------------------------

    def strawman(self, table_name: str, predicate_sql: str | None = None) -> StrawmanFrame:
        """The user-facing proxy object whose fits are intercepted (Figure 2)."""
        # Validate eagerly so typos fail fast.
        self.database.table(table_name)
        return StrawmanFrame(self, table_name, predicate_sql)

    def fit(
        self,
        table_name: str,
        formula: str,
        group_by: str | list[str] | None = None,
        **kwargs: Any,
    ) -> HarvestReport:
        """Fit a model formula in-database and capture it."""
        return self.harvester.fit_and_capture(table_name, formula, group_by=group_by, **kwargs)

    def ensure_grouped_model(
        self,
        table_name: str,
        output_column: str,
        group_columns: str | list[str],
        formula: str | None = None,
    ) -> CapturedModel | None:
        """Harvest (or return) a grouped model for GROUP BY answering."""
        if isinstance(group_columns, str):
            group_columns = [group_columns]
        return self.harvester.ensure_grouped(
            table_name, output_column, tuple(group_columns), formula=formula
        )

    def captured_models(self, table_name: str | None = None) -> list[CapturedModel]:
        if table_name is None:
            return self.models.all_models()
        return self.models.models_for_table(table_name, include_unusable=True)

    def best_model(self, table_name: str, output_column: str) -> CapturedModel:
        # Stale models stay servable (deprioritized behind active ones) so
        # the window between an ingest batch and the next maintain() tick
        # does not break model-backed features.
        return self.models.best_model(table_name, output_column, include_stale=True)

    # -- storage optimisation ------------------------------------------------------------------

    def compress_table(
        self,
        table_name: str,
        model: CapturedModel | None = None,
        quantisation_step: float = 0.0,
    ) -> CompressedTable:
        """Semantic compression of a table using a captured model (§4.1)."""
        table = self.database.table(table_name)
        if model is None:
            model = self._any_model_for(table_name)
        compressor = ModelCompressor(quantisation_step=quantisation_step)
        return compressor.compress(table, model)

    def compare_scan(self, table_name: str, output_column: str | None = None) -> ScanComparison:
        """Raw scan vs. zero-IO model scan for a modelled table (§4.1)."""
        model = (
            self.models.best_model(table_name, output_column, include_stale=True)
            if output_column is not None
            else self._any_model_for(table_name)
        )
        return self.zero_io.compare(model)

    def anomalies(
        self,
        table_name: str,
        output_column: str | None = None,
        metric: str = "relative_rse",
        mad_multiplier: float = 4.0,
    ) -> AnomalyReport:
        """Groups of a table that the captured model fails to explain (§4.2)."""
        model = (
            self.models.best_model(table_name, output_column, include_stale=True)
            if output_column is not None
            else self._any_model_for(table_name)
        )
        return detect_anomalies(model, metric=metric, mad_multiplier=mad_multiplier)

    # -- accounting -----------------------------------------------------------------------------

    def storage_report(self) -> dict[str, Any]:
        """Raw table bytes vs. captured-model bytes, per table and total."""
        per_table: dict[str, dict[str, int]] = {}
        for name in self.database.table_names():
            raw = self.database.table(name).byte_size()
            model_bytes = sum(
                model.stored_byte_size() for model in self.models.models_for_table(name)
            )
            per_table[name] = {"raw_bytes": raw, "model_bytes": model_bytes}
        return {
            "tables": per_table,
            "total_raw_bytes": sum(entry["raw_bytes"] for entry in per_table.values()),
            "total_model_bytes": self.models.total_stored_bytes(),
        }

    def describe(self) -> str:
        return f"{self.database.describe()}\n\nCaptured models:\n{self.models.describe()}"

    # -- internals ---------------------------------------------------------------------------------

    def _any_model_for(self, table_name: str) -> CapturedModel:
        # include_stale: during continuous ingestion a stale (deprioritized)
        # model still beats failing.
        return self.models.best_model_for_table(table_name, include_stale=True)
