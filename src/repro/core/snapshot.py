"""System-wide snapshots: one pinned view across the catalog and the models.

A :class:`Snapshot` bundles a :class:`~repro.db.snapshot.CatalogSnapshot`
(the committed ``(version, tables, stats)`` triple) with a
:class:`~repro.core.model_store.ModelStorePin` (the model population and
its version) so one query — or one explicitly held reader — observes a
single consistent state across every layer: the SQL executor scans the
pinned tables, the approximate engine routes over the pinned model
population, the unified planner keys its caches on the pinned versions,
and the feedback verifier differentials run against the same rows the
model answered for.

Writers (``ingest()`` flushes, ``maintain()`` refits, ``archive()``,
``checkpoint()``) commit batch-granular under the catalog's commit lock /
the store's registration lock; a snapshot taken between two commits can
never observe a torn half-batch.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.model_store import ModelStore, ModelStorePin
    from repro.db.catalog import Catalog
    from repro.db.snapshot import CatalogSnapshot

__all__ = ["Snapshot"]


class Snapshot:
    """A consistent ``(catalog version, table columns, model-store version)``
    triple pinned at one point in time.

    Immutable from the holder's perspective: tables are frozen column-map
    copies and the model membership cannot change underneath the reader
    (model *quality* metadata stays live by design — see
    :class:`~repro.core.model_store.ModelStorePin`).
    """

    __slots__ = ("catalog", "models")

    def __init__(self, catalog: "CatalogSnapshot", models: "ModelStorePin") -> None:
        self.catalog = catalog
        self.models = models

    @classmethod
    def capture(cls, catalog: "Catalog", store: "ModelStore") -> "Snapshot":
        """Pin the current committed state of both registries.

        Each half is frozen under its own commit/registration lock, so each
        is internally consistent; the pair is as consistent as two
        independently versioned registries can be (there is no cross-lock
        transaction spanning data and models, by design — model staleness
        relative to data is first-class, tracked state).
        """
        return cls(catalog.snapshot(), store.pin())

    @property
    def catalog_version(self) -> int:
        return self.catalog.version

    @property
    def model_version(self) -> int:
        return self.models._version

    @property
    def versions(self) -> tuple[int, int]:
        """The pinned ``(catalog_version, model_version)`` pair."""
        return (self.catalog.version, self.models._version)

    @contextmanager
    def reading(self, catalog: "Catalog", store: "ModelStore") -> Iterator["Snapshot"]:
        """Pin every catalog *and* store read on this thread to this snapshot."""
        with catalog.reading(self.catalog), store.reading(self.models):
            yield self

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"Snapshot(catalog@v{self.catalog.version}, "
            f"{len(self.catalog.table_names())} table(s), "
            f"models@v{self.models._version})"
        )
