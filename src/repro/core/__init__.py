"""The paper's contribution: model harvesting and its applications.

* :mod:`repro.core.harvester` / :mod:`repro.core.strawman` — intercepting
  in-database model fits (Figure 2).
* :mod:`repro.core.captured_model` / :mod:`repro.core.model_store` /
  :mod:`repro.core.quality` — storing and judging captured models (§3).
* :mod:`repro.core.approx` — approximate query answering (§4.2).
* :mod:`repro.core.storage` — semantic compression, zero-IO scans and model
  lifecycle management (§4.1).
* :mod:`repro.core.system` — the :class:`~repro.core.system.LawsDatabase`
  façade tying everything together, including the streaming ingestion and
  online maintenance loop of :mod:`repro.streaming`.
"""

from repro.core.captured_model import CapturedModel, ModelCoverage
from repro.core.harvester import HarvestReport, ModelHarvester
from repro.core.model_store import ModelStore
from repro.core.quality import ModelQuality, QualityPolicy, judge_fit, judge_grouped
from repro.core.snapshot import Snapshot
from repro.core.strawman import StrawmanFrame
from repro.core.system import LawsDatabase

__all__ = [
    "CapturedModel",
    "HarvestReport",
    "LawsDatabase",
    "ModelCoverage",
    "ModelHarvester",
    "ModelQuality",
    "ModelStore",
    "QualityPolicy",
    "Snapshot",
    "StrawmanFrame",
    "judge_fit",
    "judge_grouped",
]
