"""Strawman frames: the user-facing proxy that makes interception invisible.

The paper builds on earlier work (Mühleisen & Lumley, SSDBM'13) in which a
"strawman object" in the statistical environment wraps a database table but
is indistinguishable from a local dataset; every operation on it is forwarded
to the database.  :class:`StrawmanFrame` is that object for this
reproduction: it looks like a small dataframe (columns, len, head, summary,
column access as NumPy arrays) and its :meth:`fit` method ships the model
formula to the engine, where the harvester fits *and captures* it — the user
only ever sees the goodness of fit (Figure 2, steps 1-3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.harvester import HarvestReport
from repro.db.table import Table
from repro.errors import HarvestError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.system import LawsDatabase

__all__ = ["StrawmanFrame"]


class StrawmanFrame:
    """A dataframe-looking proxy over a database table (or filtered subset)."""

    def __init__(
        self,
        system: "LawsDatabase",
        table_name: str,
        predicate_sql: str | None = None,
    ) -> None:
        self._system = system
        self._table_name = table_name
        self._predicate_sql = predicate_sql

    # -- dataframe-ish surface -----------------------------------------------------

    @property
    def table_name(self) -> str:
        return self._table_name

    @property
    def predicate(self) -> str | None:
        return self._predicate_sql

    @property
    def columns(self) -> list[str]:
        return self._system.table(self._table_name).schema.names

    def __len__(self) -> int:
        return self._materialise().num_rows

    def __getitem__(self, column: str) -> np.ndarray:
        """Column access, returning a NumPy array like a local dataframe would."""
        table = self._materialise()
        if column not in table.schema:
            raise KeyError(column)
        return table.column(column).to_numpy()

    def head(self, n: int = 10) -> Table:
        return self._materialise().head(n)

    def to_table(self) -> Table:
        return self._materialise()

    def filter(self, predicate_sql: str) -> "StrawmanFrame":
        """A new strawman restricted by an additional WHERE predicate.

        Fitting against a filtered strawman produces a *partial* model whose
        coverage records the predicate (§4.1, "multiple, partial or grouped
        models").
        """
        combined = (
            predicate_sql
            if self._predicate_sql is None
            else f"({self._predicate_sql}) AND ({predicate_sql})"
        )
        return StrawmanFrame(self._system, self._table_name, combined)

    def summary(self) -> dict[str, dict[str, Any]]:
        """Per-column summary statistics, like a statistical environment's summary()."""
        stats = self._system.database.stats(self._table_name)
        out: dict[str, dict[str, Any]] = {}
        for name, column_stats in stats.columns.items():
            out[name] = {
                "dtype": column_stats.dtype.value,
                "count": column_stats.row_count - column_stats.null_count,
                "nulls": column_stats.null_count,
                "distinct": column_stats.distinct_count,
                "min": column_stats.min_value,
                "max": column_stats.max_value,
                "mean": column_stats.mean,
                "std": column_stats.std,
            }
        return out

    # -- the interception point -------------------------------------------------------

    def fit(
        self,
        formula: str,
        group_by: str | list[str] | None = None,
        robust: bool = False,
        method: str = "lm",
    ) -> HarvestReport:
        """Fit a model formula *in the database* and return the goodness of fit.

        The fit is transparently captured by the harvester; the caller gets
        back exactly what a statistical environment would return (parameters
        and fit quality via the :class:`HarvestReport`).
        """
        return self._system.harvester.fit_and_capture(
            self._table_name,
            formula,
            group_by=group_by,
            predicate_sql=self._predicate_sql,
            robust=robust,
            method=method,
        )

    # -- internals ------------------------------------------------------------------------

    def _materialise(self) -> Table:
        if self._predicate_sql is None:
            return self._system.table(self._table_name)
        try:
            return self._system.database.query(
                f"SELECT * FROM {self._table_name} WHERE {self._predicate_sql}"
            )
        except Exception as exc:  # surface a clearer error for bad predicates
            raise HarvestError(
                f"could not materialise strawman for {self._table_name!r} "
                f"with predicate {self._predicate_sql!r}: {exc}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        predicate = f" WHERE {self._predicate_sql}" if self._predicate_sql else ""
        return f"StrawmanFrame({self._table_name}{predicate})"
