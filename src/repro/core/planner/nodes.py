"""Unified-plan nodes: model-serving routes and exact operators, one tree.

A :class:`UnifiedPlan` is what the planner produces for every statement:
the candidate plan nodes it considered (one per viable route), the node it
chose under the accuracy contract, and why.  Hybrid plans — healthy groups
served from models, uncovered groups computed exactly — appear as one
node with two children, generalizing the per-group router of PR 2 to
whole subplans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.planner.contract import AccuracyContract

__all__ = ["PlanNode", "UnifiedPlan"]


@dataclass
class PlanNode:
    """One candidate (or chosen) node of a unified plan."""

    #: "model-route" | "exact" | "ddl" | "dml"
    kind: str
    #: The serving route label ("point", "grouped-hybrid", "exact", ...).
    route: str
    detail: str
    predicted_seconds: float = 0.0
    #: Predicted |relative error| of the answer (0.0 for exact execution).
    predicted_relative_error: float = 0.0
    model_ids: list[int] = field(default_factory=list)
    children: list["PlanNode"] = field(default_factory=list)
    #: Set when this candidate cannot honestly execute (e.g. the raw rows it
    #: needs were archived to the model-only tier).  Choosing it raises.
    unavailable_reason: str | None = None

    @property
    def is_exact(self) -> bool:
        return self.kind != "model-route"

    @property
    def is_available(self) -> bool:
        return self.unavailable_reason is None

    def render(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        cost = f"cost≈{self.predicted_seconds * 1000.0:.3f}ms"
        if self.kind == "model-route":
            error = f"err≈{self.predicted_relative_error:.2%}"
            models = (
                " models=" + ",".join(f"#{mid}" for mid in self.model_ids)
                if self.model_ids
                else ""
            )
            head = f"{pad}{self.route} [{cost}, {error}{models}]"
        else:
            head = f"{pad}{self.route} [{cost}, exact]"
        if self.unavailable_reason is not None:
            head += " [UNAVAILABLE]"
        lines = [head]
        if self.unavailable_reason is not None:
            lines.append(f"{pad}  ! {self.unavailable_reason}")
        if self.detail:
            lines.append(f"{pad}  · {self.detail}")
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


@dataclass
class UnifiedPlan:
    """Everything the planner decided for one statement."""

    sql: str
    contract: AccuracyContract
    #: "select" | "create" | "insert"
    statement_type: str
    #: Every candidate the planner costed, in routing order.
    candidates: list[PlanNode]
    chosen: PlanNode
    #: Why the chosen node won under the contract.
    reason: str
    planning_seconds: float = 0.0
    catalog_version: int = 0
    store_version: int = 0
    #: The engine's RouteSketch behind the model candidate (None when no
    #: model route applies).  Execution reuses its grouped route plan so
    #: the per-group routing is not recomputed; validity is guaranteed by
    #: the plan cache's catalog/store version key.
    sketch: Any = None
    #: Set when raw rows this statement may need live in the model-only
    #: archive tier: exact execution would be incomplete.  If the chosen
    #: node is not a pure model route, execution raises with this reason.
    archived_reason: str | None = None
    #: Set when a component this statement depends on is failed or
    #: quarantined (e.g. the table's snapshot segments were moved aside at
    #: recovery).  Exact execution would silently run over the surviving
    #: partial rows; a pure model route still answers — with this reason
    #: disclosed — and anything else raises a typed
    #: :class:`~repro.errors.DegradedServiceError`.
    degraded_reason: str | None = None
    #: Calibration provenance of the cost model this plan was costed with
    #: ("bench:BENCH_hotpaths.json", "adaptive:gen3 (...)", ...) — every
    #: route decision discloses which rates it believed.
    cost_source: str | None = None
    #: True when the statement reads or writes a reserved ``_telemetry_*``
    #: table: the flight recorder, calibrator, SLO engine, slow log and
    #: feedback sampler all skip such plans, so observing the telemetry
    #: warehouse never generates more telemetry than it reads.
    telemetry: bool = False

    @property
    def is_model_route(self) -> bool:
        return self.chosen.kind == "model-route"

    def explain(self) -> str:
        """Human-readable plan: contract, candidates, decision."""
        lines = [
            f"Query: {self.sql.strip()}",
            f"Contract: {self.contract.describe()}",
        ]
        if self.cost_source is not None:
            lines.append(f"Cost model: {self.cost_source}")
        lines.append("Candidates:")
        for node in self.candidates:
            marker = "=>" if node is self.chosen else "  "
            rendered = node.render(indent=0)
            lines.append(f"{marker} {rendered[0]}")
            lines.extend(f"   {line}" for line in rendered[1:])
        lines.append(f"Decision: {self.chosen.route} — {self.reason}")
        if self.archived_reason is not None:
            lines.append(f"Archived: {self.archived_reason}")
        if self.degraded_reason is not None:
            lines.append(f"Degraded: {self.degraded_reason}")
        return "\n".join(lines)
