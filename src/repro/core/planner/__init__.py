"""The unified accuracy-aware query planner.

One entry point for every SQL statement: the planner probes the model
routes the approximate engine could serve (PR 2), costs them against the
exact vectorized pipeline (PR 3) using a calibration derived from the
committed hot-path benchmarks, and picks the route the caller's
:class:`AccuracyContract` admits.  Executed model-served plans are
sampled against exact execution and the observed errors feed model
quality — the maintenance loop refits models the planner caught lying.
"""

from repro.core.planner.contract import APPROX, AUTO, EXACT, AccuracyContract
from repro.core.planner.cost import CostModel, OperatorCosts
from repro.core.planner.feedback import FeedbackResult, ObservedErrorFeedback
from repro.core.planner.nodes import PlanNode, UnifiedPlan
from repro.core.planner.planner import PlannedAnswer, UnifiedPlanner

__all__ = [
    "APPROX",
    "AUTO",
    "EXACT",
    "AccuracyContract",
    "CostModel",
    "FeedbackResult",
    "ObservedErrorFeedback",
    "OperatorCosts",
    "PlanNode",
    "PlannedAnswer",
    "UnifiedPlan",
    "UnifiedPlanner",
]
