"""The planner's cost model, calibrated from the committed hot-path bench.

Every unified plan carries a predicted cost per candidate node.  The
per-operator throughputs come from ``BENCH_hotpaths.json`` — the repo's
committed, regression-gated measurement of the vectorized execution core —
so the cost model tracks the machine the benchmarks actually ran on
instead of hand-waved constants.  When the file is missing (installed
package, stripped checkout), the committed calibration is baked in as the
fallback.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.db.sql.ast import SelectStatement
from repro.db.stats import TableStats

__all__ = ["OperatorCosts", "CostModel"]

#: Environment override for the calibration file location.
BENCH_ENV_VAR = "REPRO_BENCH_HOTPATHS"
BENCH_FILENAME = "BENCH_hotpaths.json"


@dataclass(frozen=True)
class OperatorCosts:
    """Per-operator unit costs, in seconds.

    The defaults are the committed ``BENCH_hotpaths.json`` calibration
    (100k-row hot paths on the baseline machine), used when no calibration
    file can be located at runtime.
    """

    scan_seconds_per_row: float = 1.0 / 13_832_917.0
    group_by_seconds_per_row: float = 1.0 / 18_947_073.0
    join_seconds_per_row: float = 1.0 / 11_274_677.0
    #: One captured-model evaluation over one domain point (a small numpy
    #: expression over fitted parameters) — not measured by the hot-path
    #: bench; validated by ``benchmarks/bench_planner.py``.
    model_eval_seconds: float = 2.0e-5
    #: Fixed per-query overhead of a plan-cached execution (from the
    #: ``repeated_query`` hot path: ~3000 queries/second end to end).
    query_fixed_seconds: float = 1.0 / 3049.0
    #: Simulated storage bandwidth (matches :class:`IOParameters`' default
    #: SSD model): exact execution pays this for every base-table byte it
    #: scans, model routes read no pages at all — the paper's zero-IO
    #: argument, made visible to the cost-based route choice.
    io_bytes_per_second: float = 500e6
    #: Fixed cost of dispatching one partition task to a pool thread
    #: (submit + future wakeup + partial-state merge share); calibrated by
    #: ``benchmarks/bench_parallel.py``'s ``"parallel"`` block when present.
    parallel_task_overhead_seconds: float = 2.5e-4
    #: Same, for a forked process worker (fork + token round-trip + result
    #: pickling) — orders of magnitude above the thread cost, so the process
    #: backend only wins on very large per-worker slices.
    parallel_process_task_overhead_seconds: float = 6.0e-2
    #: Pool width the fan-out decision plans for.
    parallel_max_workers: int = 4

    @classmethod
    def from_bench_payload(cls, payload: dict) -> "OperatorCosts":
        """Calibrate from a parsed ``BENCH_hotpaths.json`` payload."""
        hot = payload.get("hot_paths", {})
        parallel = payload.get("parallel", {})

        def rate(name: str, key: str, default: float) -> float:
            entry = hot.get(name, {})
            value = float(entry.get(key, 0.0) or 0.0)
            return value if value > 0 else default

        def positive(mapping: dict, key: str, default: float) -> float:
            value = float(mapping.get(key, 0.0) or 0.0)
            return value if value > 0 else default

        base = cls()
        return cls(
            scan_seconds_per_row=1.0 / rate("scan_filter", "rows_per_second", 1.0 / base.scan_seconds_per_row),
            group_by_seconds_per_row=1.0 / rate("group_by", "rows_per_second", 1.0 / base.group_by_seconds_per_row),
            join_seconds_per_row=1.0 / rate("join", "rows_per_second", 1.0 / base.join_seconds_per_row),
            model_eval_seconds=base.model_eval_seconds,
            query_fixed_seconds=1.0 / rate("repeated_query", "queries_per_second", 1.0 / base.query_fixed_seconds),
            parallel_task_overhead_seconds=positive(
                parallel, "task_overhead_seconds", base.parallel_task_overhead_seconds
            ),
            parallel_process_task_overhead_seconds=positive(
                parallel, "process_task_overhead_seconds", base.parallel_process_task_overhead_seconds
            ),
            parallel_max_workers=int(
                positive(parallel, "max_workers", base.parallel_max_workers)
            ),
        )


def _locate_bench_file() -> Path | None:
    override = os.environ.get(BENCH_ENV_VAR)
    if override:
        path = Path(override)
        return path if path.is_file() else None
    here = Path(__file__).resolve()
    for parent in here.parents[:6]:
        candidate = parent / BENCH_FILENAME
        if candidate.is_file():
            return candidate
    return None


class CostModel:
    """Predicts execution cost (seconds) for unified-plan candidates.

    ``source`` is the calibration provenance — where the per-operator rates
    came from — rendered by ``explain()`` so every plan discloses whether it
    was costed against the committed bench figures or rates the adaptive
    calibrator (:class:`repro.obs.calibration.CostCalibrator`) observed on
    this very process.
    """

    def __init__(self, costs: OperatorCosts | None = None, source: str = "builtin-defaults") -> None:
        self.costs = costs or OperatorCosts()
        self.source = source

    @classmethod
    def from_bench(cls, path: Path | str | None = None) -> "CostModel":
        """Calibrate from ``BENCH_hotpaths.json`` (walks up from the package
        and honours the ``REPRO_BENCH_HOTPATHS`` env var); falls back to the
        committed calibration baked into :class:`OperatorCosts`."""
        bench_path = Path(path) if path is not None else _locate_bench_file()
        if bench_path is None or not bench_path.is_file():
            return cls()
        try:
            payload = json.loads(bench_path.read_text())
        except (OSError, ValueError):
            return cls()
        return cls(
            OperatorCosts.from_bench_payload(payload), source=f"bench:{bench_path.name}"
        )

    # -- predictions ----------------------------------------------------------

    def exact_seconds(
        self, statement: SelectStatement, stats_by_table: dict[str, TableStats]
    ) -> float:
        """Predicted cost of exact vectorized execution of ``statement``."""
        costs = self.costs
        base_rows = 0
        scanned_bytes = 0
        if statement.table is not None:
            base = stats_by_table.get(statement.table.name)
            if base is not None:
                base_rows = base.row_count
                scanned_bytes = base.byte_size
        seconds = costs.query_fixed_seconds + base_rows * costs.scan_seconds_per_row
        for join in statement.joins:
            right = stats_by_table.get(join.table.name)
            if right is not None:
                seconds += (base_rows + right.row_count) * costs.join_seconds_per_row
                scanned_bytes += right.byte_size
            else:
                seconds += base_rows * costs.join_seconds_per_row
        if statement.group_by:
            seconds += base_rows * costs.group_by_seconds_per_row
        return seconds + scanned_bytes / costs.io_bytes_per_second

    def parallel_fanout(self, rows: int, num_partitions: int) -> tuple[int, str] | None:
        """Decide whether fanning a ``rows``-row scan across partitions pays.

        Returns ``(workers, backend)`` when the modelled parallel critical
        path — the per-worker row share plus one dispatch overhead per
        partition task — beats single-threaded row cost, ``None`` otherwise.
        Small tables lose to dispatch overhead and stay serial; the process
        backend is only chosen when each worker's slice dwarfs the fork
        round-trip.  Deliberately *not* clamped to ``os.cpu_count()``: the
        host CPU count says nothing about the simulated-IO savings, and on
        single-core CI the thread pool must still be exercised.
        """
        if num_partitions < 2 or rows <= 0:
            return None
        costs = self.costs
        workers = max(1, min(costs.parallel_max_workers, num_partitions))
        serial_seconds = rows * costs.scan_seconds_per_row
        tasks_per_worker = -(-num_partitions // workers)  # ceil
        parallel_seconds = (
            serial_seconds / workers
            + tasks_per_worker * costs.parallel_task_overhead_seconds
        )
        if parallel_seconds >= serial_seconds or workers < 2:
            return None
        per_worker_seconds = serial_seconds / workers
        if per_worker_seconds > 20.0 * costs.parallel_process_task_overhead_seconds:
            return workers, "process"
        return workers, "thread"

    def exact_fill_seconds(
        self, uncovered_rows: float, fill_scan_rows: float | None = None
    ) -> float:
        """The exact fill-in half of a hybrid plan: a scan of
        ``fill_scan_rows`` (the whole base table — the membership filter
        happens after the scan) and grouped aggregation over the
        ``uncovered_rows`` that survive it.  No per-query fixed charge: the
        fill-in runs inside the same query."""
        costs = self.costs
        scanned = uncovered_rows if fill_scan_rows is None else fill_scan_rows
        return (
            scanned * costs.scan_seconds_per_row
            + uncovered_rows * costs.group_by_seconds_per_row
        )

    def model_route_seconds(
        self,
        est_points: int,
        uncovered_rows: float = 0.0,
        fill_scan_rows: float | None = None,
    ) -> float:
        """Predicted cost of serving from models: ``est_points`` model
        evaluations plus — for hybrid plans — the exact fill-in, with the
        per-query fixed overhead charged exactly once."""
        costs = self.costs
        seconds = costs.query_fixed_seconds + est_points * costs.model_eval_seconds
        if uncovered_rows > 0:
            seconds += self.exact_fill_seconds(uncovered_rows, fill_scan_rows)
        return seconds
