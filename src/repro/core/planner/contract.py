"""Accuracy contracts: what the caller promises to tolerate.

The paper's vision is a database where captured models are an *access
path*, not a separate API.  An :class:`AccuracyContract` is how a caller
tells the unified planner what an acceptable answer looks like — error
budget, latency deadline, and whether the system may choose the route —
so the model-vs-exact decision belongs to the planner, not the user.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["AccuracyContract", "AUTO", "EXACT", "APPROX"]

_MODES = ("auto", "exact", "approx")


@dataclass(frozen=True)
class AccuracyContract:
    """The caller's accuracy/latency requirements for one query.

    ``mode``
        ``"auto"`` (default) lets the planner cost-route between model
        serving and exact execution; ``"exact"`` pins exact execution;
        ``"approx"`` pins model serving (with exact fallback unless
        ``allow_exact_fallback`` is False).
    ``max_relative_error``
        The error budget for auto mode: the model route is admitted only
        when its *predicted* relative error fits the budget.  ``None``
        means any predicted error is acceptable.
    ``deadline_ms``
        A soft latency deadline.  When exact execution is predicted to
        blow the deadline and a model route is predicted to meet it, auto
        mode prefers the model route even without an error budget.
    ``allow_exact_fallback``
        In approx mode, whether a query no model can serve may fall back
        to exact execution (mirrors the old ``approximate_sql``'s
        ``allow_fallback``).
    ``verify_fraction``
        Fraction of executed model-served plans to verify against exact
        execution, feeding observed errors back into model quality.
        ``None`` uses the planner's default sampling rate.
    """

    max_relative_error: float | None = None
    deadline_ms: float | None = None
    mode: str = "auto"
    allow_exact_fallback: bool = True
    verify_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ReproError(
                f"unknown contract mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.max_relative_error is not None and self.max_relative_error < 0:
            raise ReproError("max_relative_error must be non-negative")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ReproError("deadline_ms must be positive")
        if self.verify_fraction is not None and not 0.0 <= self.verify_fraction <= 1.0:
            raise ReproError("verify_fraction must be within [0, 1]")

    @property
    def error_budget(self) -> float:
        """The budget as a float (infinite when unconstrained)."""
        return float("inf") if self.max_relative_error is None else self.max_relative_error

    @property
    def deadline_seconds(self) -> float:
        return float("inf") if self.deadline_ms is None else self.deadline_ms / 1000.0

    def describe(self) -> str:
        parts = [f"mode={self.mode}"]
        if self.max_relative_error is not None:
            parts.append(f"max_relative_error={self.max_relative_error:g}")
        if self.deadline_ms is not None:
            parts.append(f"deadline_ms={self.deadline_ms:g}")
        if not self.allow_exact_fallback:
            parts.append("no-exact-fallback")
        if self.verify_fraction is not None:
            parts.append(f"verify={self.verify_fraction:g}")
        return ", ".join(parts)


#: Common pinned contracts (used by the deprecated entry-point shims).
AUTO = AccuracyContract()
EXACT = AccuracyContract(mode="exact")
APPROX = AccuracyContract(mode="approx")
