"""The unified accuracy-aware query planner: one entry point, cost-routed.

Every SQL statement becomes one :class:`UnifiedPlan` whose candidate nodes
are either model-serving routes (the PR-2 routing machinery, probed
statically through :meth:`ApproximateQueryEngine.sketch_route`) or the
exact vectorized pipeline (PR-3), each with a predicted cost (calibrated
from ``BENCH_hotpaths.json``) and a predicted relative error (from the
captured models' quality judgements).  The accuracy contract decides which
node executes; sampled executions are verified against exact and the
observed errors feed model quality, closing the loop.

Plans are cached in an LRU keyed on (sql, contract, catalog version,
model-store version): any DDL/data change or model lifecycle event
invalidates affected decisions, so a cached decision can never outlive the
state it was costed against.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.core.approx.engine import ApproximateAnswer, ApproximateQueryEngine, RouteSketch
from repro.core.approx.error_bounds import ErrorEstimate
from repro.core.model_store import ModelStore
from repro.core.planner.contract import AccuracyContract, AUTO
from repro.core.planner.cost import CostModel
from repro.core.planner.feedback import FeedbackResult, ObservedErrorFeedback
from repro.core.planner.nodes import PlanNode, UnifiedPlan
from repro.core.snapshot import Snapshot
from repro.db.database import Database
from repro.db.sql.ast import SelectStatement
from repro.db.sql.executor import QueryResult
from repro.db.stats import TableStats
from repro.errors import ApproximationError, DegradedServiceError
from repro.db.table import Table
from repro.obs.flight import is_telemetry_table
from repro.obs.hub import normalize_reason
from repro.obs.trace import Span, Tracer

__all__ = ["PlannedAnswer", "UnifiedPlanner"]

#: Shared disabled tracer for planners running without an observability
#: hub: every span call degrades to a single attribute check.
_OFF_TRACER = Tracer(enabled=False)

#: Aggregate-specific scaling of the model's base relative error: counts
#: come from (near-live) cardinalities, extremes pay the Gaussian
#: extreme-value premium, value aggregates track the model's own scale.
_AGGREGATE_ERROR_FACTOR = {
    "count": 0.25,
    "avg": 1.0,
    "sum": 1.0,
    "min": 2.0,
    "max": 2.0,
    "stddev": 1.0,
    "var": 1.0,
}


@dataclass
class PlannedAnswer:
    """The result of executing one unified plan."""

    sql: str
    contract: AccuracyContract
    plan: UnifiedPlan
    table: Table
    #: The route that actually served the answer (the engine may have
    #: fallen back past the planner's prediction).
    route_taken: str
    is_exact: bool
    approx: ApproximateAnswer | None = None
    query_result: QueryResult | None = None
    elapsed_seconds: float = 0.0
    #: Set when this execution was sampled for verification.
    feedback: FeedbackResult | None = None
    column_errors: dict[str, float] = field(default_factory=dict)

    def rows(self) -> list[tuple]:
        return self.table.to_rows()

    def scalar(self) -> Any:
        if self.table.num_rows != 1 or self.table.num_columns != 1:
            raise ApproximationError(
                f"scalar() requires a 1x1 result, got "
                f"{self.table.num_rows}x{self.table.num_columns}"
            )
        return self.table.row(0)[0]

    def error_estimate(self, column: str) -> ErrorEstimate | None:
        """The error band attached to one result column (None when exact)."""
        if self.approx is not None:
            return self.approx.error_estimate(column)
        return None

    @property
    def observed_relative_error(self) -> float | None:
        return self.feedback.observed_relative_error if self.feedback else None

    @property
    def degraded_reason(self) -> str | None:
        """Why this answer was served from surviving models only (disclosure)."""
        return self.plan.degraded_reason


class UnifiedPlanner:
    """Cost-routes every statement between model serving and exact execution."""

    def __init__(
        self,
        database: Database,
        store: ModelStore,
        engine: ApproximateQueryEngine,
        cost_model: CostModel | None = None,
        feedback: ObservedErrorFeedback | None = None,
        plan_cache_size: int = 128,
    ) -> None:
        self.database = database
        self.store = store
        self.engine = engine
        self.cost_model = cost_model or CostModel.from_bench()
        self.feedback = feedback or ObservedErrorFeedback(database, store)
        #: Optional callable ``(SelectStatement) -> str | None`` naming why a
        #: statement cannot honestly run over the raw rows (the archive
        #: tier's model-only guard).  When it fires, only pure model routes
        #: may execute; anything else raises with the reason.
        self.archive_guard = None
        #: Optional callable ``(SelectStatement) -> str | None`` naming why a
        #: component this statement depends on is failed or quarantined
        #: ("``component`` — ``quarantine reason``").  Exact execution over
        #: the surviving partial rows would be silently wrong; pure model
        #: routes still answer (with the reason disclosed on the plan) and
        #: everything else raises :class:`~repro.errors.DegradedServiceError`.
        self.degraded_guard = None
        #: Optional :class:`repro.resilience.ResilienceRuntime`.  When set,
        #: the sampled feedback verifier runs behind a circuit breaker: a
        #: failing audit is recorded (and eventually skipped) instead of
        #: failing the answer it was auditing.
        self.resilience: Any = None
        #: Optional :class:`repro.obs.Observability` hub.  When set and
        #: enabled, every execution is traced, metered, compliance-accounted
        #: and slow-logged; when absent, execution pays one attribute check.
        self.obs = None
        self.plan_cache_size = plan_cache_size
        #: Bumped by :meth:`set_cost_model`; part of the plan-cache key, so
        #: a recalibration atomically invalidates every cached route
        #: decision costed against the superseded rates.
        self._cost_version = 0
        self._plan_cache: OrderedDict[tuple, UnifiedPlan] = OrderedDict()
        # Concurrent queries share this planner; OrderedDict mutation
        # (move_to_end / insert / evict) is not atomic.
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0
        #: Last snapshot handed out, reused while both registries are
        #: unchanged so repeated tiny queries do not re-copy table/model
        #: maps.  A benign overwrite race just builds one extra snapshot.
        self._snapshot_memo: Snapshot | None = None

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin (or reuse) a consistent snapshot of the catalog and the models.

        The memoized snapshot is reused only while both *live* versions are
        unchanged and its model pin was never dirtied by own-write
        mirroring — a mirrored pin can carry the live version number while
        missing another thread's concurrent registration.
        """
        memo = self._snapshot_memo
        if (
            memo is not None
            and not memo.models._mirrored
            and memo.catalog.version == self.database.catalog.live_version
            and memo.models._version == self.store.live_version
        ):
            return memo
        snap = Snapshot.capture(self.database.catalog, self.store)
        self._snapshot_memo = snap
        return snap

    # -- planning -------------------------------------------------------------

    def plan(
        self, sql: str, contract: AccuracyContract | None = None, for_execution: bool = False
    ) -> UnifiedPlan:
        """Build (or fetch) the unified plan for ``sql`` under ``contract``.

        ``for_execution=False`` (EXPLAIN) is side-effect free; True permits
        what real execution would do anyway (the on-demand grouped harvest).
        """
        contract = contract or AUTO
        key = (
            sql,
            contract,
            for_execution,
            self.database.catalog.version,
            self.store.version,
            self._cost_version,
        )
        with self._cache_lock:
            cached = self._plan_cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                self._plan_cache.move_to_end(key)
                return cached
            self._cache_misses += 1
        started = perf_counter()
        # Planning runs outside the lock (it may scan tables for the
        # on-demand harvest); two threads racing the same key just build
        # the plan twice and the last insert wins.
        plan = self._build_plan(sql, contract, for_execution)
        plan.planning_seconds = perf_counter() - started
        with self._cache_lock:
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plan

    def set_cost_model(self, cost_model: CostModel) -> None:
        """Install a recalibrated cost model and invalidate cached plans.

        The adaptive calibrator's entry point: the swap and the version bump
        happen under the cache lock, so no concurrent planner can cache a
        decision costed with the old rates under the new version.
        """
        with self._cache_lock:
            self.cost_model = cost_model
            self._cost_version += 1
            self._plan_cache.clear()

    def explain(self, sql: str, contract: AccuracyContract | None = None) -> str:
        """Render the chosen route, predicted cost and predicted error per node."""
        return self.plan(sql, contract, for_execution=False).explain()

    def plan_cache_info(self) -> dict[str, int]:
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "size": len(self._plan_cache),
                "capacity": self.plan_cache_size,
            }

    def _build_plan(
        self, sql: str, contract: AccuracyContract, for_execution: bool
    ) -> UnifiedPlan:
        statement = self.database.parse_sql(sql)
        catalog_version = self.database.catalog.version
        store_version = self.store.version
        telemetry = _references_telemetry(statement)

        if not isinstance(statement, SelectStatement):
            is_create = type(statement).__name__.startswith("CreateTable")
            node = PlanNode(
                kind="ddl" if is_create else "dml",
                route="create" if is_create else "insert",
                detail="DDL/DML always executes against the stored data",
            )
            return UnifiedPlan(
                sql=sql,
                contract=contract,
                statement_type=node.route,
                candidates=[node],
                chosen=node,
                reason="not a SELECT; model routes do not apply",
                catalog_version=catalog_version,
                store_version=store_version,
                telemetry=telemetry,
            )

        stats_by_table = self._statement_stats(statement)
        exact_node = self._exact_node(sql, statement, stats_by_table)
        candidates = [exact_node]

        archived_reason = (
            self.archive_guard(statement) if self.archive_guard is not None else None
        )
        degraded_reason = (
            self.degraded_guard(statement) if self.degraded_guard is not None else None
        )

        sketch: RouteSketch | None = None
        if contract.mode != "exact" or archived_reason is not None or degraded_reason is not None:
            # Even under a pinned-exact contract an archived (or degraded)
            # statement needs the model candidate sketched, so EXPLAIN shows
            # the only honest route next to the unavailable exact one.
            sketch = self.engine.sketch_route(
                sql, statement=statement, for_execution=for_execution
            )
        model_node = None
        if sketch is not None:
            model_node = self._model_node(sketch, statement, stats_by_table)
            candidates.insert(0, model_node)

        if archived_reason is not None:
            exact_node.unavailable_reason = archived_reason
            if model_node is not None and sketch is not None and sketch.uncovered_rows > 0:
                # A hybrid plan's exact fill-in scans raw rows the archive no
                # longer holds — it is as dishonest as plain exact execution.
                model_node.unavailable_reason = (
                    "hybrid route needs an exact fill-in over archived raw rows"
                )
            chosen, reason = self._choose_archived(contract, model_node, exact_node)
        elif degraded_reason is not None:
            exact_node.unavailable_reason = degraded_reason
            if model_node is not None and sketch is not None and sketch.uncovered_rows > 0:
                # The hybrid fill-in would scan the surviving partial rows of
                # a failed component and silently under-count.
                model_node.unavailable_reason = (
                    "hybrid route needs an exact fill-in over a degraded component"
                )
            chosen, reason = self._choose_degraded(contract, model_node, exact_node)
        else:
            chosen, reason = self._choose(contract, model_node, exact_node)
        return UnifiedPlan(
            sql=sql,
            contract=contract,
            statement_type="select",
            candidates=candidates,
            chosen=chosen,
            reason=reason,
            catalog_version=catalog_version,
            store_version=store_version,
            sketch=sketch,
            archived_reason=archived_reason,
            degraded_reason=degraded_reason,
            cost_source=self.cost_model.source,
            telemetry=telemetry,
        )

    def _statement_stats(self, statement: SelectStatement) -> dict[str, TableStats]:
        stats: dict[str, TableStats] = {}
        names = []
        if statement.table is not None:
            names.append(statement.table.name)
        names.extend(join.table.name for join in statement.joins)
        for name in names:
            if name not in stats and self.database.has_table(name):
                stats[name] = self.database.stats(name)
        return stats

    def _exact_node(
        self,
        sql: str,
        statement: SelectStatement,
        stats_by_table: dict[str, TableStats],
    ) -> PlanNode:
        seconds = self.cost_model.exact_seconds(statement, stats_by_table)
        try:
            _, plan_text = self.database.executor.plan_statement(sql, statement)
            detail = plan_text.replace("\n", " → ")
        except Exception:  # pragma: no cover - malformed SQL surfaces at execution
            detail = "vectorized exact pipeline"
        return PlanNode(
            kind="exact",
            route="exact",
            detail=detail,
            predicted_seconds=seconds,
        )

    def _model_node(
        self,
        sketch: RouteSketch,
        statement: SelectStatement,
        stats_by_table: dict[str, TableStats],
    ) -> PlanNode:
        table_stats = (
            stats_by_table.get(statement.table.name) if statement.table is not None else None
        )
        predicted_error = self._predict_relative_error(sketch, table_stats)
        fill_scan_rows = (
            float(table_stats.row_count)
            if (table_stats is not None and sketch.uncovered_rows > 0)
            else None
        )
        seconds = self.cost_model.model_route_seconds(
            sketch.est_points, sketch.uncovered_rows, fill_scan_rows=fill_scan_rows
        )
        node = PlanNode(
            kind="model-route",
            route=sketch.route,
            detail=sketch.detail,
            predicted_seconds=seconds,
            predicted_relative_error=predicted_error,
            model_ids=list(sketch.model_ids),
        )
        if sketch.route == "grouped-hybrid":
            # The hybrid subplan made explicit: model-served groups and the
            # exact fill-in are separate children with their own costs.
            node.children = [
                PlanNode(
                    kind="model-route",
                    route="grouped-model",
                    detail=f"{sketch.n_model_groups} group(s) from model(s)",
                    predicted_seconds=self.cost_model.model_route_seconds(sketch.est_points),
                    predicted_relative_error=predicted_error,
                    model_ids=list(sketch.model_ids),
                ),
                PlanNode(
                    kind="exact",
                    route="exact-fill-in",
                    detail=(
                        f"{sketch.n_exact_groups} uncovered group(s), "
                        f"≈{sketch.uncovered_rows:.0f} row(s) computed exactly"
                    ),
                    predicted_seconds=self.cost_model.exact_fill_seconds(
                        sketch.uncovered_rows, fill_scan_rows=fill_scan_rows
                    ),
                ),
            ]
        return node

    def _predict_relative_error(
        self, sketch: RouteSketch, table_stats: TableStats | None
    ) -> float:
        """Predicted |relative error| of the sketched route.

        Base: the serving model's residual error relative to the output
        scale (recorded at capture, else derived from catalog stats), then
        scaled by the worst aggregate in the SELECT list — counts come from
        near-live cardinalities, extremes pay the extreme-value premium.
        """
        base = sketch.relative_rse
        if base is None:
            scale = None
            if table_stats is not None and sketch.output_column:
                column_stats = table_stats.columns.get(sketch.output_column)
                if column_stats is not None and column_stats.mean is not None:
                    scale = abs(float(column_stats.mean))
            if scale and scale > 0 and sketch.residual_standard_error >= 0:
                base = sketch.residual_standard_error / scale
            elif sketch.residual_standard_error == 0.0:
                base = 0.0
            else:
                base = math.inf
        if sketch.aggregate_functions:
            factor = max(
                _AGGREGATE_ERROR_FACTOR.get(function, 1.0)
                for function in sketch.aggregate_functions
            )
        else:
            factor = 1.0
        return base * factor

    def _choose_archived(
        self,
        contract: AccuracyContract,
        model_node: PlanNode | None,
        exact_node: PlanNode,
    ) -> tuple[PlanNode, str]:
        """Route choice when raw rows live in the model-only archive tier.

        Exact execution is off the table — it would silently compute over a
        partial table.  A pure model route is admitted when the contract
        tolerates its predicted error; otherwise the plan is deliberately
        unexecutable and carries the honest reason.
        """
        usable = model_node is not None and model_node.is_available
        if contract.mode == "exact":
            return exact_node, (
                "contract pins exact execution, but the raw rows are archived "
                "— execution will raise"
            )
        if not usable:
            detail = (
                model_node.unavailable_reason
                if model_node is not None
                else "no model route applies"
            )
            return exact_node, f"{detail}; archived raw rows — execution will raise"
        budget = contract.error_budget
        if contract.mode == "auto" and model_node.predicted_relative_error > budget:
            return exact_node, (
                f"predicted error {model_node.predicted_relative_error:.2%} exceeds "
                f"budget {budget:.2%} and the raw rows are archived — execution will raise"
            )
        return model_node, (
            "raw segments archived to the model-only tier; serving purely from "
            "warehouse models (zero raw IO)"
        )

    def _choose_degraded(
        self,
        contract: AccuracyContract,
        model_node: PlanNode | None,
        exact_node: PlanNode,
    ) -> tuple[PlanNode, str]:
        """Route choice when a needed component is failed or quarantined.

        Mirrors :meth:`_choose_archived`: exact execution would silently run
        over the surviving partial rows.  A pure model route within budget
        still answers (the degradation is disclosed on the plan); otherwise
        execution raises a typed :class:`~repro.errors.DegradedServiceError`.
        """
        usable = model_node is not None and model_node.is_available
        if contract.mode == "exact":
            return exact_node, (
                "contract pins exact execution, but a component this statement "
                "needs is degraded — execution will raise"
            )
        if not usable:
            detail = (
                model_node.unavailable_reason
                if model_node is not None
                else "no model route applies"
            )
            return exact_node, f"{detail}; degraded component — execution will raise"
        budget = contract.error_budget
        if contract.mode == "auto" and model_node.predicted_relative_error > budget:
            return exact_node, (
                f"predicted error {model_node.predicted_relative_error:.2%} exceeds "
                f"budget {budget:.2%} and a needed component is degraded — "
                "execution will raise"
            )
        return model_node, (
            "a component this statement needs is degraded; serving from the "
            "surviving models (disclosed)"
        )

    def _choose(
        self,
        contract: AccuracyContract,
        model_node: PlanNode | None,
        exact_node: PlanNode,
    ) -> tuple[PlanNode, str]:
        if contract.mode == "exact":
            return exact_node, "contract pins exact execution"
        if contract.mode == "approx":
            if model_node is not None:
                return model_node, "contract pins model serving"
            if contract.allow_exact_fallback:
                return exact_node, "no model route applies; exact fallback"
            return exact_node, "no model route applies (execution will raise)"
        # auto: admit the model route by error budget, then route by
        # deadline and predicted cost.
        if model_node is None:
            return exact_node, "no model route applies"
        budget = contract.error_budget
        if model_node.predicted_relative_error > budget:
            return exact_node, (
                f"predicted error {model_node.predicted_relative_error:.2%} exceeds "
                f"budget {budget:.2%}"
            )
        deadline = contract.deadline_seconds
        if exact_node.predicted_seconds > deadline >= model_node.predicted_seconds:
            return model_node, (
                f"exact predicted {exact_node.predicted_seconds * 1000:.2f}ms blows the "
                f"{contract.deadline_ms:g}ms deadline; model route fits"
            )
        if contract.max_relative_error is not None:
            # An explicit error budget is a declared willingness to accept
            # approximate answers: once the predicted error fits the budget
            # the model route wins regardless of the (usually marginal on
            # small tables) cost difference.
            return model_node, (
                f"predicted error {model_node.predicted_relative_error:.2%} within "
                f"budget {budget:.2%}"
            )
        if model_node.predicted_seconds <= exact_node.predicted_seconds:
            return model_node, (
                f"no error budget given; model route "
                f"{exact_node.predicted_seconds / max(model_node.predicted_seconds, 1e-12):.1f}x "
                f"cheaper than exact"
            )
        return exact_node, "exact execution predicted cheaper than the model route"

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        sql: str,
        contract: AccuracyContract | None = None,
        snapshot: Snapshot | None = None,
    ) -> PlannedAnswer:
        """Plan and execute ``sql`` under ``contract``.

        ``snapshot`` pins the execution to an explicitly held view (see
        :meth:`snapshot`); by default every query pins a fresh (or memoized
        still-current) snapshot at entry, so concurrent ``ingest()`` /
        ``maintain()`` / ``archive()`` commits can never be observed
        mid-query.
        """
        contract = contract or AUTO
        obs = self.obs
        if obs is None or not obs.enabled:
            return self._execute(sql, contract, _OFF_TRACER, snapshot)
        tracer = obs.tracer
        started = perf_counter()
        with tracer.trace("query", sql=sql.strip()) as root:
            try:
                answer = self._execute(sql, contract, tracer, snapshot)
            except Exception as exc:
                obs.metrics.inc("query_errors_total", error=type(exc).__name__)
                raise
        self._account(obs, answer, root, perf_counter() - started)
        return answer

    def _execute(
        self,
        sql: str,
        contract: AccuracyContract,
        tracer: Tracer,
        snapshot: Snapshot | None = None,
    ) -> PlannedAnswer:
        started = perf_counter()
        snap = snapshot if snapshot is not None else self.snapshot()
        # IO is measured around planning *and* execution: planning may
        # trigger the one-off on-demand grouped harvest, whose scan is
        # charged to the query that caused it (as the engine always did).
        # A per-execution scope (not a before/after snapshot of the global
        # accountant) keeps attribution correct when queries interleave.
        # The snapshot is pinned around the whole lifecycle — parse, plan,
        # route, execute, verify-sample — so every layer reads one state;
        # DML inside the pin still lands on live tables (the executor
        # resolves INSERT targets via ``live_table``).
        with self.database.io_model.scope() as io_scope, snap.reading(
            self.database.catalog, self.store
        ):
            return self._execute_scoped(sql, contract, tracer, started, io_scope)

    def _execute_scoped(
        self,
        sql: str,
        contract: AccuracyContract,
        tracer: Tracer,
        started: float,
        io_scope: Any,
    ) -> PlannedAnswer:
        with tracer.span("parse"):
            self.database.parse_sql(sql)
        with tracer.span("plan") as plan_span:
            plan = self.plan(sql, contract, for_execution=True)
        if tracer.active:
            _annotate_plan_span(plan_span, plan)

        if plan.statement_type != "select":
            with tracer.span("execute", route_taken=plan.statement_type):
                result = self.database.sql(sql)
            return PlannedAnswer(
                sql=sql,
                contract=contract,
                plan=plan,
                table=result.table,
                route_taken=plan.statement_type,
                is_exact=True,
                query_result=result,
                elapsed_seconds=perf_counter() - started,
            )

        if plan.archived_reason is not None and not plan.is_model_route:
            # No honest route: raw rows are archived and the contract (or
            # the model population) rules out pure model serving.  An
            # explicit refusal beats an answer computed over a partial table.
            raise ApproximationError(f"{plan.reason}: {plan.archived_reason}")

        if plan.degraded_reason is not None and not plan.is_model_route:
            # Same refusal for a failed/quarantined component: the surviving
            # raw rows are incomplete, and no surviving model can honestly
            # answer — a typed error carrying the quarantine reason.
            component, _, detail = plan.degraded_reason.partition(" — ")
            raise DegradedServiceError(
                f"{plan.reason}: {plan.degraded_reason}",
                component=component,
                reason=detail or plan.degraded_reason,
            )

        if plan.is_model_route or contract.mode == "approx":
            statement = self.database.parse_sql(sql)
            with tracer.span("execute") as exec_span:
                try:
                    approx = self.engine.answer(
                        sql,
                        # Falling back to exact is dishonest when raw rows are
                        # archived or a needed component is degraded: a
                        # mid-route failure must surface, not degrade into an
                        # answer over the partial table.
                        allow_fallback=(
                            contract.allow_exact_fallback
                            and plan.archived_reason is None
                            and plan.degraded_reason is None
                        ),
                        statement=statement,
                        grouped_route_plan=(
                            plan.sketch.grouped_plan if plan.sketch is not None else None
                        ),
                    )
                except ApproximationError as exc:
                    if plan.archived_reason is not None:
                        raise ApproximationError(
                            f"{exc}; {plan.archived_reason}"
                        ) from exc
                    raise
                if tracer.active:
                    exec_span.annotate(
                        route_taken=approx.route,
                        rows=approx.table.num_rows,
                    )
                    if approx.used_model_ids:
                        exec_span.annotate(models=list(approx.used_model_ids))
                    if approx.route == "exact-fallback":
                        exec_span.annotate(fallback_reason=approx.reason)
            approx.io = io_scope.snapshot()
            answer = PlannedAnswer(
                sql=sql,
                contract=contract,
                plan=plan,
                table=approx.table,
                route_taken=approx.route,
                is_exact=approx.is_exact,
                approx=approx,
                column_errors=dict(approx.column_errors),
            )
            # No feedback sampling over archived or degraded tables: "exact"
            # would run on the partial live rows and record bogus evidence
            # against a model that is answering for the full logical table.
            # Telemetry tables are excluded too — an audit is itself a query,
            # and auditing the telemetry warehouse would generate telemetry.
            if (
                not approx.is_exact
                and approx.used_model_ids
                and plan.archived_reason is None
                and plan.degraded_reason is None
                and not plan.telemetry
                and self.feedback.should_verify(contract)
            ):
                with tracer.span("verify-sample") as verify_span:
                    answer.feedback = self._verify_guarded(sql, approx)
                if tracer.active:
                    _annotate_verify_span(verify_span, answer.feedback, plan, contract)
            answer.elapsed_seconds = perf_counter() - started
            return answer

        with tracer.span("execute", route_taken="exact") as exec_span:
            result = self.database.sql(sql)
        if tracer.active:
            exec_span.annotate(rows=result.table.num_rows)
        return PlannedAnswer(
            sql=sql,
            contract=contract,
            plan=plan,
            table=result.table,
            route_taken="exact",
            is_exact=True,
            query_result=result,
            elapsed_seconds=perf_counter() - started,
        )

    def _verify_guarded(self, sql: str, approx: ApproximateAnswer) -> FeedbackResult | None:
        """Run the sampled audit behind the verifier circuit breaker.

        The audit is advisory: with the resilience runtime attached, a
        verifier that starts failing (exception storms, an unreadable exact
        path) has its failures recorded and — past the breaker threshold —
        further samples skipped, instead of failing answers that were
        already correctly served.  Without a runtime the failure propagates
        (fail-stop, the pre-resilience behaviour).
        """
        if self.resilience is None:
            return self.feedback.verify(sql, approx)
        breaker = self.resilience.breaker("planner.verify")
        if not breaker.allow():
            return None
        try:
            result = self.feedback.verify(sql, approx)
        except Exception as exc:  # noqa: BLE001 - the audit must not kill the answer
            breaker.record_failure(f"{type(exc).__name__}: {exc}")
            if self.obs is not None and self.obs.enabled:
                self.obs.metrics.inc("verifier_failures_total", error=type(exc).__name__)
            return None
        breaker.record_success()
        return result

    def _account(
        self, obs: Any, answer: PlannedAnswer, root: Span, elapsed_seconds: float
    ) -> None:
        """Post-execution metrics, compliance and slow-log accounting."""
        metrics = obs.metrics
        route = answer.route_taken
        metrics.inc("queries_total", route=route)
        metrics.observe("query_seconds", elapsed_seconds)
        io = answer.approx.io if answer.approx is not None else (
            answer.query_result.io if answer.query_result is not None else {}
        )
        pages = io.get("pages_read", 0.0)
        if pages:
            metrics.inc("pages_read_total", pages, route=route)
        if route == "exact-fallback":
            reason = answer.approx.reason if answer.approx is not None else None
            metrics.inc("fallbacks_total", reason=normalize_reason(reason))
        model_ids = (
            list(answer.approx.used_model_ids) if answer.approx is not None else []
        )
        degraded = answer.plan.degraded_reason is not None
        if degraded:
            metrics.inc("degraded_answers_total", route=route)
        obs.compliance.record_served(
            route,
            answer.plan.chosen.predicted_relative_error
            if answer.plan.is_model_route
            else None,
            model_ids=model_ids,
            degraded=degraded,
        )
        feedback = answer.feedback
        violated: bool | None = None
        if feedback is not None:
            metrics.inc("feedback_verifications_total")
            if feedback.demoted_model_ids:
                metrics.inc(
                    "feedback_demotions_total", float(len(feedback.demoted_model_ids))
                )
            if feedback.observed_relative_error is not None:
                violated = obs.compliance.record_verified(
                    route,
                    feedback.observed_relative_error,
                    answer.contract.error_budget,
                    model_ids=feedback.recorded_model_ids,
                    demoted_ids=feedback.demoted_model_ids,
                )
                if violated:
                    metrics.inc("contract_violations_total", route=route)
        if answer.plan.telemetry:
            # Queries over the telemetry warehouse are counted above but
            # must not feed the self-observation loops: no slow-log entry,
            # no calibration sample, no SLO event, no flight record —
            # otherwise reading telemetry would mint more telemetry.
            return
        obs.slow_log.observe(
            answer.sql,
            route,
            elapsed_seconds,
            trace_summary=root.summary(),
            contract=answer.contract.describe(),
        )
        # Enabled is re-checked here (not just inside each component) so the
        # obs-off serving path pays three attribute reads, not method calls.
        calibration = getattr(obs, "calibration", None)
        if calibration is not None and calibration.enabled:
            calibration.observe_trace(root)
        slo = getattr(obs, "slo", None)
        if slo is not None and slo.enabled:
            slo.observe_query(elapsed_seconds, degraded=degraded, violated=violated)
        flight = getattr(obs, "flight", None)
        if flight is not None and flight.enabled:
            flight.on_query(answer, root, elapsed_seconds)


def _references_telemetry(statement: Any) -> bool:
    """Whether the statement reads or writes a reserved ``_telemetry_*`` table."""
    if isinstance(statement, SelectStatement):
        names = [statement.table.name] if statement.table is not None else []
        names.extend(join.table.name for join in statement.joins)
    else:
        names = [getattr(statement, "name", None)]
    return any(is_telemetry_table(name) for name in names)


def _annotate_plan_span(span: Span, plan: UnifiedPlan) -> None:
    """Attach the route decision — chosen and rejected — to the plan span."""
    span.annotate(
        decision=plan.chosen.route,
        reason=plan.reason,
        candidates=[_candidate_line(plan, node) for node in plan.candidates],
    )
    if plan.archived_reason is not None:
        span.annotate(archived=plan.archived_reason)


def _candidate_line(plan: UnifiedPlan, node: PlanNode) -> str:
    status = "chosen" if node is plan.chosen else "rejected"
    return f"{status} — {node.render(0)[0]}"


def _annotate_verify_span(
    span: Span,
    feedback: FeedbackResult | None,
    plan: UnifiedPlan,
    contract: AccuracyContract,
) -> None:
    if feedback is None:
        return
    if feedback.observed_relative_error is None:
        span.annotate(outcome="no numeric columns to verify")
        return
    span.annotate(
        predicted_relative_error=f"{plan.chosen.predicted_relative_error:.2%}",
        observed_relative_error=f"{feedback.observed_relative_error:.2%}",
    )
    if contract.max_relative_error is not None:
        span.annotate(
            budget=f"{contract.max_relative_error:.2%}",
            within_budget=feedback.observed_relative_error
            <= contract.max_relative_error,
        )
    if feedback.demoted_model_ids:
        span.annotate(demoted_models=list(feedback.demoted_model_ids))
