"""Observed-error feedback: the planner audits the answers it served.

Predicted errors come from fit-time quality; they go stale the moment the
data drifts away from the captured parameters.  The feedback loop closes
the gap: a sampled fraction of model-served answers is re-executed
exactly, the observed relative error is recorded against every serving
model (:meth:`ModelStore.record_observed_error`), and models whose
evidence violates the quality policy are demoted — marked stale, flagged
for the maintenance loop to refit.  The planner thus *learns* which
models lie, instead of trusting capture-time quality forever.
"""

from __future__ import annotations

import math
import random
import re
from dataclasses import dataclass, field
from typing import Any

from repro.core.approx.engine import ApproximateAnswer, _relative_errors
from repro.core.model_store import ModelStore
from repro.core.planner.contract import AccuracyContract
from repro.core.quality import QualityPolicy
from repro.db.database import Database

__all__ = ["FeedbackResult", "ObservedErrorFeedback"]


@dataclass
class FeedbackResult:
    """What one verification pass observed and did."""

    observed_relative_error: float | None
    recorded_model_ids: list[int] = field(default_factory=list)
    demoted_model_ids: list[int] = field(default_factory=list)

    def describe(self) -> str:
        if self.observed_relative_error is None:
            return "no numeric columns to verify"
        text = f"observed relative error {self.observed_relative_error:.2%}"
        if self.demoted_model_ids:
            text += f"; demoted model(s) {self.demoted_model_ids}"
        return text


class ObservedErrorFeedback:
    """Samples executed model-served plans and records observed errors."""

    def __init__(
        self,
        database: Database,
        store: ModelStore,
        quality_policy: QualityPolicy | None = None,
        sample_fraction: float = 0.05,
        seed: int | None = None,
    ) -> None:
        self.database = database
        self.store = store
        self.quality_policy = quality_policy or QualityPolicy()
        self.sample_fraction = sample_fraction
        #: Optional fault injector (``planner.verify``): exception storms
        #: and latency spikes inside the verification pass.  The planner's
        #: verifier breaker absorbs these — a failing audit must never take
        #: down the answer it was auditing.
        self.faults: Any = None
        self._rng = random.Random(seed)

    def should_verify(self, contract: AccuracyContract) -> bool:
        """Whether this execution should be audited against exact."""
        fraction = (
            contract.verify_fraction
            if contract.verify_fraction is not None
            else self.sample_fraction
        )
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        return self._rng.random() < fraction

    def verify(self, sql: str, answer: ApproximateAnswer) -> FeedbackResult:
        """Re-run ``sql`` exactly and score the model-served answer.

        Grouped answers are aligned **by group key** and the error of each
        group is attributed to the model that served it (one lying model in
        a multi-model answer must not accumulate evidence against healthy
        co-serving models); everything else is compared positionally, the
        same metric the differential harness gates on.  Models whose
        accumulated evidence violates the quality policy are demoted.
        """
        if self.faults is not None:
            self.faults.hit("planner.verify")
        exact = self.database.sql(sql)
        if answer.group_values:
            per_model = self._grouped_errors(answer, exact.table)
        else:
            per_model = self._positional_errors(answer, exact.table)
        if per_model is None:
            return FeedbackResult(observed_relative_error=None)
        observed = max(per_model.values(), default=None)
        result = FeedbackResult(observed_relative_error=observed)
        for model_id, model_error in per_model.items():
            window = self.store.record_observed_error(model_id, model_error)
            result.recorded_model_ids.append(model_id)
            model = self.store.get(model_id)
            if model.status in ("retired", "superseded"):
                continue
            if model.metadata.get("planner_demoted"):
                continue  # already queued for a maintenance refit
            if self.quality_policy.flags_observed_errors(window):
                self.store.demote(
                    model_id,
                    reason=(
                        f"median observed relative error of {len(window)} sampled "
                        f"answer(s) exceeds "
                        f"{self.quality_policy.max_observed_relative_error:g}"
                    ),
                )
                result.demoted_model_ids.append(model_id)
        return result

    def _positional_errors(self, answer: ApproximateAnswer, exact) -> "dict[int, float] | None":
        """Whole-answer error charged to every serving model (non-grouped).

        Only comparable shapes are scored: a multi-row answer whose row
        count differs from exact (e.g. a virtual table enumerating domain
        points instead of raw rows) yields no evidence rather than noise.
        """
        approx_table = answer.table
        if approx_table.num_rows != exact.num_rows:
            return None
        if approx_table.num_rows > 1:
            # Canonical row order on both sides: without an ORDER BY the two
            # engines are free to emit rows in different orders, and a pure
            # ordering difference must not read as model error.
            try:
                approx_table = approx_table.sort_by(
                    [(name, True) for name in approx_table.schema.names]
                )
                exact = exact.sort_by([(name, True) for name in exact.schema.names])
            except Exception:
                return None
        errors = _relative_errors(approx_table, exact)
        if not errors:
            return None
        observed = max(errors.values())
        return {model_id: observed for model_id in answer.used_model_ids}

    def _grouped_errors(self, answer: ApproximateAnswer, exact) -> "dict[int, float] | None":
        """Per-model mean relative error over the groups each model served.

        Rows are matched by group key (``group_values``/``group_routes``
        carry the model-served groups and their provenance), so result
        ordering differences and exact fill-in rows cannot misalign the
        comparison.
        """
        agg_columns = set(answer.column_errors)
        key_columns = [
            name for name in answer.table.schema.names if name not in agg_columns
        ]
        positions = {name: i for i, name in enumerate(exact.schema.names)}
        if any(name not in positions for name in key_columns):
            return None
        exact_by_key = {}
        for row in exact.to_rows():
            key = tuple(row[positions[name]] for name in key_columns)
            exact_by_key[key] = {
                name: row[positions[name]] for name in agg_columns if name in positions
            }
        samples: dict[int, list[float]] = {}
        for key, values in answer.group_values.items():
            exact_values = exact_by_key.get(key)
            if exact_values is None:
                continue
            match = re.match(r"model#(\d+)", answer.group_routes.get(key, ""))
            if match is None:
                continue
            model_id = int(match.group(1))
            for column, approx_value in values.items():
                exact_value = exact_values.get(column)
                try:
                    approx_f, exact_f = float(approx_value), float(exact_value)
                except (TypeError, ValueError):
                    continue
                if not (math.isfinite(approx_f) and math.isfinite(exact_f)):
                    continue
                denominator = abs(exact_f) if abs(exact_f) > 1e-12 else 1.0
                samples.setdefault(model_id, []).append(
                    abs(approx_f - exact_f) / denominator
                )
        if not samples:
            return None
        return {
            model_id: sum(values) / len(values) for model_id, values in samples.items()
        }
