"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing unrelated
bugs.  Sub-hierarchies mirror the package layout: database errors, SQL
errors, fitting errors and model-harvesting errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Database substrate
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for errors raised by the relational engine."""


class CatalogError(DatabaseError):
    """A table, column or other catalog object is missing or duplicated."""


class SchemaError(DatabaseError):
    """A schema definition is inconsistent (bad type, duplicate column, ...)."""


class TypeMismatchError(DatabaseError):
    """A value does not match the declared column type."""


class ExecutionError(DatabaseError):
    """Runtime failure while executing a query plan."""


# ---------------------------------------------------------------------------
# SQL front-end
# ---------------------------------------------------------------------------


class SQLError(DatabaseError):
    """Base class for SQL front-end failures."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class SQLPlanningError(SQLError):
    """The parsed statement cannot be turned into an executable plan."""


class UnsupportedSQLError(SQLError):
    """The statement uses a SQL feature outside the supported subset."""


# ---------------------------------------------------------------------------
# Model fitting
# ---------------------------------------------------------------------------


class FittingError(ReproError):
    """Base class for model-fitting failures."""


class ConvergenceError(FittingError):
    """An iterative optimiser did not converge within its iteration budget."""

    def __init__(self, message: str, iterations: int | None = None) -> None:
        self.iterations = iterations
        super().__init__(message)


class InsufficientDataError(FittingError):
    """Fewer observations than free parameters (or empty input)."""


class FormulaError(FittingError):
    """A model formula string could not be parsed."""


# ---------------------------------------------------------------------------
# Model harvesting / approximate query answering
# ---------------------------------------------------------------------------


class HarvestError(ReproError):
    """Base class for model-capture failures."""


class ModelNotFoundError(HarvestError):
    """No captured model covers the requested table/columns/predicate."""


class ModelQualityError(HarvestError):
    """A captured model does not meet the configured quality gate."""


class ApproximationError(ReproError):
    """An approximate query could not be answered from captured models."""


class EnumerationError(ApproximationError):
    """A required input column is not enumerable, so tuples cannot be regenerated."""


class CompressionError(ReproError):
    """Model-based compression or decompression failed."""


# ---------------------------------------------------------------------------
# Streaming ingestion / online maintenance
# ---------------------------------------------------------------------------


class StreamingError(ReproError):
    """Base class for streaming-ingestion and model-maintenance failures."""


class DriftMonitorError(StreamingError):
    """A drift monitor could not be created or fed (e.g. no servable model)."""


# ---------------------------------------------------------------------------
# Durable storage / model warehouse
# ---------------------------------------------------------------------------


class PersistenceError(ReproError):
    """Base class for durable-storage failures (snapshots, WAL, warehouse)."""


class FormatVersionError(PersistenceError):
    """An on-disk artefact was written by a newer, incompatible format."""


class ArchiveError(PersistenceError):
    """The model-only archive tier could not archive or recall segments."""


class StorageIOError(PersistenceError):
    """An OS-level IO failure against a durable artefact.

    Wraps the bare :class:`OSError` raised by the filesystem so that callers
    above the persist layer only ever see typed ``repro`` exceptions.  The
    failing artefact path is carried both in the message and as ``path``.
    """

    def __init__(self, message: str, *, path: str | None = None, errno_code: int | None = None) -> None:
        self.path = path
        self.errno_code = errno_code
        super().__init__(message)


class SnapshotReadError(StorageIOError):
    """A snapshot segment could not be read back (missing, torn or corrupt)."""


class SnapshotWriteError(StorageIOError):
    """A snapshot segment could not be written durably."""


class WALError(StorageIOError):
    """The write-ahead log could not be appended to, reset or replayed."""


class ManifestError(PersistenceError):
    """The checkpoint manifest is unreadable or structurally invalid.

    The manifest is the recovery pivot: without it the store cannot know
    which checkpoint is current, so this error is deliberately fail-stop
    rather than quarantined (quarantining the manifest would present the
    whole database as empty).
    """

    def __init__(self, message: str, *, path: str | None = None) -> None:
        self.path = path
        super().__init__(message)


class WarehouseError(PersistenceError):
    """The model warehouse JSON is unreadable or an entry cannot be decoded."""

    def __init__(self, message: str, *, path: str | None = None) -> None:
        self.path = path
        super().__init__(message)


# ---------------------------------------------------------------------------
# Resilience runtime (fault injection, retry, quarantine, degradation)
# ---------------------------------------------------------------------------


class ResilienceError(ReproError):
    """Base class for resilience-runtime failures."""


class InjectedFault(ResilienceError):
    """An exception storm raised by the fault injector at a named fault point.

    Only ever raised when a :class:`~repro.resilience.FaultInjector` is
    explicitly armed; production code treats it like any other component
    failure (retry, quarantine or degrade).
    """

    def __init__(self, message: str, *, point: str = "", hit: int = 0) -> None:
        self.point = point
        self.hit = hit
        super().__init__(message)


class CircuitOpenError(ResilienceError):
    """An operation was rejected because its circuit breaker is open."""

    def __init__(self, message: str, *, component: str = "") -> None:
        self.component = component
        super().__init__(message)


class DegradedServiceError(ResilienceError):
    """A query needs an artefact that is quarantined or failed.

    Raised by the planner when no surviving model can honestly answer a
    query whose exact route depends on a failed component.  ``component``
    names the failed component and ``reason`` carries the quarantine
    reason recorded when it was moved aside.
    """

    def __init__(self, message: str, *, component: str = "", reason: str = "") -> None:
        self.component = component
        self.reason = reason
        super().__init__(message)
