"""Synthetic dataset generators.

* :mod:`repro.datasets.lofar` — the paper's LOFAR Transients workload
  (power-law radio sources, four frequency bands, interference noise).
* :mod:`repro.datasets.tpcds_lite` — the TPC-DS-style star schema the paper
  proposes for evaluation, with planted regularities.
* :mod:`repro.datasets.sensors` — MauveDB-style sensor-network readings.
* :mod:`repro.datasets.timeseries` — simple single-law series for tests and
  ablations.
"""

from repro.datasets import lofar, sensors, timeseries, tpcds_lite

__all__ = ["lofar", "sensors", "timeseries", "tpcds_lite"]
