"""Generic time-series generators used by tests and ablation benchmarks.

These produce single-column laws (linear trend, exponential decay, power
law, seasonal) with controlled noise so tests can assert parameter recovery
exactly, and so the quality-gate ablation can sweep the signal-to-noise
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType

__all__ = ["SeriesSpec", "generate_series", "series_table", "LAW_GENERATORS"]


@dataclass(frozen=True)
class SeriesSpec:
    """Specification of one synthetic series."""

    law: str
    params: tuple[float, ...]
    n_points: int = 500
    x_min: float = 0.0
    x_max: float = 10.0
    noise_std: float = 0.1
    seed: int = 0


def _linear(x: np.ndarray, params: tuple[float, ...]) -> np.ndarray:
    intercept, slope = params
    return intercept + slope * x


def _quadratic(x: np.ndarray, params: tuple[float, ...]) -> np.ndarray:
    c0, c1, c2 = params
    return c0 + c1 * x + c2 * x**2


def _exponential(x: np.ndarray, params: tuple[float, ...]) -> np.ndarray:
    a, b = params
    return a * np.exp(b * x)


def _powerlaw(x: np.ndarray, params: tuple[float, ...]) -> np.ndarray:
    p, alpha = params
    return p * np.power(np.maximum(x, 1e-9), alpha)


def _seasonal(x: np.ndarray, params: tuple[float, ...]) -> np.ndarray:
    amplitude, period, offset = params
    return offset + amplitude * np.sin(2.0 * np.pi * x / period)


LAW_GENERATORS = {
    "linear": _linear,
    "quadratic": _quadratic,
    "exponential": _exponential,
    "powerlaw": _powerlaw,
    "seasonal": _seasonal,
}


def generate_series(spec: SeriesSpec) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(x, y)`` arrays for the given specification."""
    if spec.law not in LAW_GENERATORS:
        raise ValueError(f"unknown law {spec.law!r}; known: {sorted(LAW_GENERATORS)}")
    rng = np.random.default_rng(spec.seed)
    x = np.sort(rng.uniform(spec.x_min, spec.x_max, spec.n_points))
    clean = LAW_GENERATORS[spec.law](x, spec.params)
    noise = rng.normal(0.0, spec.noise_std, spec.n_points)
    return x, clean + noise


def series_table(spec: SeriesSpec, name: str = "series", x_name: str = "x", y_name: str = "y") -> Table:
    """Generate a series and wrap it in a two-column table."""
    x, y = generate_series(spec)
    schema = Schema([ColumnDef(x_name, DataType.FLOAT64), ColumnDef(y_name, DataType.FLOAT64)])
    return Table.from_numpy(name, schema, {x_name: x, y_name: y})
