"""Synthetic LOFAR Transients dataset.

The paper's running example is a sample of the LOFAR Transients Key Science
project: 1,452,824 flux measurements of 35,692 radio sources, three columns
(source identifier, observation frequency, observed intensity), observations
taken at four frequency bands, and per-source behaviour following the
power law ``I = p * nu**alpha`` with heavy interference noise.  The real
sample is proprietary, so this generator reproduces its *statistical
structure*:

* each source gets a ground-truth spectral index ``alpha`` (centred on the
  thermal-emission value of about -0.7 that the paper reports for its
  example source) and proportionality constant ``p``;
* observations are spread over the four frequency bands
  {0.12, 0.15, 0.16, 0.18} GHz with small within-band jitter, matching
  Figure 1's band structure;
* multiplicative log-normal noise models interference;
* a configurable fraction of sources is *anomalous* — flat spectra,
  spectral turn-overs, or pure noise — because §4.2 argues that exactly
  those sources are found through poor model fit.

The generator also returns the ground truth (per-source parameters and
anomaly labels) so experiments can score recovered parameters and anomaly
detection.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType

__all__ = [
    "LofarConfig",
    "LofarDataset",
    "SourceTruth",
    "generate",
    "paper_scale_config",
    "scaled_config",
    "PAPER_NUM_SOURCES",
    "PAPER_NUM_MEASUREMENTS",
    "DEFAULT_FREQUENCY_BANDS",
]

#: Scale reported in §2 of the paper.
PAPER_NUM_SOURCES = 35_692
PAPER_NUM_MEASUREMENTS = 1_452_824

#: The four frequency bands (GHz) the paper says the telescope observes at.
DEFAULT_FREQUENCY_BANDS = (0.12, 0.15, 0.16, 0.18)

#: Anomaly kinds injected by the generator.
ANOMALY_NONE = "none"
ANOMALY_FLAT = "flat"
ANOMALY_TURNOVER = "turnover"
ANOMALY_NOISE = "noise"


@dataclass(frozen=True)
class LofarConfig:
    """Configuration of the synthetic LOFAR generator."""

    num_sources: int = 1000
    observations_per_source: int = 41  # paper: about 40.7 on average
    frequency_bands: tuple[float, ...] = DEFAULT_FREQUENCY_BANDS
    frequency_jitter: float = 0.0  # within-band spread, GHz (0 keeps ν enumerable, as in §4.2)
    alpha_mean: float = -0.75
    alpha_std: float = 0.15
    log_p_mean: float = -2.5  # p is log-normal around exp(-2.5) ~ 0.08
    log_p_std: float = 0.8
    noise_std: float = 0.04  # multiplicative log-normal interference noise
    anomaly_fraction: float = 0.02
    missing_fraction: float = 0.001  # NULL intensities (dropped packets)
    seed: int = 20150104  # CIDR'15 conference start date


@dataclass(frozen=True)
class SourceTruth:
    """Ground-truth generating parameters for one source."""

    source_id: int
    p: float
    alpha: float
    anomaly: str

    @property
    def is_anomalous(self) -> bool:
        return self.anomaly != ANOMALY_NONE


@dataclass
class LofarDataset:
    """The generated measurements plus ground truth."""

    config: LofarConfig
    source_ids: np.ndarray
    frequencies: np.ndarray
    intensities: np.ndarray
    truths: dict[int, SourceTruth] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return len(self.source_ids)

    @property
    def num_sources(self) -> int:
        return len(self.truths)

    def schema(self) -> Schema:
        return Schema(
            [
                ColumnDef("source", DataType.INT64),
                ColumnDef("frequency", DataType.FLOAT64),
                ColumnDef("intensity", DataType.FLOAT64),
            ]
        )

    def to_table(self, name: str = "measurements") -> Table:
        """Materialise the measurements as a relational table."""
        return Table.from_numpy(
            name,
            self.schema(),
            {
                "source": self.source_ids,
                "frequency": self.frequencies,
                "intensity": self.intensities,
            },
        )

    def anomalous_sources(self) -> set[int]:
        return {sid for sid, truth in self.truths.items() if truth.is_anomalous}

    def truth_for(self, source_id: int) -> SourceTruth:
        return self.truths[source_id]

    def byte_size(self) -> int:
        """Nominal raw size of the measurement table."""
        return self.to_table().byte_size()


def paper_scale_config(**overrides) -> LofarConfig:
    """A configuration matching the paper's dataset scale (1.45M rows)."""
    params = dict(
        num_sources=PAPER_NUM_SOURCES,
        observations_per_source=int(round(PAPER_NUM_MEASUREMENTS / PAPER_NUM_SOURCES)),
    )
    params.update(overrides)
    return LofarConfig(**params)


def scaled_config(scale: float | None = None, **overrides) -> LofarConfig:
    """A configuration scaled down from paper size by ``scale`` (0 < scale <= 1).

    When ``scale`` is None it is read from the ``REPRO_SCALE`` environment
    variable (default 0.02), which is how the benchmark suite stays fast on
    laptops while remaining runnable at full paper scale.
    """
    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "0.02"))
    scale = min(max(scale, 1e-4), 1.0)
    params = dict(
        num_sources=max(int(PAPER_NUM_SOURCES * scale), 10),
        observations_per_source=int(round(PAPER_NUM_MEASUREMENTS / PAPER_NUM_SOURCES)),
    )
    params.update(overrides)
    return LofarConfig(**params)


def generate(
    num_sources: int | None = None,
    observations_per_source: int | None = None,
    seed: int | None = None,
    config: LofarConfig | None = None,
    **overrides,
) -> LofarDataset:
    """Generate a synthetic LOFAR dataset.

    Either pass a full :class:`LofarConfig` via ``config`` or override the
    common knobs directly (``num_sources``, ``observations_per_source``,
    ``seed``, plus any other config field as a keyword).
    """
    if config is None:
        params = dict(overrides)
        if num_sources is not None:
            params["num_sources"] = num_sources
        if observations_per_source is not None:
            params["observations_per_source"] = observations_per_source
        if seed is not None:
            params["seed"] = seed
        config = LofarConfig(**params)

    rng = np.random.default_rng(config.seed)

    # Per-source ground truth.
    alphas = rng.normal(config.alpha_mean, config.alpha_std, config.num_sources)
    ps = np.exp(rng.normal(config.log_p_mean, config.log_p_std, config.num_sources))
    anomaly_kinds = _assign_anomalies(rng, config)

    truths: dict[int, SourceTruth] = {}
    all_sources: list[np.ndarray] = []
    all_frequencies: list[np.ndarray] = []
    all_intensities: list[np.ndarray] = []

    bands = np.asarray(config.frequency_bands, dtype=np.float64)
    for source_id in range(1, config.num_sources + 1):
        index = source_id - 1
        kind = anomaly_kinds[index]
        p, alpha = float(ps[index]), float(alphas[index])
        truths[source_id] = SourceTruth(source_id=source_id, p=p, alpha=alpha, anomaly=kind)

        n_obs = config.observations_per_source
        band_choice = rng.integers(0, len(bands), n_obs)
        frequencies = bands[band_choice].copy()
        if config.frequency_jitter > 0:
            frequencies = frequencies + rng.normal(0.0, config.frequency_jitter, n_obs)
            frequencies = np.clip(frequencies, 0.05, 0.30)

        intensities = _intensity_for(kind, p, alpha, frequencies, rng, config)

        all_sources.append(np.full(n_obs, source_id, dtype=np.int64))
        all_frequencies.append(frequencies)
        all_intensities.append(intensities)

    source_ids = np.concatenate(all_sources)
    frequencies = np.concatenate(all_frequencies)
    intensities = np.concatenate(all_intensities)

    # Inject a small fraction of NULL (NaN) intensities: dropped packets.
    if config.missing_fraction > 0:
        missing = rng.random(len(intensities)) < config.missing_fraction
        intensities = intensities.copy()
        intensities[missing] = np.nan

    return LofarDataset(
        config=config,
        source_ids=source_ids,
        frequencies=frequencies,
        intensities=intensities,
        truths=truths,
    )


def _assign_anomalies(rng: np.random.Generator, config: LofarConfig) -> list[str]:
    kinds = [ANOMALY_NONE] * config.num_sources
    num_anomalous = int(round(config.anomaly_fraction * config.num_sources))
    if num_anomalous == 0:
        return kinds
    anomalous_indices = rng.choice(config.num_sources, size=num_anomalous, replace=False)
    choices = (ANOMALY_FLAT, ANOMALY_TURNOVER, ANOMALY_NOISE)
    for index in anomalous_indices:
        kinds[int(index)] = choices[int(rng.integers(0, len(choices)))]
    return kinds


def _intensity_for(
    kind: str,
    p: float,
    alpha: float,
    frequencies: np.ndarray,
    rng: np.random.Generator,
    config: LofarConfig,
) -> np.ndarray:
    noise = np.exp(rng.normal(0.0, config.noise_std, len(frequencies)))
    if kind == ANOMALY_NONE:
        return p * frequencies**alpha * noise
    if kind == ANOMALY_FLAT:
        # Intensity unrelated to frequency: a constant with ordinary noise.
        level = p * float(np.mean(np.asarray(config.frequency_bands))) ** alpha
        return np.full(len(frequencies), level) * noise
    if kind == ANOMALY_TURNOVER:
        # Spectral turn-over: power law with a quadratic term in log-space.
        log_nu = np.log(frequencies)
        curvature = rng.uniform(8.0, 15.0)
        log_intensity = np.log(p) + alpha * log_nu - curvature * (log_nu - np.log(0.15)) ** 2
        return np.exp(log_intensity) * noise
    # ANOMALY_NOISE: intensity is pure interference, unrelated to the model.
    level = p * float(np.mean(np.asarray(config.frequency_bands))) ** alpha
    return np.abs(rng.normal(level, level * 0.8, len(frequencies))) + 1e-6


def frequencies_grid(config: LofarConfig | None = None) -> Iterable[float]:
    """The enumerable domain of the frequency column (band centres)."""
    bands = (config or LofarConfig()).frequency_bands
    return tuple(float(b) for b in bands)
