"""Sensor-network time series generator.

MauveDB — the closest related system the paper discusses — was motivated by
distributed sensor networks whose raw readings are noisy and irregular but
follow smooth physical laws.  This generator produces that workload: a set
of temperature/humidity sensors sampling a smooth daily curve with
per-sensor offsets, dropouts and noise.  It exercises the grouped-model,
gridded-view (MauveDB baseline) and semantic-compression code paths on a
second domain besides radio astronomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType

__all__ = ["SensorConfig", "SensorDataset", "generate"]


@dataclass(frozen=True)
class SensorConfig:
    """Configuration of the synthetic sensor network."""

    num_sensors: int = 20
    num_hours: int = 24 * 14  # two weeks of hourly readings
    base_temperature: float = 18.0
    daily_amplitude: float = 6.0
    sensor_offset_std: float = 2.0
    noise_std: float = 0.4
    dropout_fraction: float = 0.02
    seed: int = 42


@dataclass
class SensorDataset:
    """Generated readings plus per-sensor ground truth."""

    config: SensorConfig
    sensor_ids: np.ndarray
    timestamps: np.ndarray  # hours since epoch start
    temperatures: np.ndarray
    #: sensor_id -> (offset, amplitude) ground truth
    truths: dict[int, tuple[float, float]] = field(default_factory=dict)

    def schema(self) -> Schema:
        return Schema(
            [
                ColumnDef("sensor", DataType.INT64),
                ColumnDef("hour", DataType.FLOAT64),
                ColumnDef("temperature", DataType.FLOAT64),
            ]
        )

    def to_table(self, name: str = "sensor_readings") -> Table:
        return Table.from_numpy(
            name,
            self.schema(),
            {"sensor": self.sensor_ids, "hour": self.timestamps, "temperature": self.temperatures},
        )


def generate(config: SensorConfig | None = None, **overrides) -> SensorDataset:
    """Generate the synthetic sensor readings."""
    if config is None:
        config = SensorConfig(**overrides)
    rng = np.random.default_rng(config.seed)

    offsets = rng.normal(0.0, config.sensor_offset_std, config.num_sensors)
    amplitudes = config.daily_amplitude * rng.uniform(0.8, 1.2, config.num_sensors)

    sensor_chunks = []
    hour_chunks = []
    temperature_chunks = []
    truths: dict[int, tuple[float, float]] = {}

    hours = np.arange(config.num_hours, dtype=np.float64)
    for sensor_index in range(config.num_sensors):
        sensor_id = sensor_index + 1
        offset = float(offsets[sensor_index])
        amplitude = float(amplitudes[sensor_index])
        truths[sensor_id] = (offset, amplitude)

        # Daily sinusoid peaking mid-afternoon (hour 15 of each day).
        curve = (
            config.base_temperature
            + offset
            + amplitude * np.sin(2.0 * np.pi * (hours - 9.0) / 24.0)
        )
        noisy = curve + rng.normal(0.0, config.noise_std, config.num_hours)

        keep = rng.random(config.num_hours) >= config.dropout_fraction
        sensor_chunks.append(np.full(keep.sum(), sensor_id, dtype=np.int64))
        hour_chunks.append(hours[keep])
        temperature_chunks.append(noisy[keep])

    return SensorDataset(
        config=config,
        sensor_ids=np.concatenate(sensor_chunks),
        timestamps=np.concatenate(hour_chunks),
        temperatures=np.concatenate(temperature_chunks),
        truths=truths,
    )
