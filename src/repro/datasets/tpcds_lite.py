"""TPC-DS-lite: a small star-schema generator with plantable regularities.

§6 of the paper proposes evaluating a model-harvesting prototype on "the
considerable regularity in the generated datasets for popular database
benchmarks such as TPC-DS", using "the complex benchmark queries ... as
tasks for approximate query answering".  The real TPC-DS toolkit is not
redistributable, so this module generates a *scaled-down star schema in its
spirit*: a large fact table whose measure columns follow known laws of the
dimension attributes, plus small dimension tables.

Schema
------
``store_sales`` (fact): ``sale_id, item_id, store_id, date_id, quantity,
wholesale_cost, list_price, sales_price, net_profit``
``item`` (dimension): ``item_id, category_id, base_cost``
``store`` (dimension): ``store_id, region_id, size_factor``
``date_dim`` (dimension): ``date_id, day_of_year, month, year``

Planted regularities (the "laws" a harvester should be able to capture):

* ``list_price ≈ markup_cat * wholesale_cost`` — linear per item category;
* ``sales_price ≈ discount * list_price`` — linear, global;
* per-store daily revenue follows a seasonal (sinusoidal) curve over
  ``day_of_year`` scaled by the store's ``size_factor``;
* ``net_profit ≈ sales_price - wholesale_cost`` (up to noise) — an exact
  linear law queries can exploit analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.db.database import Database
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType

__all__ = ["TpcdsLiteConfig", "TpcdsLiteDataset", "generate", "load_into"]


@dataclass(frozen=True)
class TpcdsLiteConfig:
    """Scale and noise knobs for the generator."""

    num_items: int = 200
    num_stores: int = 20
    num_days: int = 365
    num_categories: int = 8
    num_regions: int = 4
    sales_per_day_per_store: int = 12
    price_noise: float = 0.03
    profit_noise: float = 0.02
    seed: int = 7


@dataclass
class TpcdsLiteDataset:
    """Generated tables plus the planted ground-truth coefficients."""

    config: TpcdsLiteConfig
    store_sales: Table
    item: Table
    store: Table
    date_dim: Table
    #: category_id -> true markup used for list_price = markup * wholesale_cost
    category_markup: dict[int, float]
    #: global discount factor: sales_price = discount * list_price
    discount: float

    def tables(self) -> list[Table]:
        return [self.store_sales, self.item, self.store, self.date_dim]

    def byte_size(self) -> int:
        return sum(table.byte_size() for table in self.tables())


def generate(config: TpcdsLiteConfig | None = None, **overrides) -> TpcdsLiteDataset:
    """Generate a TPC-DS-lite dataset."""
    if config is None:
        config = TpcdsLiteConfig(**overrides)
    rng = np.random.default_rng(config.seed)

    # --- dimensions ----------------------------------------------------------
    item_ids = np.arange(1, config.num_items + 1, dtype=np.int64)
    category_ids = rng.integers(1, config.num_categories + 1, config.num_items)
    base_costs = np.round(rng.uniform(2.0, 80.0, config.num_items), 2)
    item = Table.from_numpy(
        "item",
        Schema(
            [
                ColumnDef("item_id", DataType.INT64),
                ColumnDef("category_id", DataType.INT64),
                ColumnDef("base_cost", DataType.FLOAT64),
            ]
        ),
        {"item_id": item_ids, "category_id": category_ids, "base_cost": base_costs},
    )

    store_ids = np.arange(1, config.num_stores + 1, dtype=np.int64)
    region_ids = rng.integers(1, config.num_regions + 1, config.num_stores)
    size_factors = np.round(rng.uniform(0.5, 2.5, config.num_stores), 3)
    store = Table.from_numpy(
        "store",
        Schema(
            [
                ColumnDef("store_id", DataType.INT64),
                ColumnDef("region_id", DataType.INT64),
                ColumnDef("size_factor", DataType.FLOAT64),
            ]
        ),
        {"store_id": store_ids, "region_id": region_ids, "size_factor": size_factors},
    )

    date_ids = np.arange(1, config.num_days + 1, dtype=np.int64)
    day_of_year = ((date_ids - 1) % 365) + 1
    month = ((day_of_year - 1) // 30) + 1
    year = 2014 + (date_ids - 1) // 365
    date_dim = Table.from_numpy(
        "date_dim",
        Schema(
            [
                ColumnDef("date_id", DataType.INT64),
                ColumnDef("day_of_year", DataType.INT64),
                ColumnDef("month", DataType.INT64),
                ColumnDef("year", DataType.INT64),
            ]
        ),
        {"date_id": date_ids, "day_of_year": day_of_year, "month": np.minimum(month, 12), "year": year},
    )

    # --- planted laws ----------------------------------------------------------
    category_markup = {
        int(cat): float(np.round(rng.uniform(1.3, 2.2), 3)) for cat in range(1, config.num_categories + 1)
    }
    discount = float(np.round(rng.uniform(0.85, 0.95), 3))

    # --- fact table ------------------------------------------------------------
    rows_per_day = config.sales_per_day_per_store * config.num_stores
    total_rows = rows_per_day * config.num_days

    sale_id = np.arange(1, total_rows + 1, dtype=np.int64)
    fact_date = np.repeat(date_ids, rows_per_day)
    fact_store = np.tile(np.repeat(store_ids, config.sales_per_day_per_store), config.num_days)
    fact_item = rng.integers(1, config.num_items + 1, total_rows)

    item_cost = base_costs[fact_item - 1]
    item_category = category_ids[fact_item - 1]
    markup = np.array([category_markup[int(c)] for c in item_category])
    store_size = size_factors[fact_store - 1]
    day = day_of_year[fact_date - 1].astype(np.float64)

    # Seasonal demand drives quantity: peak around day ~350 (holidays).
    seasonal = 1.0 + 0.5 * np.sin(2.0 * np.pi * (day - 260.0) / 365.0)
    quantity = np.maximum(1, rng.poisson(2.0 * store_size * seasonal)).astype(np.int64)

    wholesale_cost = np.round(item_cost * (1.0 + rng.normal(0.0, 0.01, total_rows)), 2)
    list_price = np.round(markup * wholesale_cost * (1.0 + rng.normal(0.0, config.price_noise, total_rows)), 2)
    sales_price = np.round(discount * list_price * (1.0 + rng.normal(0.0, config.price_noise, total_rows)), 2)
    net_profit = np.round(
        (sales_price - wholesale_cost) * quantity * (1.0 + rng.normal(0.0, config.profit_noise, total_rows)), 2
    )

    store_sales = Table.from_numpy(
        "store_sales",
        Schema(
            [
                ColumnDef("sale_id", DataType.INT64),
                ColumnDef("item_id", DataType.INT64),
                ColumnDef("store_id", DataType.INT64),
                ColumnDef("date_id", DataType.INT64),
                ColumnDef("quantity", DataType.INT64),
                ColumnDef("wholesale_cost", DataType.FLOAT64),
                ColumnDef("list_price", DataType.FLOAT64),
                ColumnDef("sales_price", DataType.FLOAT64),
                ColumnDef("net_profit", DataType.FLOAT64),
            ]
        ),
        {
            "sale_id": sale_id,
            "item_id": fact_item,
            "store_id": fact_store,
            "date_id": fact_date,
            "quantity": quantity,
            "wholesale_cost": wholesale_cost,
            "list_price": list_price,
            "sales_price": sales_price,
            "net_profit": net_profit,
        },
    )

    return TpcdsLiteDataset(
        config=config,
        store_sales=store_sales,
        item=item,
        store=store,
        date_dim=date_dim,
        category_markup=category_markup,
        discount=discount,
    )


def load_into(database: Database, dataset: TpcdsLiteDataset | None = None, **overrides) -> TpcdsLiteDataset:
    """Generate (if needed) and register all TPC-DS-lite tables in a database."""
    if dataset is None:
        dataset = generate(**overrides)
    for table in dataset.tables():
        database.register_table(table, replace=True)
    return dataset


#: A handful of benchmark-style aggregate queries over the star schema,
#: used both by the examples and by the TPC-DS approximate-query benchmark.
BENCHMARK_QUERIES: Sequence[tuple[str, str]] = (
    (
        "q1_total_revenue",
        "SELECT sum(sales_price) AS total_revenue FROM store_sales",
    ),
    (
        "q2_avg_profit_per_store",
        "SELECT store_id, avg(net_profit) AS avg_profit FROM store_sales GROUP BY store_id ORDER BY store_id",
    ),
    (
        "q3_monthly_revenue",
        "SELECT d.month AS month, sum(s.sales_price) AS revenue "
        "FROM store_sales s JOIN date_dim d ON s.date_id = d.date_id "
        "GROUP BY d.month ORDER BY month",
    ),
    (
        "q4_high_value_sales",
        "SELECT count(*) AS n FROM store_sales WHERE sales_price > 100.0",
    ),
    (
        "q5_avg_list_price",
        "SELECT avg(list_price) AS avg_list FROM store_sales WHERE wholesale_cost BETWEEN 20.0 AND 60.0",
    ),
)
