"""The resilience runtime bundle wired into :class:`~repro.core.system.LawsDatabase`.

One object carries everything the production layers share: the (optional)
fault injector, the retrier, the health registry and the named circuit
breakers.  The quarantine manager lives on the durable store (it is rooted
at the store directory) and registers itself here so operator reports have
one place to look.
"""

from __future__ import annotations

import time
from typing import Callable

from .faults import FaultInjector
from .health import CircuitBreaker, HealthRegistry
from .retry import Retrier, RetryPolicy

__all__ = ["ResilienceRuntime"]


class ResilienceRuntime:
    """Shared resilience state: faults (opt-in), retry, health, breakers."""

    def __init__(
        self,
        *,
        faults: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] | None = None,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_seconds: float = 60.0,
    ) -> None:
        self.faults = faults
        self.clock = clock
        # Under an armed injector default to a no-op sleep so chaos schedules
        # with latency faults and retry backoff stay fast; production (no
        # injector) sleeps for real.
        if sleep is None:
            sleep = (lambda _s: None) if faults is not None else time.sleep
        self.sleep = sleep
        self.retrier = Retrier(retry_policy or RetryPolicy(), sleep=sleep, clock=clock)
        self.health = HealthRegistry()
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        self._breakers: dict[str, CircuitBreaker] = {}
        self.quarantine = None  # set by DurableStore.attach_resilience
        self.journal = None
        self.metrics = None

    def breaker(
        self,
        name: str,
        *,
        failure_threshold: int | None = None,
        cooldown_seconds: float | None = None,
    ) -> CircuitBreaker:
        """Get-or-create the named circuit breaker."""
        existing = self._breakers.get(name)
        if existing is not None:
            return existing
        breaker = CircuitBreaker(
            name,
            failure_threshold=failure_threshold or self.breaker_failure_threshold,
            cooldown_seconds=(
                cooldown_seconds if cooldown_seconds is not None else self.breaker_cooldown_seconds
            ),
            clock=self.clock,
            health=self.health,
            journal=self.journal,
        )
        return self._breakers.setdefault(name, breaker)

    def attach_observability(self, journal: object, metrics: object) -> None:
        """Wire the event journal and metrics registry through every member."""
        self.journal = journal
        self.metrics = metrics
        self.health.journal = journal
        self.retrier.journal = journal
        for breaker in self._breakers.values():
            breaker.journal = journal
        if self.quarantine is not None:
            self.quarantine.journal = journal
            self.quarantine.metrics = metrics

    def report(self) -> dict:
        """Operator-facing health + breaker + quarantine summary."""
        return {
            "health": self.health.report(),
            "breakers": {
                name: {"open": breaker.is_open}
                for name, breaker in sorted(self._breakers.items())
            },
            "quarantine": self.quarantine.report() if self.quarantine is not None else None,
            "faults_armed": self.faults is not None,
        }
