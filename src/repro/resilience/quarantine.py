"""Quarantine: move unreadable artefacts aside instead of failing ``open()``.

When recovery meets a corrupt warehouse entry, snapshot segment or WAL
frame, the :class:`QuarantineManager` moves the offending bytes into a
``quarantine/`` directory next to the store root, appends a record to a
JSON ledger, journals a ``quarantine`` event and bumps the
``quarantine_total{artefact}`` metric — and the rest of the store keeps
serving.

For batch artefacts (the warehouse restores dozens of model entries in
one go) :func:`minimal_failing_subset` isolates the *smallest* set of
entries that explains the failure by binary-search shrinking, in the
spirit of minimal-conflicting-set extraction (Ouangraoua & Raffinot):
only the genuinely bad entries are quarantined, every good entry is
restored.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["QuarantineRecord", "QuarantineManager", "minimal_failing_subset"]

LEDGER_NAME = "QUARANTINE.json"


def minimal_failing_subset(items: Sequence[T], probe: Callable[[Sequence[T]], None]) -> list[int]:
    """Indices of a minimal set of ``items`` responsible for ``probe`` failing.

    ``probe(batch)`` must raise when the batch contains a bad item and
    return normally otherwise.  The whole batch is probed first (fast path:
    no failure, no further probes), then failing ranges are bisected so a
    batch of *n* items with *k* bad entries costs O(k log n) probes instead
    of n.  Assumes item failures are independent (true for per-entry
    decoding); for each returned index the singleton ``[items[i]]`` fails.
    """
    bad: list[int] = []

    def shrink(lo: int, hi: int) -> None:
        try:
            probe(items[lo:hi])
        except Exception:
            if hi - lo == 1:
                bad.append(lo)
                return
            mid = (lo + hi) // 2
            shrink(lo, mid)
            shrink(mid, hi)

    if items:
        shrink(0, len(items))
    return bad


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined artefact: what, where it came from, why, where it went."""

    artefact: str
    source: str
    reason: str
    quarantined_path: str
    detail: str = ""
    timestamp: float = field(default_factory=time.time)


class QuarantineManager:
    """Moves unreadable artefacts under ``<root>/quarantine/`` and ledgers them."""

    def __init__(self, root: Path | str, *, journal: object | None = None, metrics: object | None = None) -> None:
        self.root = Path(root)
        self.directory = self.root / "quarantine"
        self.ledger_path = self.directory / LEDGER_NAME
        self.journal = journal
        self.metrics = metrics
        self._lock = threading.Lock()
        self._records: list[QuarantineRecord] = []
        if self.ledger_path.exists():
            try:
                payload = json.loads(self.ledger_path.read_text(encoding="utf-8"))
                self._records = [QuarantineRecord(**entry) for entry in payload.get("records", [])]
            except (ValueError, TypeError, OSError):
                # An unreadable ledger must not block open(); start fresh and
                # keep the old file aside for forensics.
                try:
                    self.ledger_path.rename(self.ledger_path.with_suffix(".corrupt"))
                except OSError:
                    pass
                self._records = []

    # -- quarantine operations ----------------------------------------------

    def quarantine_file(self, path: Path | str, *, artefact: str, reason: str, detail: str = "") -> QuarantineRecord:
        """Move a file out of the live tree into quarantine."""
        source = Path(path)
        destination = self._destination(source.name)
        try:
            source.rename(destination)
        except OSError:
            # Cross-device or permission trouble: fall back to copy+unlink,
            # and if even that fails, ledger the artefact in place.
            try:
                destination.write_bytes(source.read_bytes())
                source.unlink()
            except OSError:
                destination = source
        return self._admit(artefact, str(source), reason, str(destination), detail)

    def quarantine_bytes(self, data: bytes, *, name: str, artefact: str, reason: str, detail: str = "") -> QuarantineRecord:
        """Preserve loose bytes (a truncated WAL tail, a bad frame) in quarantine."""
        destination = self._destination(name)
        try:
            destination.write_bytes(data)
        except OSError:
            destination = Path("<unwritable>")
        return self._admit(artefact, name, reason, str(destination), detail)

    def quarantine_entry(self, entry: object, *, name: str, artefact: str, reason: str, detail: str = "") -> QuarantineRecord:
        """Preserve a JSON-serialisable entry (e.g. one warehouse model) in quarantine."""
        try:
            data = json.dumps(entry, indent=2, sort_keys=True, default=repr).encode("utf-8")
        except (TypeError, ValueError):
            data = repr(entry).encode("utf-8")
        return self.quarantine_bytes(data, name=name, artefact=artefact, reason=reason, detail=detail)

    # -- introspection ------------------------------------------------------

    def records(self, artefact: str | None = None) -> list[QuarantineRecord]:
        with self._lock:
            if artefact is None:
                return list(self._records)
            return [record for record in self._records if record.artefact == artefact]

    def report(self) -> dict:
        """Operator-facing summary of everything quarantined."""
        with self._lock:
            records = list(self._records)
        by_artefact: dict[str, int] = {}
        for record in records:
            by_artefact[record.artefact] = by_artefact.get(record.artefact, 0) + 1
        return {
            "directory": str(self.directory),
            "count": len(records),
            "by_artefact": by_artefact,
            "records": [asdict(record) for record in records],
        }

    # -- internals ----------------------------------------------------------

    def _destination(self, name: str) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        candidate = self.directory / name
        counter = 1
        while candidate.exists():
            candidate = self.directory / f"{name}.{counter}"
            counter += 1
        return candidate

    def _admit(self, artefact: str, source: str, reason: str, destination: str, detail: str) -> QuarantineRecord:
        record = QuarantineRecord(
            artefact=artefact,
            source=source,
            reason=reason,
            quarantined_path=destination,
            detail=detail,
        )
        with self._lock:
            self._records.append(record)
            self._flush_ledger_locked()
        if self.journal is not None:
            self.journal.record(
                "quarantine",
                artefact=artefact,
                source=source,
                reason=reason,
                quarantined_path=destination,
            )
        if self.metrics is not None:
            self.metrics.inc("quarantine_total", artefact=artefact)
        return record

    def _flush_ledger_locked(self) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {"records": [asdict(record) for record in self._records]}
            tmp = self.ledger_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
            tmp.replace(self.ledger_path)
        except OSError:
            # The ledger is best-effort bookkeeping; never let it turn a
            # successful quarantine into a failure.
            pass
