"""Retry with exponential backoff, jitter and a per-operation time budget.

The :class:`Retrier` is used by the persist layer for transient IO errors
(``EIO``, ``EAGAIN``, ``EINTR``, ``EBUSY``): the first attempt always runs
inline at the call site so the happy path pays nothing; the retry loop only
engages once an exception has already been raised.  ``ENOSPC`` and friends
are *not* transient — retrying a full disk is pointless — so they bypass
retry and surface as typed errors immediately.

Clock and sleep are injectable, which keeps the backoff tests instant and
lets the chaos suite run thousands of schedules without real sleeping.
"""

from __future__ import annotations

import errno as _errno
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")

__all__ = ["RetryPolicy", "Retrier", "TRANSIENT_ERRNOS"]

#: OS errors worth retrying: transient by nature, not a capacity problem.
TRANSIENT_ERRNOS: frozenset[int] = frozenset(
    {_errno.EIO, _errno.EAGAIN, _errno.EINTR, _errno.EBUSY}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape: ``base_delay * multiplier**n``, capped, jittered."""

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.25
    timeout_budget: float | None = 5.0

    def delays(self, rng: random.Random) -> Iterator[float]:
        """Backoff delays between attempts (``max_attempts - 1`` of them)."""
        delay = self.base_delay
        for _ in range(max(0, self.max_attempts - 1)):
            jittered = delay * (1.0 + self.jitter * rng.random()) if self.jitter else delay
            yield min(jittered, self.max_delay)
            delay = min(delay * self.multiplier, self.max_delay)


class Retrier:
    """Re-runs an already-failed operation under a :class:`RetryPolicy`.

    ``retry`` is called *after* the inline first attempt raised, with the
    original exception; it re-raises the last failure when attempts or the
    time budget run out, so call sites keep their normal error contracts
    (and wrap in typed errors as usual).
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        *,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        seed: int = 0,
        journal: object | None = None,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(seed)
        self.journal = journal

    @staticmethod
    def is_transient(exc: BaseException) -> bool:
        """True for OS errors that plausibly succeed on a second try."""
        return isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS

    def retry(
        self,
        fn: Callable[[], T],
        *,
        first_error: BaseException,
        operation: str = "",
        retryable: type[BaseException] | tuple[type[BaseException], ...] = OSError,
        retry_all: bool = False,
    ) -> T:
        """Keep re-running ``fn`` until success, exhaustion or budget overrun.

        ``retry_all=True`` retries every ``retryable`` error, not only the
        transient set — correct for *idempotent reads*, where a retry can
        never double-apply anything and even an "unretryable" errno (say
        ``ENOSPC`` reported by a flaky mount) says nothing about whether the
        bytes on disk are good.  Writes keep the default: retrying a full
        disk is pointless, and the caller's typed error should surface fast.
        """
        last = first_error
        start = self._clock()
        attempts = 1
        for delay in self.policy.delays(self._rng):
            budget = self.policy.timeout_budget
            if budget is not None and (self._clock() - start) + delay > budget:
                break
            self._sleep(delay)
            attempts += 1
            try:
                result = fn()
            except retryable as exc:
                if not retry_all and not self.is_transient(exc):
                    raise
                last = exc
                continue
            if self.journal is not None:
                self.journal.record(
                    "retry", operation=operation, attempts=attempts, outcome="success"
                )
            return result
        if self.journal is not None:
            self.journal.record(
                "retry", operation=operation, attempts=attempts, outcome="exhausted"
            )
        raise last
