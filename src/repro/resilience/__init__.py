"""Fault injection, retry, quarantine, health and graceful degradation.

The package has two halves:

* **Chaos tooling** — :class:`FaultInjector` replays deterministic,
  seed-driven fault schedules (ENOSPC, torn writes, bit flips, latency
  spikes, exception storms) at named fault points threaded through the
  persist, streaming, fitting and planner layers.  Strictly opt-in: with
  no injector attached every instrumented call site is a single
  ``is None`` check.

* **Resilience runtime** — :class:`RetryPolicy`/:class:`Retrier`
  (exponential backoff + jitter, injectable clock, time budget),
  :class:`QuarantineManager` (move unreadable artefacts aside, minimal
  failing subset by binary-search shrinking, journaled), per-component
  health states with :class:`CircuitBreaker`, all bundled into the
  :class:`ResilienceRuntime` that ``LawsDatabase`` wires through the
  stack.  See README "Resilience & failure modes".
"""

from .faults import (
    DESTRUCTIVE,
    FAULT_KINDS,
    FAULT_POINTS,
    FaultAction,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)
from .health import DEGRADED, FAILED, HEALTHY, CircuitBreaker, ComponentHealth, HealthRegistry
from .quarantine import QuarantineManager, QuarantineRecord, minimal_failing_subset
from .retry import TRANSIENT_ERRNOS, Retrier, RetryPolicy
from .runtime import ResilienceRuntime

__all__ = [
    "FAULT_POINTS",
    "FAULT_KINDS",
    "DESTRUCTIVE",
    "FaultSpec",
    "FaultAction",
    "FaultEvent",
    "FaultInjector",
    "RetryPolicy",
    "Retrier",
    "TRANSIENT_ERRNOS",
    "QuarantineManager",
    "QuarantineRecord",
    "minimal_failing_subset",
    "HEALTHY",
    "DEGRADED",
    "FAILED",
    "ComponentHealth",
    "HealthRegistry",
    "CircuitBreaker",
    "ResilienceRuntime",
]
