"""Per-component health states and circuit breakers.

Components (``warehouse``, ``wal``, ``table:<name>``, ``verifier``,
``refit:<table>.<column>``) move ``healthy -> degraded -> failed`` as
faults accumulate and back to ``healthy`` when they recover or an
operator acknowledges a disclosed loss.  Transitions are journaled and
fan out through ``on_transition`` so the planner can invalidate cached
plans exactly when health changes (instead of checking health on the
hot path).

:class:`CircuitBreaker` guards repeatedly-failing operations (refit
storms, verifier failures): ``failure_threshold`` consecutive failures
open the circuit for ``cooldown_seconds``; after the cooldown one trial
call is allowed through (half-open) and its outcome closes or re-opens
the circuit.  The clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["HEALTHY", "DEGRADED", "FAILED", "ComponentHealth", "HealthRegistry", "CircuitBreaker"]

HEALTHY = "healthy"
DEGRADED = "degraded"
FAILED = "failed"
_STATES = (HEALTHY, DEGRADED, FAILED)


@dataclass
class ComponentHealth:
    name: str
    state: str = HEALTHY
    reason: str = ""
    since: float = field(default_factory=time.time)


class HealthRegistry:
    """Thread-safe map of component name -> health state."""

    def __init__(self, *, journal: object | None = None) -> None:
        self._lock = threading.Lock()
        self._components: dict[str, ComponentHealth] = {}
        self.journal = journal
        #: Called (without the lock held) after every state *transition*;
        #: the system wires this to plan-cache invalidation.
        self.on_transition: Callable[[str, str, str], None] | None = None

    def set_state(self, name: str, state: str, reason: str = "") -> None:
        if state not in _STATES:
            raise ValueError(f"unknown health state {state!r}")
        with self._lock:
            component = self._components.get(name)
            previous = component.state if component is not None else HEALTHY
            if component is None:
                component = ComponentHealth(name=name)
                self._components[name] = component
            component.state = state
            component.reason = reason
            if previous != state:
                component.since = time.time()
        if previous != state:
            if self.journal is not None:
                self.journal.record(
                    "health-transition", component=name, state=state, was=previous, reason=reason
                )
            hook = self.on_transition
            if hook is not None:
                hook(name, previous, state)

    def mark_degraded(self, name: str, reason: str) -> None:
        self.set_state(name, DEGRADED, reason)

    def mark_failed(self, name: str, reason: str) -> None:
        self.set_state(name, FAILED, reason)

    def mark_healthy(self, name: str, reason: str = "") -> None:
        self.set_state(name, HEALTHY, reason)

    def state(self, name: str) -> str:
        with self._lock:
            component = self._components.get(name)
            return component.state if component is not None else HEALTHY

    def reason(self, name: str) -> str:
        with self._lock:
            component = self._components.get(name)
            return component.reason if component is not None else ""

    def is_failed(self, name: str) -> bool:
        return self.state(name) == FAILED

    def failed_components(self) -> list[str]:
        with self._lock:
            return [name for name, c in self._components.items() if c.state == FAILED]

    def report(self) -> dict:
        with self._lock:
            return {
                name: {"state": c.state, "reason": c.reason, "since": c.since}
                for name, c in sorted(self._components.items())
            }


class CircuitBreaker:
    """Consecutive-failure breaker with cooldown and half-open trials."""

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        health: HealthRegistry | None = None,
        journal: object | None = None,
    ) -> None:
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._half_open = False
        self.health = health
        self.journal = journal

    @property
    def is_open(self) -> bool:
        with self._lock:
            return self._opened_at is not None and not self._cooldown_elapsed_locked()

    def allow(self) -> bool:
        """May the protected operation run now?  Half-open admits one trial."""
        with self._lock:
            if self._opened_at is None:
                return True
            if not self._cooldown_elapsed_locked():
                return False
            if self._half_open:
                return False
            self._half_open = True
            return True

    def record_success(self) -> None:
        with self._lock:
            was_open = self._opened_at is not None
            self._failures = 0
            self._opened_at = None
            self._half_open = False
        if was_open:
            if self.journal is not None:
                self.journal.record("breaker-close", component=self.name)
            if self.health is not None:
                self.health.mark_healthy(self.name, "circuit closed after successful trial")

    def record_failure(self, reason: str = "") -> bool:
        """Count a failure; returns True when this failure opens the circuit."""
        with self._lock:
            self._failures += 1
            reopened = self._half_open
            self._half_open = False
            should_open = reopened or self._failures >= self.failure_threshold
            newly_open = should_open and (self._opened_at is None or reopened)
            if should_open:
                self._opened_at = self._clock()
        if newly_open:
            if self.journal is not None:
                self.journal.record(
                    "breaker-open", component=self.name, failures=self._failures, reason=reason
                )
            if self.health is not None:
                self.health.mark_degraded(self.name, f"circuit open: {reason}" if reason else "circuit open")
        return newly_open

    def _cooldown_elapsed_locked(self) -> bool:
        return self._opened_at is not None and (self._clock() - self._opened_at) >= self.cooldown_seconds
