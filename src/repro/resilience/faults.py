"""Deterministic, seed-driven fault injection.

A :class:`FaultInjector` is threaded through the persist layer, streaming,
model fitting and the feedback verifier as an *optional* attribute: every
instrumented call site does a single ``if self.faults is not None`` check,
so with injection disabled (the default everywhere) the hot paths pay one
attribute load and nothing else.

Fault points are named strings (``persist.wal.append``, ``fitting.fit``,
...).  A schedule is a list of :class:`FaultSpec` entries binding a fault
*kind* to the N-th arrival at a point, so a given schedule replays
identically run after run — the chaos suite relies on this to diff a
faulted run against a never-faulted oracle.

Fault kinds:

``oserror``
    Raise :class:`OSError` with a configurable errno (default ``ENOSPC``).
``exception``
    Raise :class:`repro.errors.InjectedFault` (an exception storm).
``latency``
    Sleep ``latency_seconds`` through the injectable sleep, then continue.
``torn_write``
    Cooperative: returned to the call site, which writes only a prefix of
    the payload and then raises ``OSError(EIO)`` — simulating a short
    write / power cut mid-frame.
``bit_flip``
    Cooperative: returned to the call site, which flips one bit of the
    payload (on write) or of the bytes just read (on read) — simulating
    silent media corruption.
``nan``
    Cooperative: returned to the fitting call site, which replaces the
    fitted coefficients with NaNs — simulating a diverged solver.
"""

from __future__ import annotations

import errno as _errno
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import InjectedFault

__all__ = ["FAULT_POINTS", "FAULT_KINDS", "FaultSpec", "FaultAction", "FaultEvent", "FaultInjector"]


#: Every named fault point wired into production code.  Kept in one place so
#: schedules (and the chaos suite's coverage assertion) can enumerate them.
FAULT_POINTS: tuple[str, ...] = (
    "persist.snapshot.write",
    "persist.snapshot.read",
    "persist.wal.append",
    "persist.wal.reset",
    "persist.wal.replay",
    "persist.warehouse.store",
    "persist.warehouse.load",
    "persist.manifest.write",
    "persist.archive.write",
    "persist.archive.read",
    "streaming.ingest.flush",
    "streaming.maintenance.refit",
    "fitting.fit",
    "planner.verify",
    "parallel.worker.task",
)

FAULT_KINDS: tuple[str, ...] = ("oserror", "exception", "latency", "torn_write", "bit_flip", "nan")

#: Kinds that make sense at each point.  ``torn_write``/``bit_flip`` are
#: cooperative and only honoured where the call site manipulates bytes;
#: ``nan`` only at the fitting point.  Used by :meth:`FaultInjector.random_schedule`.
_POINT_KINDS: dict[str, tuple[str, ...]] = {
    "persist.snapshot.write": ("oserror", "latency", "torn_write"),
    "persist.snapshot.read": ("oserror", "latency", "bit_flip"),
    "persist.wal.append": ("oserror", "latency", "torn_write"),
    "persist.wal.reset": ("oserror", "latency"),
    "persist.wal.replay": ("oserror", "latency", "bit_flip"),
    "persist.warehouse.store": ("oserror", "latency", "torn_write"),
    "persist.warehouse.load": ("oserror", "latency", "bit_flip"),
    "persist.manifest.write": ("oserror", "latency"),
    "persist.archive.write": ("oserror", "latency"),
    "persist.archive.read": ("oserror", "latency"),
    "streaming.ingest.flush": ("oserror", "exception", "latency"),
    "streaming.maintenance.refit": ("oserror", "exception", "latency"),
    "fitting.fit": ("exception", "latency", "nan"),
    "planner.verify": ("exception", "latency"),
    # A worker task raising (exception) or hanging past its deadline
    # (latency): the pool retries once, then degrades to serial execution.
    "parallel.worker.task": ("exception", "latency"),
}

#: Fault kinds that, by construction, destroy durable bytes that may hold
#: acknowledged commits (silent media rot on a read path).  The chaos
#: harness exempts schedules containing these from the byte-exact no-loss
#: assertion and instead asserts *disclosure* (journaled quarantine or
#: truncation, degraded health, typed errors).
DESTRUCTIVE: frozenset[tuple[str, str]] = frozenset(
    {
        ("persist.wal.replay", "bit_flip"),
        ("persist.snapshot.read", "bit_flip"),
        ("persist.warehouse.load", "bit_flip"),
        ("persist.snapshot.write", "torn_write"),
        ("persist.warehouse.store", "torn_write"),
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` on the ``hit``-th arrival at ``point``."""

    point: str
    kind: str
    hit: int = 1
    errno_code: int = _errno.ENOSPC
    latency_seconds: float = 0.0
    fraction: float = 0.5
    bit_index: int = 7
    message: str = ""

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {self.point!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.hit < 1:
            raise ValueError("hit indices are 1-based")


@dataclass(frozen=True)
class FaultAction:
    """A cooperative fault returned to the call site for it to enact."""

    point: str
    kind: str
    fraction: float = 0.5
    bit_index: int = 7


@dataclass(frozen=True)
class FaultEvent:
    """A fault that actually fired, recorded for chaos-suite accounting."""

    point: str
    kind: str
    hit: int


@dataclass
class _PointState:
    specs: dict[int, FaultSpec] = field(default_factory=dict)
    count: int = 0


class FaultInjector:
    """Replays a deterministic schedule of faults at named fault points.

    Thread-safe: hit counters and the fired-fault log are guarded by a
    lock, so concurrent writers (ingest vs. maintenance vs. checkpoint)
    still observe a deterministic *per-point* schedule.
    """

    def __init__(
        self,
        schedule: Iterable[FaultSpec] = (),
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._lock = threading.Lock()
        self._points: dict[str, _PointState] = {}
        self._sleep = sleep
        self.log: list[FaultEvent] = []
        self.schedule: tuple[FaultSpec, ...] = tuple(schedule)
        for spec in self.schedule:
            state = self._points.setdefault(spec.point, _PointState())
            if spec.hit in state.specs:
                raise ValueError(f"duplicate fault for {spec.point!r} hit {spec.hit}")
            state.specs[spec.hit] = spec

    # -- core ---------------------------------------------------------------

    def hit(self, point: str, path: object | None = None) -> FaultAction | None:
        """Record one arrival at ``point``; raise, sleep, or hand back an action.

        Raising kinds (``oserror``/``exception``) raise from here.  Latency
        sleeps and returns ``None``.  Cooperative kinds (``torn_write``,
        ``bit_flip``, ``nan``) return a :class:`FaultAction` for the call
        site to enact.  Unscheduled arrivals return ``None``.
        """
        with self._lock:
            state = self._points.get(point)
            if state is None:
                return None
            state.count += 1
            spec = state.specs.get(state.count)
            if spec is None:
                return None
            self.log.append(FaultEvent(point=point, kind=spec.kind, hit=state.count))
            count = state.count
        if spec.kind == "oserror":
            name = _errno.errorcode.get(spec.errno_code, str(spec.errno_code))
            detail = spec.message or f"injected {name} at {point} (hit {count})"
            raise OSError(spec.errno_code, detail, str(path) if path is not None else None)
        if spec.kind == "exception":
            raise InjectedFault(
                spec.message or f"injected exception storm at {point} (hit {count})",
                point=point,
                hit=count,
            )
        if spec.kind == "latency":
            self._sleep(spec.latency_seconds)
            return None
        return FaultAction(
            point=point, kind=spec.kind, fraction=spec.fraction, bit_index=spec.bit_index
        )

    def filter_bytes(self, point: str, data: bytes, path: object | None = None) -> bytes:
        """``hit`` + enact any cooperative byte corruption on ``data``."""
        action = self.hit(point, path=path)
        if action is None:
            return data
        return self.apply(action, data)

    @staticmethod
    def apply(action: FaultAction, data: bytes) -> bytes:
        """Enact a cooperative action on a byte payload."""
        if not data:
            return data
        if action.kind == "torn_write":
            cut = max(1, int(len(data) * action.fraction))
            return data[:cut]
        if action.kind == "bit_flip":
            index = action.bit_index % (len(data) * 8)
            byte_index, bit = divmod(index, 8)
            corrupted = bytearray(data)
            corrupted[byte_index] ^= 1 << bit
            return bytes(corrupted)
        return data

    # -- introspection ------------------------------------------------------

    def fired(self) -> tuple[FaultEvent, ...]:
        with self._lock:
            return tuple(self.log)

    def drain(self) -> tuple[FaultEvent, ...]:
        """Return and clear the fired-fault log (per-operation accounting)."""
        with self._lock:
            fired = tuple(self.log)
            self.log.clear()
            return fired

    def is_destructive(self) -> bool:
        """True if the schedule can silently destroy acknowledged durable bytes."""
        return any((spec.point, spec.kind) in DESTRUCTIVE for spec in self.schedule)

    # -- schedule construction ----------------------------------------------

    @classmethod
    def random_schedule(
        cls,
        seed: int,
        *,
        n_faults: int = 4,
        max_hit: int = 5,
        points: Sequence[str] = FAULT_POINTS,
        latency_seconds: float = 0.0005,
    ) -> list[FaultSpec]:
        """Build a reproducible schedule: same seed, same faults, forever."""
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        used: set[tuple[str, int]] = set()
        for _ in range(n_faults):
            for _attempt in range(64):
                point = rng.choice(list(points))
                hit = rng.randint(1, max_hit)
                if (point, hit) in used:
                    continue
                used.add((point, hit))
                kind = rng.choice(list(_POINT_KINDS[point]))
                errno_code = rng.choice((_errno.ENOSPC, _errno.EIO, _errno.EAGAIN))
                specs.append(
                    FaultSpec(
                        point=point,
                        kind=kind,
                        hit=hit,
                        errno_code=errno_code,
                        latency_seconds=latency_seconds,
                        fraction=rng.choice((0.1, 0.5, 0.9)),
                        bit_index=rng.randint(0, 4096),
                    )
                )
                break
        return specs
