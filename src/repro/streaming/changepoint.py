"""Multiscale change-point detection over streamed series.

When a drift detector fires, the maintenance policy needs to know *where*
the data-generating law changed so it can segment the table and refit one
model per regime.  This module implements a SMUCE-flavoured test (Frick,
Munk & Sieling, "Multiscale change-point inference"): binary segmentation
driven by the standardized CUSUM statistic, where each interval of length
``m`` inside a series of length ``n`` must clear

    ``q + sqrt(2 * log(n / m)) + sqrt(2 * log(m))``

— the first penalty term charges the number of intervals at that scale
(shorter intervals must clear a higher bar, SMUCE's multiscale property)
and the second charges the ``m`` candidate split positions the CUSUM scan
maximises over, which together control the family-wise false-alarm rate.

The noise level is estimated robustly from first differences (MAD), so a
step function with large jumps does not inflate its own noise estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ChangePoint",
    "ChangePointResult",
    "estimate_noise_sigma",
    "find_changepoints",
]


@dataclass(frozen=True)
class ChangePoint:
    """One detected change: ``index`` is the first observation of the new regime."""

    index: int
    statistic: float
    critical_value: float

    @property
    def margin(self) -> float:
        return self.statistic - self.critical_value


@dataclass
class ChangePointResult:
    """All change points found in a series, with the segmentation they induce."""

    n: int
    sigma: float
    changepoints: list[ChangePoint] = field(default_factory=list)

    @property
    def indices(self) -> list[int]:
        return [cp.index for cp in self.changepoints]

    def segments(self) -> list[tuple[int, int]]:
        """Half-open ``[start, stop)`` row ranges between change points."""
        boundaries = [0, *self.indices, self.n]
        return [(boundaries[i], boundaries[i + 1]) for i in range(len(boundaries) - 1)]

    def segment_means(self, values: np.ndarray) -> list[float]:
        values = np.asarray(values, dtype=np.float64)
        return [float(np.nanmean(values[start:stop])) for start, stop in self.segments()]

    def describe(self) -> str:
        if not self.changepoints:
            return f"no change points in {self.n} observations (sigma={self.sigma:.4g})"
        points = ", ".join(
            f"@{cp.index} (T={cp.statistic:.2f} > q={cp.critical_value:.2f})"
            for cp in self.changepoints
        )
        return f"{len(self.changepoints)} change point(s) in {self.n} observations: {points}"


def estimate_noise_sigma(values: np.ndarray) -> float:
    """Robust noise scale from the MAD of first differences.

    Differencing removes piecewise-constant (and slowly varying) signal, so
    the estimate reflects observation noise rather than regime jumps; the
    constants rescale the MAD of a difference of two gaussians to sigma.
    """
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if len(values) < 3:
        return float("nan")
    diffs = np.diff(values)
    mad = float(np.median(np.abs(diffs - np.median(diffs))))
    sigma = mad / (np.sqrt(2.0) * 0.67448975)
    if sigma <= 0.0:
        # Constant stretches can zero out the MAD; fall back to the plain std.
        sigma = float(np.std(diffs)) / np.sqrt(2.0)
    return max(sigma, 1e-12)


def _max_cusum(values: np.ndarray, sigma: float, min_segment: int) -> tuple[int, float]:
    """The maximally standardized mean-difference statistic over one interval.

    For a split after position ``k`` the statistic is the two-sample z-score
    of the left/right means; the returned index is the first row of the
    right-hand segment (relative to the interval).
    """
    n = len(values)
    cumulative = np.cumsum(values)
    total = cumulative[-1]
    k = np.arange(min_segment, n - min_segment + 1, dtype=np.float64)
    if len(k) == 0:
        return -1, 0.0
    left_mean = cumulative[min_segment - 1 : n - min_segment] / k
    right_mean = (total - cumulative[min_segment - 1 : n - min_segment]) / (n - k)
    scale = sigma * np.sqrt(1.0 / k + 1.0 / (n - k))
    statistics = np.abs(left_mean - right_mean) / scale
    best = int(np.argmax(statistics))
    return min_segment + best, float(statistics[best])


def find_changepoints(
    values: np.ndarray,
    min_segment: int = 16,
    max_changepoints: int = 8,
    significance: float = 2.5,
    sigma: float | None = None,
) -> ChangePointResult:
    """Detect change points in ``values`` by multiscale binary segmentation.

    Parameters
    ----------
    values:
        The series, in arrival order.  Non-finite entries are interpolated
        away by carrying the previous finite value.
    min_segment:
        Minimum number of observations per resulting segment.
    max_changepoints:
        Upper bound on the number of reported change points (the strongest
        by statistic margin are kept).
    significance:
        Base critical value ``q``; each interval of length ``m`` inside a
        series of length ``n`` must clear
        ``q + sqrt(2 * log(n / m)) + sqrt(2 * log(m))``.
    sigma:
        Known noise standard deviation; estimated robustly when omitted.
    """
    series = np.asarray(values, dtype=np.float64).copy()
    n = len(series)
    finite = np.isfinite(series)
    if not finite.all() and finite.any():
        # Carry the last finite observation forward (then backward for a
        # non-finite prefix) so index positions stay aligned with the table.
        fill_value = series[finite][0]
        for i in range(n):
            if finite[i]:
                fill_value = series[i]
            else:
                series[i] = fill_value
    if sigma is None:
        sigma = estimate_noise_sigma(series)
    result = ChangePointResult(n=n, sigma=float(sigma))
    if n < 2 * min_segment or not np.isfinite(sigma):
        return result

    found: list[ChangePoint] = []
    stack = [(0, n)]
    while stack:
        start, stop = stack.pop()
        length = stop - start
        if length < 2 * min_segment:
            continue
        split, statistic = _max_cusum(series[start:stop], sigma, min_segment)
        if split < 0:
            continue
        critical = significance + float(
            np.sqrt(2.0 * np.log(n / length)) + np.sqrt(2.0 * np.log(length))
        )
        if statistic <= critical:
            continue
        index = start + split
        found.append(ChangePoint(index=index, statistic=statistic, critical_value=critical))
        stack.append((start, index))
        stack.append((index, stop))

    if len(found) > max_changepoints:
        found = sorted(found, key=lambda cp: cp.margin, reverse=True)[:max_changepoints]
    result.changepoints = sorted(found, key=lambda cp: cp.index)
    return result
