"""Streaming ingestion and online model maintenance.

The batch system fits models once and benches them as soon as data changes.
This subsystem turns the reproduction into the *continuously harvesting*
database the paper envisions:

* :mod:`repro.streaming.ingest` — batched append path with per-table
  throughput statistics and batch listeners.
* :mod:`repro.streaming.drift` — online residual drift detectors scoring
  captured models on every arriving batch.
* :mod:`repro.streaming.changepoint` — multiscale (SMUCE-flavoured)
  change-point localisation over residual series.
* :mod:`repro.streaming.maintenance` — the policy that re-validates quiet
  models and segments + refits drifted ones, superseding them in the model
  store so queries keep answering from fresh models.
* :mod:`repro.streaming.windows` — shared windowed/online statistics.

:class:`repro.LawsDatabase` wires these together: ``db.ingest(...)`` feeds
the stream, ``db.watch(...)`` registers a monitor and ``db.maintain()``
runs one maintenance tick.
"""

from repro.streaming.changepoint import (
    ChangePoint,
    ChangePointResult,
    estimate_noise_sigma,
    find_changepoints,
)
from repro.streaming.drift import DriftVerdict, PageHinkleyDetector, ResidualDriftDetector
from repro.streaming.ingest import IngestBatch, IngestStats, StreamIngestor
from repro.streaming.maintenance import (
    MaintenanceAction,
    MaintenanceReport,
    ModelMaintenancePolicy,
    WatchTarget,
)
from repro.streaming.windows import RollingStats, SlidingWindow

__all__ = [
    "ChangePoint",
    "ChangePointResult",
    "DriftVerdict",
    "IngestBatch",
    "IngestStats",
    "MaintenanceAction",
    "MaintenanceReport",
    "ModelMaintenancePolicy",
    "PageHinkleyDetector",
    "ResidualDriftDetector",
    "RollingStats",
    "SlidingWindow",
    "StreamIngestor",
    "WatchTarget",
    "estimate_noise_sigma",
    "find_changepoints",
]
