"""Batched streaming ingestion into the relational substrate.

The paper's database is meant to harvest models "as data arrives"; this
module provides the arrival path.  A :class:`StreamIngestor` buffers
submitted rows per table and appends them in fixed-size batches, keeping
per-table throughput statistics and notifying registered listeners with the
exact row range each flushed batch occupies — the hook the online
maintenance policy uses to score captured models on fresh data only.

Appends are O(n) amortised end-to-end: base-table columns grow through
amortised-doubling buffers (see :mod:`repro.db.column`), so flushing batch
after batch no longer re-concatenates every column per flush.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Mapping, Sequence

from repro.db.database import Database
from repro.db.stats import compute_table_stats
from repro.db.table import Table
from repro.errors import StreamingError

__all__ = ["IngestBatch", "IngestStats", "StreamIngestor"]


@dataclass(frozen=True)
class IngestBatch:
    """One flushed batch: which table it landed in and where."""

    table_name: str
    start_row: int
    end_row: int  # exclusive
    rows: tuple[tuple[Any, ...], ...]

    @property
    def num_rows(self) -> int:
        return self.end_row - self.start_row


@dataclass
class IngestStats:
    """Per-table ingestion accounting."""

    table_name: str
    rows_ingested: int = 0
    batches_flushed: int = 0
    submissions: int = 0
    append_seconds: float = 0.0
    last_batch_rows: int = 0
    pending_rows: int = 0

    @property
    def rows_per_second(self) -> float:
        if self.append_seconds <= 0.0:
            return 0.0
        return self.rows_ingested / self.append_seconds

    def summary(self) -> str:
        return (
            f"{self.table_name}: {self.rows_ingested} rows in {self.batches_flushed} batches "
            f"({self.rows_per_second:,.0f} rows/s appended, {self.pending_rows} pending)"
        )


class StreamIngestor:
    """Buffers incoming rows and appends them to base tables in batches."""

    def __init__(self, database: Database, batch_size: int = 512) -> None:
        if batch_size < 1:
            raise StreamingError(f"batch_size must be positive, got {batch_size}")
        self.database = database
        self.batch_size = batch_size
        #: Optional fault injector (``streaming.ingest.flush``); a fault
        #: raised here leaves the batch buffered for the next flush, so the
        #: stream self-heals once the fault clears.
        self.faults: Any = None
        self._buffers: dict[str, list[tuple[Any, ...]]] = {}
        self._stats: dict[str, IngestStats] = {}
        self._listeners: list[Callable[[IngestBatch], None]] = []
        self._commit_listeners: list[Callable[[IngestBatch], None]] = []
        # Serializes every buffer/stats mutation: concurrent producers may
        # submit to the same table, and a flush must not race a submit
        # repartitioning the same buffer.  Re-entrant because a listener may
        # submit() more rows from inside its notification.
        self._lock = threading.RLock()

    # -- listeners -------------------------------------------------------------

    def add_listener(self, callback: Callable[[IngestBatch], None]) -> None:
        """Register a callback invoked after every flushed batch."""
        self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[IngestBatch], None]) -> None:
        self._listeners.remove(callback)

    def add_commit_listener(self, callback: Callable[[IngestBatch], None]) -> None:
        """Register a callback invoked *inside* the commit critical section.

        Commit listeners run while the catalog commit lock is still held,
        immediately after the batch's append + version bump.  The WAL uses
        this so a batch and its redo record are atomic with respect to a
        concurrent checkpoint — a checkpoint (which holds the same lock)
        can never snapshot a committed batch and then reset the log before
        that batch's record lands in it.  Keep these cheap: they stall
        every writer and snapshot-taking reader.
        """
        self._commit_listeners.append(callback)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        table_name: str,
        rows: Sequence[Sequence[Any]] | Mapping[str, Sequence[Any]],
    ) -> list[IngestBatch]:
        """Buffer rows for ``table_name``; flush every full batch.

        ``rows`` is either a sequence of row tuples (schema order) or a
        columnar mapping of column name to values.  Returns the batches that
        were flushed as a result of this submission (possibly none).
        """
        table = self.database.table(table_name)  # validates the table exists
        row_tuples = self._normalise(table.schema.names, rows)
        with self._lock:
            buffer = self._buffers.setdefault(table_name, [])
            buffer.extend(row_tuples)
            stats = self._stats_for(table_name)
            stats.submissions += 1
            flushed: list[IngestBatch] = []
            # Detach every full batch from the shared buffer *before* flushing:
            # listeners observing a batch may reentrantly submit() to the same
            # table, and they must see a buffer that no longer contains rows this
            # call is about to commit.  On failure, rows not yet committed are
            # re-queued ahead of anything buffered meanwhile (order preserved);
            # the offset advances only after a successful append, so committed
            # rows are never re-appended and uncommitted rows are never dropped.
            cut = (len(buffer) // self.batch_size) * self.batch_size
            if cut:
                to_flush = buffer[:cut]
                self._buffers[table_name] = buffer[cut:]
                offset = 0
                try:
                    while offset < cut:
                        batch = self._append_rows(
                            table_name, to_flush[offset : offset + self.batch_size]
                        )
                        offset += self.batch_size
                        flushed.append(batch)
                        self._notify(batch)
                except BaseException:
                    self._buffers[table_name] = to_flush[offset:] + self._buffers[table_name]
                    raise
                finally:
                    stats.pending_rows = len(self._buffers[table_name])
            stats.pending_rows = len(self._buffers[table_name])
            return flushed

    def flush(self, table_name: str | None = None) -> list[IngestBatch]:
        """Flush any buffered rows (for one table, or all tables).

        A failed append leaves the table's buffer intact for retry; the
        buffer is cleared as soon as the rows are committed, before listeners
        run, so a raising listener cannot cause re-appends.  When flushing
        all tables, one table's *append* failure does not stop the others
        from being flushed — the first append error is re-raised after the
        loop.  Listener exceptions propagate immediately (as in ``submit``):
        they signal a consumer bug, and the rows they were notified about
        are already committed.
        """
        with self._lock:
            names = [table_name] if table_name is not None else list(self._buffers)
            flushed: list[IngestBatch] = []
            first_error: Exception | None = None
            for name in names:
                buffer = self._buffers.get(name, [])
                if not buffer:
                    continue
                try:
                    batch = self._append_rows(name, buffer)
                except Exception as exc:  # noqa: BLE001 - isolate per-table append failures
                    if first_error is None:
                        first_error = exc
                    continue
                self._buffers[name] = []
                self._stats_for(name).pending_rows = 0
                flushed.append(batch)
                try:
                    self._notify(batch)
                except Exception as exc:
                    # A listener error propagates, but must not swallow an
                    # append failure already recorded for another table.
                    if first_error is not None:
                        raise exc from first_error
                    raise
            if first_error is not None:
                raise first_error
            return flushed

    def discard(self, table_name: str) -> int:
        """Drop any buffered (uncommitted) rows for a table; returns how many.

        The escape hatch when a buffered batch cannot be appended (e.g. a
        value that does not coerce to its column type) and the producer
        decides to abandon rather than repair it.
        """
        with self._lock:
            dropped = len(self._buffers.get(table_name, []))
            self._buffers[table_name] = []
            self._stats_for(table_name).pending_rows = 0
            return dropped

    # -- accounting -------------------------------------------------------------

    def stats(self, table_name: str) -> IngestStats:
        return self._stats_for(table_name)

    def pending(self, table_name: str) -> int:
        return len(self._buffers.get(table_name, []))

    def describe(self) -> str:
        if not self._stats:
            return "(no streams ingested)"
        return "\n".join(stats.summary() for stats in self._stats.values())

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _normalise(
        schema_names: Sequence[str],
        rows: Sequence[Sequence[Any]] | Mapping[str, Sequence[Any]],
    ) -> list[tuple[Any, ...]]:
        if isinstance(rows, Mapping):
            unknown = set(rows) - set(schema_names)
            if unknown:
                raise StreamingError(
                    f"columnar batch names unknown columns {sorted(unknown)}; schema has {list(schema_names)}"
                )
            # A column that is *present* must match the batch length (an
            # explicitly empty list is a producer bug, not a null-fill
            # request); only absent columns are filled with NULLs.
            present = {name: list(values) for name, values in rows.items()}
            lengths = {len(values) for values in present.values()}
            if len(lengths) > 1:
                raise StreamingError(f"columnar batch has ragged column lengths {sorted(lengths)}")
            n = lengths.pop() if lengths else 0
            columns = [present.get(name) for name in schema_names]
            if all(column is not None for column in columns):
                return list(zip(*columns))  # C-speed transpose, no NULL fill
            return [
                tuple(column[i] if column is not None else None for column in columns)
                for i in range(n)
            ]
        width = len(schema_names)
        row_tuples = []
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                # Reject at submit time: a bad-arity row buffered now would
                # poison every later flush of this table's stream.
                raise StreamingError(
                    f"row has {len(row)} values but the schema has {width} columns: {row!r}"
                )
            row_tuples.append(row)
        return row_tuples

    def _stats_for(self, table_name: str) -> IngestStats:
        if table_name not in self._stats:
            self._stats[table_name] = IngestStats(table_name=table_name)
        return self._stats[table_name]

    def _append_rows(self, table_name: str, rows: list[tuple[Any, ...]]) -> IngestBatch:
        started = perf_counter()
        if self.faults is not None:
            try:
                self.faults.hit("streaming.ingest.flush")
            except OSError as exc:
                # Typed outward: producers see a repro error, the batch
                # stays buffered (submit/flush re-queue on failure).
                raise StreamingError(
                    f"ingest flush for {table_name!r} failed: {exc.strerror or exc}"
                ) from exc
        # The append (+ version bump) and any commit listeners (the WAL's
        # redo record) form one critical section: a checkpoint holding the
        # same lock either sees the batch in the table *and* the log, or in
        # neither.
        with self.database.catalog.commit_lock:
            catalog = self.database.catalog
            live = catalog.live_table(table_name)
            pre_image = live.pinned()
            # Sampled before the append: the cached stats (if fresh here)
            # describe exactly the pre-append rows, so batch statistics can
            # be merged in instead of rescanning the whole table later.
            stats_were_clean = catalog.stats_clean(table_name)
            start, end = self.database.append_batch(table_name, rows)
            batch = IngestBatch(
                table_name=table_name, start_row=start, end_row=end, rows=tuple(rows)
            )
            try:
                for listener in list(self._commit_listeners):
                    listener(batch)
            except BaseException:
                # A commit listener is part of the commit (it writes the
                # batch's WAL redo record, atomically).  If it fails, the
                # in-memory append must not survive either: the caller
                # re-queues the rows, and a retry would apply them twice.
                live.rollback_to(pre_image)
                self.database.catalog.mark_dirty(table_name)
                raise
            if stats_were_clean and rows:
                delta = compute_table_stats(Table.from_rows(table_name, live.schema, rows))
                catalog.merge_stats_delta(table_name, delta)
        elapsed = perf_counter() - started
        stats = self._stats_for(table_name)
        stats.rows_ingested += len(rows)
        stats.batches_flushed += 1
        stats.append_seconds += elapsed
        stats.last_batch_rows = len(rows)
        return batch

    def _notify(self, batch: IngestBatch) -> None:
        for listener in list(self._listeners):
            listener(batch)
