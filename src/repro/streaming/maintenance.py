"""Online model maintenance: keep captured models fresh under ingestion.

The batch system marks a table's models stale on every append and leaves
them benched until someone calls ``revalidate``.  The maintenance policy
closes that loop autonomously:

1. every flushed ingest batch is scored against the monitored model and the
   residuals feed a drift detector (:mod:`repro.streaming.drift`);
2. a :meth:`ModelMaintenancePolicy.maintain` tick re-validates models whose
   detectors are quiet (re-activating them through the existing lifecycle
   machinery) and handles the drifted ones;
3. a drifted model triggers the multiscale change-point test
   (:mod:`repro.streaming.changepoint`) over its residual series; when a
   change point is localized and the watcher knows the table's arrival-order
   column, the policy harvests one *partial* model per regime segment plus a
   fresh whole-table model, then **supersedes** the old model in the store —
   so the approximate engine, semantic compression and zero-IO scans keep
   answering from fresh models instead of falling back to exact execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

import numpy as np

from repro.core.captured_model import CapturedModel
from repro.core.harvester import HarvestReport, ModelHarvester
from repro.core.model_store import ModelStore
from repro.core.storage.model_switching import ModelLifecycleManager
from repro.db.database import Database
from repro.db.sql.parser import parse_expression
from repro.db.table import Table
from repro.errors import DriftMonitorError, ModelNotFoundError, ReproError, StreamingError
from repro.streaming.changepoint import ChangePointResult, find_changepoints
from repro.streaming.drift import DriftVerdict, ResidualDriftDetector
from repro.streaming.ingest import IngestBatch

__all__ = ["WatchTarget", "MaintenanceAction", "MaintenanceReport", "ModelMaintenancePolicy"]


@dataclass
class WatchTarget:
    """One monitored (table, output column) pair and its detector state."""

    table_name: str
    output_column: str
    order_column: str | None
    detector: ResidualDriftDetector
    model_id: int
    batches_seen: int = 0
    #: After a refit attempt produced no acceptable model, further attempts
    #: are deferred until the table has grown past this row count.
    refit_deferred_at_rows: int | None = None

    @property
    def last_verdict(self) -> DriftVerdict | None:
        return self.detector.last_verdict

    def describe(self) -> str:
        verdict = self.last_verdict.describe() if self.last_verdict else "no batches observed"
        return f"watch {self.table_name}.{self.output_column} via model#{self.model_id}: {verdict}"


@dataclass(frozen=True)
class MaintenanceAction:
    """One decision the maintenance tick took for a watched target."""

    table_name: str
    output_column: str
    #: "revalidated" | "refit" | "segmented" | "none" | "error"
    kind: str
    old_model_ids: tuple[int, ...] = ()
    #: Accepted successor models only (rejected refits appear in details).
    new_model_ids: tuple[int, ...] = ()
    #: Row positions within the monitored model's covered rows, in arrival order.
    changepoint_indices: tuple[int, ...] = ()
    details: str = ""

    def describe(self) -> str:
        return f"{self.table_name}.{self.output_column}: {self.kind} ({self.details})"


@dataclass
class MaintenanceReport:
    """Everything one ``maintain()`` tick did."""

    actions: list[MaintenanceAction] = field(default_factory=list)

    @property
    def did_anything(self) -> bool:
        return any(action.kind != "none" for action in self.actions)

    def actions_of_kind(self, kind: str) -> list[MaintenanceAction]:
        return [action for action in self.actions if action.kind == kind]

    def summary(self) -> str:
        if not self.actions:
            return "(no watched targets)"
        return "\n".join(action.describe() for action in self.actions)


class ModelMaintenancePolicy:
    """Watches captured models under streaming ingestion and keeps them serving."""

    def __init__(
        self,
        database: Database,
        store: ModelStore,
        harvester: ModelHarvester,
        lifecycle: ModelLifecycleManager,
        drift_multiplier: float = 2.5,
        drift_window: int = 512,
        drift_min_observations: int = 16,
        drift_patience: int = 2,
        min_segment: int = 16,
        significance: float = 2.5,
        max_changepoints: int = 4,
    ) -> None:
        self.database = database
        self.store = store
        self.harvester = harvester
        self.lifecycle = lifecycle
        self.drift_multiplier = drift_multiplier
        self.drift_window = drift_window
        self.drift_min_observations = drift_min_observations
        self.drift_patience = drift_patience
        self.min_segment = min_segment
        self.significance = significance
        self.max_changepoints = max_changepoints
        #: Optional callable ``(table_name) -> str | None`` naming why the
        #: table's models must not be refitted right now.  The archive tier
        #: sets this: a refit over a table whose cold rows moved to the
        #: model-only tier would fit only the (predicate-biased) live
        #: remainder yet be served as covering the full logical table.
        self.refit_guard: Any = None
        #: Optional :class:`repro.obs.EventJournal`.  When set, drift
        #: transitions, change-point localizations and every maintenance
        #: action are recorded as queryable events.
        self.journal: Any = None
        #: Optional fault injector (``streaming.maintenance.refit``).
        self.faults: Any = None
        #: Optional :class:`repro.resilience.ResilienceRuntime`.  When set,
        #: each watch target gets a per-target circuit breaker
        #: (``refit:{table}.{column}``): a refit storm (repeated refit
        #: failures on one target) trips the breaker and further refits of
        #: that target are skipped until the cooldown passes, instead of
        #: burning a failing fit per tick while other targets wait.
        self.resilience: Any = None
        self._targets: dict[tuple[str, str], WatchTarget] = {}

    def _breaker(self, target: WatchTarget) -> Any:
        if self.resilience is None:
            return None
        return self.resilience.breaker(f"refit:{target.table_name}.{target.output_column}")

    def _journal_record(self, kind: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.record(kind, **fields)

    # -- registration ------------------------------------------------------------

    def watch(
        self,
        table_name: str,
        output_column: str,
        order_column: str | None = None,
    ) -> WatchTarget:
        """Start monitoring the best captured model of a target column.

        ``order_column`` names the column that orders observations by
        arrival (a timestamp or sequence number); it is what lets the policy
        translate a detected change-point row into a segmentation predicate.
        Without it, drift still triggers whole-table refits, but per-segment
        models cannot be harvested.
        """
        try:
            model = self.store.best_model(table_name, output_column, include_stale=True)
        except ModelNotFoundError as exc:
            raise DriftMonitorError(
                f"cannot watch {table_name}.{output_column}: {exc}"
            ) from exc
        table = self.database.table(table_name)
        if order_column is not None:
            if order_column not in table.schema:
                raise DriftMonitorError(
                    f"order column {order_column!r} not in table {table_name!r}; "
                    f"available: {table.schema.names}"
                )
            dtype = table.schema.column(order_column).dtype
            if not dtype.is_numeric:
                raise DriftMonitorError(
                    f"order column {order_column!r} of {table_name!r} is {dtype.value}; "
                    "segmentation needs a numeric arrival-order column"
                )
        detector = ResidualDriftDetector(
            reference_rse=self._reference_rse(model),
            multiplier=self.drift_multiplier,
            window=self.drift_window,
            min_observations=self.drift_min_observations,
            patience=self.drift_patience,
        )
        target = WatchTarget(
            table_name=table_name,
            output_column=output_column,
            order_column=order_column,
            detector=detector,
            model_id=model.model_id,
        )
        self._targets[(table_name, output_column)] = target
        return target

    def unwatch(self, table_name: str, output_column: str) -> None:
        self._targets.pop((table_name, output_column), None)

    # -- durable state ------------------------------------------------------------

    def export_state(self) -> list[dict[str, Any]]:
        """The restartable core of every watch target (for the warehouse).

        Detector *observations* are deliberately not exported: residual
        windows are cheap to rebuild from post-restart batches, and a stale
        window from a previous process could alias a regime change.  What
        must survive is the wiring (target, order column, monitored model)
        and the refit-deferral bookkeeping.
        """
        return [
            {
                "table_name": target.table_name,
                "output_column": target.output_column,
                "order_column": target.order_column,
                "model_id": target.model_id,
                "refit_deferred_at_rows": target.refit_deferred_at_rows,
                "batches_seen": target.batches_seen,
            }
            for target in self._targets.values()
        ]

    def restore_state(self, entries: list[dict[str, Any]]) -> int:
        """Re-register exported watch targets; returns how many took."""
        restored = 0
        for entry in entries:
            try:
                target = self.watch(
                    entry["table_name"],
                    entry["output_column"],
                    order_column=entry.get("order_column"),
                )
            except ReproError:
                continue  # the monitored table/model did not survive
            model_id = entry.get("model_id")
            if model_id is not None:
                try:
                    model = self.store.get(int(model_id))
                except ModelNotFoundError:
                    model = None
                if model is not None and model.is_servable:
                    self._adopt(target, model)
            deferred = entry.get("refit_deferred_at_rows")
            target.refit_deferred_at_rows = None if deferred is None else int(deferred)
            target.batches_seen = int(entry.get("batches_seen", 0))
            restored += 1
        return restored

    def targets(self) -> list[WatchTarget]:
        return list(self._targets.values())

    def target_for(self, table_name: str, output_column: str) -> WatchTarget:
        try:
            return self._targets[(table_name, output_column)]
        except KeyError:
            raise DriftMonitorError(
                f"{table_name}.{output_column} is not watched; call watch() first"
            ) from None

    # -- streaming hook ------------------------------------------------------------

    def on_batch(self, batch: IngestBatch) -> None:
        """Score every watched model of the batch's table on the new rows.

        Only rows inside the monitored model's coverage are scored — late
        rows belonging to a historical segment must not feed the current
        segment model's drift detector.
        """
        for target in self._targets.values():
            if target.table_name != batch.table_name:
                continue
            model = self.store.get(target.model_id)
            rows = self._covered_batch_rows(batch, model)
            if not rows:
                continue
            arrays, group_keys = self._batch_columns(batch.table_name, rows, model)
            residuals = _model_residuals(model, arrays, group_keys)
            was_drifted = (
                target.last_verdict is not None and target.last_verdict.drifted
            )
            target.detector.observe(residuals)
            target.batches_seen += 1
            verdict = target.last_verdict
            if verdict is not None and verdict.drifted and not was_drifted:
                self._journal_record(
                    "drift-detected",
                    table=target.table_name,
                    column=target.output_column,
                    model_id=target.model_id,
                    detail=verdict.describe(),
                )

    # -- the maintenance tick ---------------------------------------------------------

    def maintain(self) -> MaintenanceReport:
        """One maintenance pass over all watched targets.

        A failing target (e.g. a refit raising on degenerate data) is
        reported as an ``error`` action rather than aborting the tick, so
        the other watched tables still get their maintenance.
        """
        report = MaintenanceReport()
        for target in self._targets.values():
            try:
                report.actions.append(self._maintain_target(target))
            except ReproError as exc:
                breaker = self._breaker(target)
                if breaker is not None:
                    breaker.record_failure(f"{type(exc).__name__}: {exc}")
                report.actions.append(
                    MaintenanceAction(
                        table_name=target.table_name,
                        output_column=target.output_column,
                        kind="error",
                        old_model_ids=(target.model_id,),
                        details=f"{type(exc).__name__}: {exc}",
                    )
                )
        if self.journal is not None:
            for action in report.actions:
                if action.kind == "none":
                    continue
                self._journal_record(
                    "maintenance",
                    table=action.table_name,
                    column=action.output_column,
                    action=action.kind,
                    old_model_ids=list(action.old_model_ids),
                    new_model_ids=list(action.new_model_ids),
                    detail=action.details,
                )
                if action.changepoint_indices:
                    self._journal_record(
                        "changepoint",
                        table=action.table_name,
                        column=action.output_column,
                        indices=list(action.changepoint_indices),
                    )
        return report

    def _maintain_target(self, target: WatchTarget) -> MaintenanceAction:
        model = self.store.get(target.model_id)
        verdict = target.last_verdict
        drifted = verdict is not None and verdict.drifted

        breaker = self._breaker(target)
        if breaker is not None and not breaker.allow():
            # Refit storm: this target's recent refits all failed.  Skip the
            # tick (the stale-but-servable old model keeps answering) until
            # the breaker's cooldown admits a half-open trial.
            return MaintenanceAction(
                table_name=target.table_name,
                output_column=target.output_column,
                kind="none",
                old_model_ids=(model.model_id,),
                details=f"maintenance skipped: circuit breaker {breaker.name!r} is open",
            )

        blocked = (
            self.refit_guard(target.table_name) if self.refit_guard is not None else None
        )
        if blocked is not None:
            # No refit, no revalidation: both would score against the
            # partial live rows.  The existing (possibly stale) model keeps
            # serving — stale is servable, and it describes the full
            # logical table where a fresh fit would not.
            return MaintenanceAction(
                table_name=target.table_name,
                output_column=target.output_column,
                kind="none",
                old_model_ids=(model.model_id,),
                details=f"maintenance deferred: {blocked}",
            )

        demotion_reason = model.metadata.pop("planner_demoted", None)
        if demotion_reason is not None:
            # The unified planner sampled this model's answers against exact
            # execution and caught it lying (observed error beyond the
            # quality policy's tolerance).  A quiet drift detector — or a
            # deferred refit — must not talk us out of it: observed errors
            # are ground truth where the detector only sees residual
            # proxies, so refit immediately.
            target.refit_deferred_at_rows = None
            return self._refit_coverage(
                target, model, reason=f"planner demotion: {demotion_reason}"
            )

        if (
            target.refit_deferred_at_rows is not None
            and self.database.table(target.table_name).num_rows <= target.refit_deferred_at_rows
        ):
            # A previous refit attempt on this very data produced nothing
            # acceptable; fitting again would only add another rejected
            # model to the store.  Wait for new rows.
            return MaintenanceAction(
                table_name=target.table_name,
                output_column=target.output_column,
                kind="none",
                details=f"refit deferred until the table grows past "
                f"{target.refit_deferred_at_rows} rows (last attempt found no acceptable fit)",
            )
        target.refit_deferred_at_rows = None

        if not drifted:
            if model.status != "stale":
                return MaintenanceAction(
                    table_name=target.table_name,
                    output_column=target.output_column,
                    kind="none",
                    details="model active and no drift signal",
                )
            # Quiet detector but stale bookkeeping (appends happened):
            # re-validate through the lifecycle machinery.
            results = self.lifecycle.revalidate(target.table_name, target.output_column)
            if model.status == "active":
                return MaintenanceAction(
                    table_name=target.table_name,
                    output_column=target.output_column,
                    kind="revalidated",
                    old_model_ids=(model.model_id,),
                    new_model_ids=(model.model_id,),
                    details=f"re-validated {len(results)} model(s); monitored model reactivated",
                )
            # Revalidation says the fit degraded even without a drift alarm
            # (e.g. slow drift below the detector threshold): refit.
            return self._refit_coverage(target, model, reason="revalidation found degraded fit")

        action = self._handle_drift(target, model)
        # Ingestion marked every model of the table stale; models whose own
        # coverage is untouched by the drift (e.g. historical regime
        # segments) are re-scored and returned to service.
        self.lifecycle.revalidate(target.table_name, target.output_column)
        return action

    # -- drift handling -----------------------------------------------------------------

    def _handle_drift(self, target: WatchTarget, model: CapturedModel) -> MaintenanceAction:
        if target.order_column is None:
            # Without an arrival order there is nothing to segment on; skip
            # the change-point scan entirely.
            return self._refit_coverage(
                target, model, reason="drift confirmed but no order column to segment on"
            )
        arrays, group_keys, order_values = self._ordered_columns(model, target.order_column)
        residuals = _model_residuals(model, arrays, group_keys)
        cp_result = find_changepoints(
            residuals,
            min_segment=self.min_segment,
            max_changepoints=self.max_changepoints,
            significance=self.significance,
        )
        if not cp_result.changepoints:
            return self._refit_coverage(
                target, model, reason=f"drift confirmed; {cp_result.describe()}"
            )
        return self._segment_and_refit(target, model, cp_result, order_values)

    def _refit_coverage(
        self, target: WatchTarget, model: CapturedModel, reason: str
    ) -> MaintenanceAction:
        # Preserve the old model's coverage: a drifted segment model is
        # refitted over its own segment, a whole-table model over the table.
        report = self._harvest(model, predicate_sql=model.coverage.predicate_sql)
        if report.accepted:
            # A rejected refit must not bench the old model: a stale servable
            # model still beats answering nothing.
            self.store.supersede(model.model_id, report.model.model_id)
            self._adopt(target, report.model)
        else:
            # Keep monitoring the still-serving old model; clearing the
            # detector and deferring further attempts until new data arrives
            # prevents a rejected-refit per tick from piling up in the store.
            target.detector.reset()
            target.refit_deferred_at_rows = self.database.table(target.table_name).num_rows
        return MaintenanceAction(
            table_name=target.table_name,
            output_column=target.output_column,
            kind="refit",
            old_model_ids=(model.model_id,),
            new_model_ids=(report.model.model_id,) if report.accepted else (),
            details=f"{reason}; refit coverage as model#{report.model.model_id} "
            f"(accepted={report.accepted})",
        )

    def _segment_and_refit(
        self,
        target: WatchTarget,
        model: CapturedModel,
        cp_result: ChangePointResult,
        order_values: np.ndarray,
    ) -> MaintenanceAction:
        boundaries = _segment_boundaries(cp_result.indices, order_values)
        # The change points were located inside the monitored model's
        # coverage, so the new segments partition *that* subset — a drifted
        # tail-segment model is split into sub-segments of its own range, not
        # into segments that re-cover (and duplicate) historical regimes.
        base_predicate = model.coverage.predicate_sql
        predicates = _segment_predicates(target.order_column, boundaries)
        if base_predicate is not None:
            # Parenthesised: a base predicate containing OR must not be
            # re-bracketed by AND precedence.
            predicates = [f"({base_predicate}) AND ({p})" for p in predicates]
        segment_reports: list[HarvestReport] = []
        for predicate in predicates:
            try:
                segment_reports.append(self._harvest(model, predicate_sql=predicate))
            except ReproError:
                # A segment too small or degenerate to fit is skipped; the
                # whole-table refit below still covers its rows.
                continue
        # Keep full-range answering fresh regardless of what drifted.  The
        # whole-table fit must not abort the segmentation it follows: a
        # raising fit would otherwise leave half-finished state (segments
        # stored, no supersede, no deferral) that is re-done every tick.
        try:
            whole_report = self._harvest(model, predicate_sql=None)
            whole_note = f"whole-table model#{whole_report.model.model_id} (accepted={whole_report.accepted})"
        except ReproError as exc:
            whole_report = None
            whole_note = f"whole-table refit failed ({type(exc).__name__}: {exc})"
        whole_accepted = whole_report is not None and whole_report.accepted

        # The old model's serving role passes to whoever now covers it: the
        # last accepted sub-segment for a partial model, the accepted
        # whole-table refit otherwise.  A rejected successor must not bench
        # the old model — stale servable still beats answering nothing.
        last_segment = next(
            (report.model for report in reversed(segment_reports) if report.accepted), None
        )
        if base_predicate is not None:
            successor = last_segment or (whole_report.model if whole_accepted else None)
        else:
            successor = whole_report.model if whole_accepted else None
        if successor is not None:
            self.store.supersede(model.model_id, successor.model_id)

        # Monitor the freshest regime: new rows arrive at the end of the
        # order, which the last accepted segment model covers best.
        monitored = last_segment
        if monitored is None and whole_accepted:
            monitored = whole_report.model
        if monitored is not None:
            self._adopt(target, monitored)
        else:
            target.detector.reset()
        if not whole_accepted:
            # The store has no fresh acceptable whole-table successor; don't
            # re-attempt on the same data every tick.
            target.refit_deferred_at_rows = self.database.table(target.table_name).num_rows

        # Only adopted (accepted) successors belong in new_model_ids; models
        # the store will never serve are disclosed in the details text.
        new_ids = tuple(r.model.model_id for r in segment_reports if r.accepted)
        if whole_accepted:
            new_ids = new_ids + (whole_report.model.model_id,)
        return MaintenanceAction(
            table_name=target.table_name,
            output_column=target.output_column,
            kind="segmented",
            old_model_ids=(model.model_id,),
            new_model_ids=new_ids,
            changepoint_indices=tuple(cp_result.indices),
            details=(
                f"{cp_result.describe()}; harvested {len(segment_reports)} segment model(s) "
                f"at boundaries {boundaries} plus {whole_note}"
            ),
        )

    # -- helpers ---------------------------------------------------------------------------

    def _harvest(self, model: CapturedModel, predicate_sql: str | None) -> HarvestReport:
        if self.faults is not None:
            try:
                self.faults.hit("streaming.maintenance.refit")
            except OSError as exc:
                raise StreamingError(
                    f"maintenance refit of {model.table_name}.{model.output_column} "
                    f"failed: {exc.strerror or exc}"
                ) from exc
        # Refit with the same estimator settings the original capture used —
        # a robust or Gauss-Newton model must not silently become a plain
        # least-squares one across a maintenance refit.  Partition-scoped
        # models refit over their shard's *current* row range (the partition
        # map may have absorbed appended rows since the capture).
        row_range = model.coverage.row_range
        partition_id = model.metadata.get("partition_id")
        if row_range is not None and partition_id is not None:
            payload = self.database.catalog.table_meta(model.table_name, "partitions")
            for entry in (payload or {}).get("partitions", ()):
                if int(entry["id"]) == int(partition_id):
                    start = int(entry["start"])
                    row_range = (start, start + int(entry["rows"]))
                    break
        report = self.harvester.fit_and_capture(
            model.table_name,
            model.formula,
            group_by=list(model.group_columns) or None,
            predicate_sql=predicate_sql,
            robust=bool(model.metadata.get("robust", False)),
            method=str(model.metadata.get("method", "lm")),
            row_range=row_range,
            partition_id=None if partition_id is None else int(partition_id),
        )
        if self.resilience is not None:
            # A completed fit — accepted or quality-rejected — is not a
            # fault; it closes (or keeps closed) the target's breaker.
            self.resilience.breaker(
                f"refit:{model.table_name}.{model.output_column}"
            ).record_success()
        return report

    def _adopt(self, target: WatchTarget, model: CapturedModel) -> None:
        target.model_id = model.model_id
        try:
            target.detector.rebase(self._reference_rse(model))
        except DriftMonitorError:
            # Degenerate refit (zero/NaN error): keep the previous reference.
            target.detector.reset()

    @staticmethod
    def _reference_rse(model: CapturedModel) -> float:
        rse = model.quality.residual_standard_error
        if not np.isfinite(rse) or rse <= 0.0:
            raise DriftMonitorError(
                f"model#{model.model_id} has no positive finite residual standard error "
                f"({rse!r}); cannot build a drift reference"
            )
        return float(rse)

    @staticmethod
    def _needed_columns(model: CapturedModel) -> list[str]:
        return list(dict.fromkeys([*model.input_columns, model.output_column]))

    def _covered_table(self, model: CapturedModel, order_column: str | None) -> Table:
        """The model's table restricted to its coverage predicate (if any)."""
        extra = [order_column] if order_column is not None else None
        return self.lifecycle.covered_data(model, extra_columns=extra)

    def _covered_batch_rows(
        self, batch: IngestBatch, model: CapturedModel
    ) -> tuple[tuple[Any, ...], ...]:
        """The batch rows that fall inside the model's coverage predicate."""
        row_range = model.coverage.row_range
        if row_range is not None:
            # Partition-scoped coverage: only the batch rows that landed
            # inside the shard's row interval are the model's to score.
            lo = max(int(row_range[0]), batch.start_row) - batch.start_row
            hi = min(int(row_range[1]), batch.end_row) - batch.start_row
            return batch.rows[lo:hi] if hi > lo else ()
        predicate = model.coverage.predicate_sql
        if predicate is None:
            return batch.rows
        schema = self.database.table(batch.table_name).schema
        staged = Table.from_rows("ingest_batch", schema, batch.rows)
        mask = _parsed_predicate(predicate).evaluate(staged).to_pylist()
        return tuple(row for row, keep in zip(batch.rows, mask) if keep)

    def _batch_columns(
        self, table_name: str, rows: tuple[tuple[Any, ...], ...], model: CapturedModel
    ) -> tuple[dict[str, np.ndarray], list[list[Any]] | None]:
        """Column arrays (and group key lists) for just the given batch rows."""
        schema_names = self.database.table(table_name).schema.names
        positions = {name: i for i, name in enumerate(schema_names)}
        arrays = {
            name: np.array(
                [_as_float(row[positions[name]]) for row in rows], dtype=np.float64
            )
            for name in self._needed_columns(model)
        }
        group_keys = None
        if model.is_grouped:
            group_keys = [
                [row[positions[name]] for row in rows] for name in model.group_columns
            ]
        return arrays, group_keys

    def _ordered_columns(
        self, model: CapturedModel, order_column: str | None
    ) -> tuple[dict[str, np.ndarray], list[list[Any]] | None, np.ndarray | None]:
        """Column arrays of the model's *covered* rows, in arrival order.

        Restricting to the coverage subset matters for partial (segment)
        models: scoring them on rows they never fitted would re-detect every
        historical change point on each new drift.
        """
        table = self._covered_table(model, order_column)
        arrays = {
            name: table.column(name).to_numpy().astype(np.float64)
            for name in self._needed_columns(model)
        }
        group_keys = None
        if model.is_grouped:
            group_keys = [table.column(name).to_pylist() for name in model.group_columns]
        order_values = None
        if order_column is not None:
            order_values = table.column(order_column).to_numpy().astype(np.float64)
            # Rows with a NULL/NaN arrival order cannot be placed on the
            # timeline (and a NaN boundary would render an unparseable
            # predicate); they are excluded from drift analysis.
            finite = np.isfinite(order_values)
            order = np.argsort(order_values[finite], kind="stable")
            arrays = {name: values[finite][order] for name, values in arrays.items()}
            order_values = order_values[finite][order]
            if group_keys is not None:
                finite_indices = np.flatnonzero(finite)
                group_keys = [
                    [keys[finite_indices[i]] for i in order] for keys in group_keys
                ]
        return arrays, group_keys, order_values


# ---------------------------------------------------------------------------
# Residual and segmentation helpers
# ---------------------------------------------------------------------------


@lru_cache(maxsize=256)
def _parsed_predicate(text: str):
    """Parsed coverage predicates, memoized — on_batch evaluates the same
    predicate for every flushed batch of a watched table."""
    return parse_expression(text)


def _as_float(value: Any) -> float:
    return float(value) if value is not None else float("nan")


def _model_residuals(
    model: CapturedModel,
    arrays: dict[str, np.ndarray],
    group_keys: list[list[Any]] | None,
) -> np.ndarray:
    """Per-row residuals of ``model`` over the given column arrays.

    Rows of groups the model has no parameters for (new entities appearing
    mid-stream) come back NaN — the detectors and the change-point test both
    ignore non-finite entries.
    """
    y = arrays[model.output_column]
    inputs = {name: arrays[name] for name in model.input_columns}
    return y - model.predict_rows(inputs, group_keys)


def _segment_boundaries(indices: list[int], order_values: np.ndarray) -> list[float]:
    """Order-column values at the change rows, deduplicated and increasing."""
    boundaries: list[float] = []
    for index in indices:
        value = float(order_values[index])
        if not boundaries or value > boundaries[-1]:
            boundaries.append(value)
    return boundaries


def _segment_predicates(order_column: str | None, boundaries: list[float]) -> list[str]:
    """WHERE clauses carving the order-column domain at the boundaries."""
    if order_column is None or not boundaries:
        return []
    predicates = [f"{order_column} < {boundaries[0]!r}"]
    for low, high in zip(boundaries, boundaries[1:]):
        predicates.append(f"{order_column} >= {low!r} AND {order_column} < {high!r}")
    predicates.append(f"{order_column} >= {boundaries[-1]!r}")
    return predicates
