"""Online drift detection for captured models.

A captured model carries its residual standard error from fit time.  As
batches stream in, the maintenance policy scores the model on each batch and
feeds the residuals to a detector; when the recent residual scale is no
longer explained by the fit-time error, the model has drifted and must be
re-validated or re-fitted.

Two detectors are provided:

* :class:`ResidualDriftDetector` — compares the RMS residual over a sliding
  window against a multiple of the model's fit-time RSE.  Robust, easy to
  reason about, and directly tied to the quality judgement of §3.
* :class:`PageHinkleyDetector` — the classic sequential Page-Hinkley test on
  residual magnitudes, for callers that want a cumulative (windowless)
  detector with its own sensitivity/threshold trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streaming.windows import RollingStats, SlidingWindow

__all__ = ["DriftVerdict", "ResidualDriftDetector", "PageHinkleyDetector"]


@dataclass(frozen=True)
class DriftVerdict:
    """Outcome of feeding one batch of residuals to a detector."""

    drifted: bool
    statistic: float
    threshold: float
    observations: int
    detector: str
    reason: str = ""

    def describe(self) -> str:
        state = "DRIFT" if self.drifted else "ok"
        return (
            f"[{self.detector}] {state}: statistic={self.statistic:.4g} "
            f"threshold={self.threshold:.4g} ({self.reason})"
        )


class ResidualDriftDetector:
    """Windowed RMS-residual test against the model's fit-time error.

    Drift is declared after ``patience`` consecutive batches whose windowed
    RMS residual exceeds ``multiplier`` times the reference RSE — the
    patience requirement suppresses single-batch outliers (which the anomaly
    detector, not the maintenance loop, should explain).
    """

    name = "residual-rms"

    def __init__(
        self,
        reference_rse: float,
        multiplier: float = 2.5,
        window: int = 256,
        min_observations: int = 16,
        patience: int = 2,
    ) -> None:
        if reference_rse <= 0 or not np.isfinite(reference_rse):
            raise ValueError(f"reference_rse must be positive and finite, got {reference_rse}")
        self.reference_rse = float(reference_rse)
        self.multiplier = float(multiplier)
        self.min_observations = int(min_observations)
        self.patience = int(patience)
        self._window = SlidingWindow(window)
        self._streak = 0
        self.batches_observed = 0
        self.last_verdict: DriftVerdict | None = None

    @property
    def threshold(self) -> float:
        return self.multiplier * self.reference_rse

    def observe(self, residuals: np.ndarray) -> DriftVerdict:
        """Feed one batch of residuals; returns the current verdict."""
        self.batches_observed += 1
        residuals = np.atleast_1d(np.asarray(residuals, dtype=np.float64))
        finite_count = int(np.isfinite(residuals).sum())
        self._window.extend(residuals)
        statistic = self._window.rms()
        if len(self._window) < self.min_observations:
            verdict = DriftVerdict(
                drifted=False,
                statistic=statistic,
                threshold=self.threshold,
                observations=len(self._window),
                detector=self.name,
                reason=f"warming up ({len(self._window)}/{self.min_observations} observations)",
            )
        elif finite_count == 0:
            # No new evidence (e.g. a batch of only unseen group keys): the
            # streak must not advance on a re-read of the same window.
            verdict = DriftVerdict(
                drifted=self._streak >= self.patience,
                statistic=statistic,
                threshold=self.threshold,
                observations=len(self._window),
                detector=self.name,
                reason="batch added no finite residuals; evidence unchanged",
            )
        else:
            if statistic > self.threshold:
                self._streak += 1
            else:
                self._streak = 0
            drifted = self._streak >= self.patience
            reason = (
                f"RMS residual above {self.multiplier:g}x fit-time RSE "
                f"for {self._streak} consecutive batch(es)"
                if self._streak
                else "residuals within fit-time error"
            )
            verdict = DriftVerdict(
                drifted=drifted,
                statistic=statistic,
                threshold=self.threshold,
                observations=len(self._window),
                detector=self.name,
                reason=reason,
            )
        self.last_verdict = verdict
        return verdict

    def rebase(self, reference_rse: float) -> None:
        """Point the detector at a freshly fitted model and clear all state."""
        if reference_rse <= 0 or not np.isfinite(reference_rse):
            raise ValueError(f"reference_rse must be positive and finite, got {reference_rse}")
        self.reference_rse = float(reference_rse)
        self.reset()

    def reset(self) -> None:
        self._window.reset()
        self._streak = 0
        self.last_verdict = None


class PageHinkleyDetector:
    """Sequential Page-Hinkley test on a stream of (residual) magnitudes.

    Tracks the cumulative deviation of the observations from their running
    mean (minus an allowed drift ``delta``) and signals when the deviation
    exceeds its running minimum by more than ``threshold``.
    """

    name = "page-hinkley"

    def __init__(self, delta: float = 0.005, threshold: float = 50.0) -> None:
        self.delta = float(delta)
        self.ph_threshold = float(threshold)
        self._stats = RollingStats()
        self._cumulative = 0.0
        self._minimum = 0.0
        self.last_verdict: DriftVerdict | None = None

    def observe(self, values: np.ndarray) -> DriftVerdict:
        values = np.atleast_1d(np.asarray(values, dtype=np.float64))
        magnitudes = np.abs(values[np.isfinite(values)])
        for value in magnitudes:
            self._stats.observe(value)
            self._cumulative += value - self._stats.mean - self.delta
            self._minimum = min(self._minimum, self._cumulative)
        statistic = self._cumulative - self._minimum
        drifted = statistic > self.ph_threshold
        verdict = DriftVerdict(
            drifted=drifted,
            statistic=float(statistic),
            threshold=self.ph_threshold,
            observations=self._stats.count,
            detector=self.name,
            reason="cumulative deviation above threshold" if drifted else "within threshold",
        )
        self.last_verdict = verdict
        return verdict

    def rebase(self, reference_rse: float | None = None) -> None:  # signature parity
        self.reset()

    def reset(self) -> None:
        self._stats.reset()
        self._cumulative = 0.0
        self._minimum = 0.0
        self.last_verdict = None
