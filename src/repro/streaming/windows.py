"""Windowed state for streaming monitors.

The drift detectors and ingest statistics need two kinds of bounded state
over an unbounded stream: exact statistics over the *recent* past (a sliding
window of the last N observations) and cheap cumulative statistics over the
*whole* past (Welford-style online moments).  Both live here so the
streaming modules share one implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RollingStats", "SlidingWindow"]


class RollingStats:
    """Online count/mean/variance over everything observed so far (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, values: np.ndarray | float) -> None:
        for value in np.atleast_1d(np.asarray(values, dtype=np.float64)):
            if not np.isfinite(value):
                continue
            self.count += 1
            delta = value - self._mean
            self._mean += delta / self.count
            self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        variance = self.variance
        return float(np.sqrt(variance)) if np.isfinite(variance) else float("nan")

    def reset(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0


class SlidingWindow:
    """A fixed-capacity ring buffer of the most recent float observations."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"window capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer = np.empty(capacity, dtype=np.float64)
        self._next = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def extend(self, values: np.ndarray) -> None:
        """Append observations, evicting the oldest beyond capacity."""
        values = np.atleast_1d(np.asarray(values, dtype=np.float64))
        values = values[np.isfinite(values)]
        if len(values) >= self.capacity:
            # The batch alone fills the window: keep only its tail.
            self._buffer[:] = values[-self.capacity :]
            self._next = 0
            self._size = self.capacity
            return
        for value in values:
            self._buffer[self._next] = value
            self._next = (self._next + 1) % self.capacity
            self._size = min(self._size + 1, self.capacity)

    def values(self) -> np.ndarray:
        """The window contents in arrival order (oldest first)."""
        if self._size < self.capacity:
            return self._buffer[: self._size].copy()
        return np.concatenate([self._buffer[self._next :], self._buffer[: self._next]])

    def mean(self) -> float:
        return float(np.mean(self.values())) if self._size else float("nan")

    def rms(self) -> float:
        """Root mean square of the window contents (drift statistic)."""
        if not self._size:
            return float("nan")
        return float(np.sqrt(np.mean(self.values() ** 2)))

    def reset(self) -> None:
        self._next = 0
        self._size = 0
