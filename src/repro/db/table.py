"""In-memory columnar tables.

A :class:`Table` bundles a :class:`~repro.db.schema.Schema` with one
:class:`~repro.db.column.Column` per schema entry.  Tables are the unit of
storage (base tables registered in the catalog) and the unit of data exchange
between physical operators (every operator consumes and produces tables).

Tables are *logically* immutable: mutating operations (``append_rows``)
return nothing but replace the internal columns atomically, and derivation
operations (``filter``, ``take``, ``select`` ...) always return new tables.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.db.column import Column
from repro.db.schema import ColumnDef, Schema
from repro.db.types import DataType
from repro.errors import ExecutionError, SchemaError, TypeMismatchError

__all__ = ["Table"]

#: Serializes concurrent in-place appends.  Appends are copy-and-swap (the
#: column mapping is rebuilt, then replaced with one reference assignment),
#: so readers are always safe without this lock — but two *writers* racing
#: would both build from the same old columns and one batch would vanish.
#: One module-level lock (rather than per-table) keeps Table construction
#: allocation-free; appends are rare relative to reads and derivations.
_append_lock = threading.Lock()


class Table:
    """A named, schema-typed collection of columns of equal length."""

    def __init__(self, name: str, schema: Schema, columns: Mapping[str, Column] | None = None) -> None:
        self.name = name
        self.schema = schema
        if columns is None:
            columns = {c.name: Column.empty(c.dtype) for c in schema}
        self._columns: dict[str, Column] = {}
        lengths = set()
        for col_def in schema:
            if col_def.name not in columns:
                raise SchemaError(f"table {name!r}: missing data for column {col_def.name!r}")
            column = columns[col_def.name]
            if column.dtype is not col_def.dtype:
                raise TypeMismatchError(
                    f"table {name!r}: column {col_def.name!r} declared {col_def.dtype.value} "
                    f"but data is {column.dtype.value}"
                )
            self._columns[col_def.name] = column
            lengths.add(len(column))
        if len(lengths) > 1:
            raise SchemaError(f"table {name!r}: columns have differing lengths {sorted(lengths)}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(cls, name: str, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Table":
        """Build a table from an iterable of row tuples (positional)."""
        rows = list(rows)
        columns = {}
        for i, col_def in enumerate(schema):
            values = [row[i] for row in rows]
            columns[col_def.name] = Column.from_values(col_def.dtype, values)
        return cls(name, schema, columns)

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Sequence[Any]], schema: Schema | None = None) -> "Table":
        """Build a table from a column-name -> values mapping.

        When ``schema`` is omitted the column types are inferred from the
        values.
        """
        if schema is None:
            defs = []
            columns = {}
            for col_name, values in data.items():
                column = Column.infer(list(values))
                defs.append(ColumnDef(col_name, column.dtype))
                columns[col_name] = column
            return cls(name, Schema(defs), columns)
        columns = {
            col_def.name: Column.from_values(col_def.dtype, list(data[col_def.name])) for col_def in schema
        }
        return cls(name, schema, columns)

    @classmethod
    def from_numpy(cls, name: str, schema: Schema, arrays: Mapping[str, np.ndarray]) -> "Table":
        """Build a table from NumPy arrays without per-value coercion (fast path)."""
        columns = {
            col_def.name: Column.from_numpy(col_def.dtype, arrays[col_def.name]) for col_def in schema
        }
        return cls(name, schema, columns)

    @classmethod
    def empty(cls, name: str, schema: Schema) -> "Table":
        return cls(name, schema)

    # -- basic protocol -------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self.schema.names:
            return 0
        return len(self._columns[self.schema.names[0]])

    @property
    def num_columns(self) -> int:
        return len(self.schema)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table({self.name!r}, rows={self.num_rows}, columns={self.schema.names})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.schema == other.schema and self.to_pydict() == other.to_pydict()

    # -- access ----------------------------------------------------------------

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}; available: {self.schema.names}") from None

    def columns(self) -> dict[str, Column]:
        """A shallow copy of the column mapping."""
        return dict(self._columns)

    def row(self, index: int) -> tuple[Any, ...]:
        if index < 0 or index >= self.num_rows:
            raise ExecutionError(f"row index {index} out of range for table with {self.num_rows} rows")
        return tuple(self._columns[name][index] for name in self.schema.names)

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(self.num_rows):
            yield self.row(i)

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        names = self.schema.names
        for row in self.iter_rows():
            yield dict(zip(names, row))

    def to_pydict(self) -> dict[str, list[Any]]:
        return {name: self._columns[name].to_pylist() for name in self.schema.names}

    def to_rows(self) -> list[tuple[Any, ...]]:
        return list(self.iter_rows())

    # -- mutation (base tables) --------------------------------------------------

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append row tuples to this table in place (atomically).

        Copy-and-swap: the new column mapping is built off to the side and
        published with one reference assignment, so a concurrent reader (or
        a :meth:`pinned` snapshot) either sees the table entirely before or
        entirely after the batch — never a torn mix.  Writers serialize on a
        lock so two racing appends cannot both build from the same base and
        drop a batch.
        """
        rows = list(rows)
        if not rows:
            return
        width = len(self.schema)
        for row in rows:
            if len(row) != width:
                raise SchemaError(
                    f"table {self.name!r}: row has {len(row)} values but schema has {width} columns"
                )
        with _append_lock:
            base = self._columns
            new_columns = {}
            for i, col_def in enumerate(self.schema):
                addition = Column.from_values(col_def.dtype, [row[i] for row in rows])
                new_columns[col_def.name] = base[col_def.name].concat(addition)
            self._columns = new_columns

    def append_dicts(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append rows given as dicts; missing keys become NULL."""
        names = self.schema.names
        self.append_rows([tuple(row.get(name) for name in names) for row in rows])

    def rollback_to(self, image: "Table") -> None:
        """Atomically restore this table's contents to a prior :meth:`pinned`
        image — the undo half of copy-and-swap, used when a commit's
        secondary effect (e.g. its WAL record) fails after the append."""
        if image.schema != self.schema:
            raise SchemaError(
                f"table {self.name!r}: rollback image has a different schema"
            )
        with _append_lock:
            self._columns = image._columns

    # -- derivation ---------------------------------------------------------------

    def pinned(self) -> "Table":
        """A frozen snapshot of this table's current contents, O(1).

        Shares the immutable column objects behind a single atomic read of
        the column mapping, so the copy costs two attribute assignments and
        no data movement.  A later :meth:`append_rows` on the live table
        swaps in a *new* mapping; the pinned table keeps this one forever.
        Schema re-validation is skipped — the live table already validated.
        """
        snapshot = object.__new__(Table)
        snapshot.name = self.name
        snapshot.schema = self.schema
        snapshot._columns = self._columns
        return snapshot

    def rename(self, new_name: str) -> "Table":
        return Table(new_name, self.schema, self._columns)

    def select(self, names: Sequence[str]) -> "Table":
        """Project to a subset of columns (in the given order)."""
        schema = self.schema.select(names)
        return Table(self.name, schema, {name: self._columns[name] for name in names})

    def with_column(self, name: str, column: Column) -> "Table":
        """Return a new table with ``column`` added (or replaced in place).

        Replacing an existing column keeps its position in the schema, so
        downstream projections and ``to_rows`` keep their column order; only
        a genuinely new column is appended at the end.
        """
        if len(column) != self.num_rows and self.num_rows > 0:
            raise SchemaError(
                f"new column {name!r} has {len(column)} rows but table has {self.num_rows}"
            )
        new_def = ColumnDef(name, column.dtype)
        if name in self._columns:
            defs = [new_def if c.name == name else c for c in self.schema]
        else:
            defs = list(self.schema) + [new_def]
        columns = dict(self._columns)
        columns[name] = column
        return Table(self.name, Schema(defs), columns)

    def filter(self, mask: np.ndarray) -> "Table":
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.num_rows:
            raise ExecutionError(f"filter mask length {len(mask)} != row count {self.num_rows}")
        return Table(self.name, self.schema, {n: c.filter(mask) for n, c in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Table":
        return Table(self.name, self.schema, {n: c.take(indices) for n, c in self._columns.items()})

    def slice(self, start: int, stop: int) -> "Table":
        return Table(self.name, self.schema, {n: c.slice(start, stop) for n, c in self._columns.items()})

    def head(self, n: int = 10) -> "Table":
        return self.slice(0, min(n, self.num_rows))

    def tail(self, n: int = 10) -> "Table":
        """The last ``n`` rows (the freshest data, in arrival order)."""
        return self.slice(max(self.num_rows - n, 0), self.num_rows)

    def concat(self, other: "Table") -> "Table":
        if other.schema != self.schema:
            raise SchemaError(
                f"cannot concatenate tables with different schemas: {self.schema!r} vs {other.schema!r}"
            )
        return Table(
            self.name,
            self.schema,
            {n: self._columns[n].concat(other.column(n)) for n in self.schema.names},
        )

    def sort_by(self, keys: Sequence[tuple[str, bool]]) -> "Table":
        """Sort by a list of ``(column, ascending)`` keys (stable).

        Vectorized via :func:`np.lexsort` over per-key rank codes: every key
        column is ranked with :func:`np.unique` (which orders strings and
        numbers alike), descending keys flip the ranks, and NULLs always rank
        after every value so they sort last in both directions.
        """
        if self.num_rows == 0 or not keys:
            return self
        # np.lexsort sorts by the *last* key array first, so pass the primary
        # key last; lexsort is stable, matching the previous per-key
        # stable-sort semantics (ties keep their original row order).
        sort_keys = [self._sort_codes(name, ascending) for name, ascending in reversed(list(keys))]
        order = np.lexsort(sort_keys)
        return self.take(order)

    def _sort_codes(self, name: str, ascending: bool) -> np.ndarray:
        """Int64 rank codes for one sort key: NULLs last in both directions."""
        column = self.column(name)
        nulls = column.null_mask()
        values = column.values
        codes = np.empty(len(values), dtype=np.int64)
        present = ~nulls
        if not present.any():
            codes[:] = 0
            return codes
        uniques, inverse = np.unique(values[present], return_inverse=True)
        codes[present] = inverse if ascending else (len(uniques) - 1) - inverse
        codes[nulls] = len(uniques)
        return codes

    # -- storage accounting -----------------------------------------------------------

    def byte_size(self) -> int:
        """Nominal storage footprint of all columns, in bytes."""
        return sum(column.byte_size() for column in self._columns.values())

    # -- display ------------------------------------------------------------------------

    def to_text(self, limit: int = 20) -> str:
        """Render the first ``limit`` rows as an aligned text table."""
        names = self.schema.names
        rows = [tuple(_format_cell(v) for v in row) for row in self.head(limit).iter_rows()]
        widths = [len(n) for n in names]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(n.ljust(widths[i]) for i, n in enumerate(names))
        rule = "-+-".join("-" * w for w in widths)
        body = "\n".join(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows)
        footer = "" if self.num_rows <= limit else f"\n... ({self.num_rows - limit} more rows)"
        return f"{header}\n{rule}\n{body}{footer}"


def _format_cell(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
