"""Relational database substrate.

A pure-Python, in-memory, columnar relational engine with a SQL subset, a
simulated IO cost model, per-column statistics and an in-database UDF layer
(the "embedded statistical environment" the paper assumes).
"""

from repro.db.catalog import Catalog
from repro.db.column import Column
from repro.db.database import Database
from repro.db.io_model import IOAccountant, IOModel, IOParameters
from repro.db.schema import ColumnDef, Schema
from repro.db.stats import ColumnStats, TableStats, compute_column_stats, compute_table_stats
from repro.db.table import Table
from repro.db.types import DataType
from repro.db.expressions import col, lit

__all__ = [
    "Catalog",
    "Column",
    "ColumnDef",
    "ColumnStats",
    "Database",
    "DataType",
    "IOAccountant",
    "IOModel",
    "IOParameters",
    "Schema",
    "Table",
    "TableStats",
    "col",
    "compute_column_stats",
    "compute_table_stats",
    "lit",
]
