"""SQL tokenizer.

Produces a flat list of :class:`Token` objects.  Keywords are recognised
case-insensitively; identifiers keep their original spelling (the engine is
case-sensitive about table and column names, like most columnar research
prototypes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit", "offset",
    "as", "and", "or", "not", "in", "is", "null", "between", "like", "asc", "desc",
    "join", "inner", "left", "on", "create", "table", "insert", "into", "values",
    "distinct", "true", "false", "case", "when", "then", "else", "end",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.type.value}, {self.value!r})"


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCTUATION = ("(", ")", ",", ".", ";")


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text`` into a list of tokens terminated by an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]

        if ch.isspace():
            i += 1
            continue

        # Line comments
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue

        # String literal
        if ch == "'":
            end = i + 1
            parts = []
            while True:
                if end >= n:
                    raise SQLSyntaxError("unterminated string literal", i)
                if text[end] == "'":
                    if end + 1 < n and text[end + 1] == "'":  # escaped quote
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = end + 1
            continue

        # Number literal (integer, float, scientific)
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            end = i
            seen_dot = False
            seen_exp = False
            while end < n:
                c = text[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif c in "eE" and not seen_exp and end > i:
                    seen_exp = True
                    end += 1
                    if end < n and text[end] in "+-":
                        end += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[i:end], i))
            i = end
            continue

        # Identifier or keyword
        if ch.isalpha() or ch == "_" or ch == '"':
            if ch == '"':
                end = text.find('"', i + 1)
                if end == -1:
                    raise SQLSyntaxError("unterminated quoted identifier", i)
                tokens.append(Token(TokenType.IDENTIFIER, text[i + 1 : end], i))
                i = end + 1
                continue
            end = i
            while end < n and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[i:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = end
            continue

        # Operators (longest match first)
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                value = "!=" if op == "<>" else op
                tokens.append(Token(TokenType.OPERATOR, value, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue

        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue

        raise SQLSyntaxError(f"unexpected character {ch!r}", i)

    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
