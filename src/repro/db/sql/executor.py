"""SQL statement executor: ties the parser, planner and operators together.

The executor keeps an LRU parse+plan cache keyed on the raw SQL text.  The
approximate engine re-runs the same fallback and differential queries over
and over; re-lexing, re-parsing and re-planning each time dominates the cost
of small queries.  Cached plans are validated against the catalog's version
counter — any DDL or data change (appends mark the table dirty, which bumps
the version) invalidates every cached plan, so a cached plan can never serve
a stale schema.  Plans are stateless operator trees: re-executing one always
reads the current table contents.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter

from repro.db.catalog import Catalog
from repro.db.io_model import IOModel
from repro.db.operators.base import clone_operator_tree
from repro.db.schema import ColumnDef, Schema
from repro.db.sql.ast import CreateTableStatement, InsertStatement, SelectStatement, Statement
from repro.db.sql.parser import parse
from repro.db.sql.planner import PlannedQuery, plan_select
from repro.db.table import Table
from repro.errors import SQLPlanningError, UnsupportedSQLError

__all__ = ["QueryResult", "SQLExecutor"]


@dataclass
class QueryResult:
    """The result of executing one SQL statement."""

    table: Table
    statement_type: str
    elapsed_seconds: float
    io: dict[str, float] = field(default_factory=dict)
    plan_text: str = ""

    def rows(self) -> list[tuple]:
        return self.table.to_rows()

    def scalar(self):
        """Return the single value of a 1x1 result (raises otherwise)."""
        if self.table.num_rows != 1 or self.table.num_columns != 1:
            raise SQLPlanningError(
                f"scalar() requires a 1x1 result, got {self.table.num_rows}x{self.table.num_columns}"
            )
        return self.table.row(0)[0]


class SQLExecutor:
    """Execute SQL statements against a catalog, charging the IO model."""

    def __init__(
        self,
        catalog: Catalog,
        io_model: IOModel | None = None,
        plan_cache_size: int = 128,
    ) -> None:
        self.catalog = catalog
        self.io_model = io_model or IOModel()
        self.plan_cache_size = plan_cache_size
        #: Optional :class:`repro.obs.Tracer`.  When set *and* a trace is
        #: open, SELECT operator trees execute with one span per operator;
        #: otherwise execution pays a single attribute check.
        self.tracer = None
        #: Optional :class:`repro.parallel.ParallelQueryEngine`.  When set,
        #: SELECT roots are first offered to the partitioned-execution path;
        #: it returns ``None`` (and this stays a single attribute check per
        #: query) whenever the partitioned strategy does not apply.
        self.parallel = None
        self._parse_cache: OrderedDict[str, Statement] = OrderedDict()
        #: sql text -> (catalog version, plan, rendered plan text)
        self._plan_cache: OrderedDict[str, tuple[int, PlannedQuery, str]] = OrderedDict()
        # One lock for both LRU caches: concurrent queries share the executor
        # and OrderedDict move_to_end/insert/evict are not atomic.
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_invalidations = 0

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute one SQL statement."""
        # A still-valid cached plan skips lexing and parsing entirely (the
        # parse LRU may have evicted this statement's AST while its plan —
        # SELECTs only — survived).
        version = self.catalog.version
        with self._cache_lock:
            entry = self._plan_cache.get(sql)
            if entry is not None and entry[0] == version:
                self._cache_hits += 1
                self._plan_cache.move_to_end(sql)
            else:
                entry = None
        if entry is not None:
            return self._execute_planned(entry[1], entry[2])
        statement = self._parse(sql)
        started = perf_counter()
        # Per-execution IO scope: only pages charged by *this* execution (and
        # anything it nests) are attributed to this statement, even when other
        # queries interleave on other threads.
        with self.io_model.scope() as io_scope:
            if isinstance(statement, CreateTableStatement):
                table = self._execute_create(statement)
                kind = "create"
                plan_text = f"CreateTable({statement.name})"
            elif isinstance(statement, InsertStatement):
                table = self._execute_insert(statement)
                kind = "insert"
                plan_text = f"Insert({statement.name}, rows={len(statement.rows)})"
            elif isinstance(statement, SelectStatement):
                planned, plan_text = self._plan(sql, statement)
                table = self._run_root(planned)
                kind = "select"
            else:  # pragma: no cover - parser only produces the three kinds above
                raise UnsupportedSQLError(f"unsupported statement type {type(statement).__name__}")

        elapsed = perf_counter() - started
        return QueryResult(
            table=table,
            statement_type=kind,
            elapsed_seconds=elapsed,
            io=io_scope.snapshot(),
            plan_text=plan_text,
        )

    def _execute_planned(self, planned: PlannedQuery, plan_text: str) -> QueryResult:
        """Execute an already-planned SELECT (the plan-cache hit path)."""
        started = perf_counter()
        with self.io_model.accountant.scope() as io_scope:
            table = self._run_root(planned)
        elapsed = perf_counter() - started
        return QueryResult(
            table=table,
            statement_type="select",
            elapsed_seconds=elapsed,
            io=io_scope.snapshot(),
            plan_text=plan_text,
        )

    def _run_root(self, planned: PlannedQuery) -> Table:
        """Execute a plan's root, per-operator traced when a trace is open.

        Cached plans are shared across executions and threads, which is safe
        untraced: operators are stateless and every :class:`TableScan` binds a
        frozen (pin-aware) view of its table per execution.  Tracing is the
        exception — ``traced_operator_execute`` shadows ``execute`` in node
        ``__dict__``s, so a traced run first takes a private clone of the
        tree; the shared cached plan is never mutated and concurrent
        executions of the same plan never see another query's spans.
        """
        parallel = self.parallel
        if parallel is not None:
            table = parallel.try_execute(planned)
            if table is not None:
                return table
        tracer = self.tracer
        if tracer is not None and tracer.active:
            from repro.obs.trace import traced_operator_execute

            return traced_operator_execute(clone_operator_tree(planned.root), tracer)
        return planned.root.execute()

    def explain(self, sql: str) -> str:
        """Return the physical plan for a SELECT without executing it."""
        statement = self._parse(sql)
        if not isinstance(statement, SelectStatement):
            raise UnsupportedSQLError("EXPLAIN is only supported for SELECT statements")
        return self._plan(sql, statement)[1]

    # -- parse / plan caching -------------------------------------------------

    def parse_statement(self, sql: str) -> Statement:
        """Parse ``sql`` through the executor's LRU parse cache.

        This is the public entry for other query front-ends (the approximate
        engine, the unified planner) so repeated statement text is lexed and
        parsed exactly once per process instead of once per call site.
        """
        return self._parse(sql)

    def plan_statement(self, sql: str, statement: SelectStatement) -> tuple[PlannedQuery, str]:
        """Plan a SELECT through the version-keyed LRU plan cache.

        Exposed for the unified planner: a cached plan is only reused while
        ``catalog.version`` is unchanged, so DDL or data changes can never
        serve a stale schema.
        """
        return self._plan(sql, statement)

    def _parse(self, sql: str) -> Statement:
        """Parse ``sql``, reusing the cached AST for repeated statement text.

        Parsing is pure (the AST is immutable and never depends on catalog
        state), so the parse cache needs no invalidation — only LRU eviction.
        """
        with self._cache_lock:
            cached = self._parse_cache.get(sql)
            if cached is not None:
                self._parse_cache.move_to_end(sql)
                return cached
        statement = parse(sql)
        with self._cache_lock:
            self._parse_cache[sql] = statement
            while len(self._parse_cache) > self.plan_cache_size:
                self._parse_cache.popitem(last=False)
        return statement

    def _plan(self, sql: str, statement: SelectStatement) -> tuple[PlannedQuery, str]:
        """Plan a SELECT, reusing a cached plan while the catalog is unchanged."""
        version = self.catalog.version
        with self._cache_lock:
            entry = self._plan_cache.get(sql)
            if entry is not None:
                cached_version, planned, plan_text = entry
                if cached_version == version:
                    self._cache_hits += 1
                    self._plan_cache.move_to_end(sql)
                    return planned, plan_text
                self._cache_invalidations += 1
                del self._plan_cache[sql]
            self._cache_misses += 1
        planned = plan_select(statement, self.catalog, self.io_model)
        plan_text = planned.root.explain()
        with self._cache_lock:
            self._plan_cache[sql] = (version, planned, plan_text)
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return planned, plan_text

    def plan_cache_info(self) -> dict[str, int]:
        """Hit/miss counters and current occupancy of the plan cache."""
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "invalidations": self._cache_invalidations,
                "size": len(self._plan_cache),
                "capacity": self.plan_cache_size,
            }

    def clear_plan_cache(self) -> None:
        """Drop every cached parse and plan (counters are kept)."""
        with self._cache_lock:
            self._parse_cache.clear()
            self._plan_cache.clear()

    # -- DDL / DML ------------------------------------------------------------

    def _execute_create(self, statement: CreateTableStatement) -> Table:
        schema = Schema(ColumnDef(name, dtype) for name, dtype in statement.columns)
        return self.catalog.create_table(statement.name, schema)

    def _execute_insert(self, statement: InsertStatement) -> Table:
        # DML always targets the *live* table (a thread-pinned snapshot copy
        # would swallow the write), and the append + version bump commit
        # atomically under the catalog's commit lock (batch granularity).
        with self.catalog.commit_lock:
            table = self.catalog.live_table(statement.name)
            if statement.columns is None:
                table.append_rows(statement.rows)
            else:
                names = table.schema.names
                unknown = [c for c in statement.columns if c not in names]
                if unknown:
                    raise SQLPlanningError(f"INSERT references unknown columns {unknown} of table {statement.name!r}")
                reordered = []
                for row in statement.rows:
                    if len(row) != len(statement.columns):
                        raise SQLPlanningError(
                            f"INSERT row has {len(row)} values but {len(statement.columns)} columns were named"
                        )
                    mapping = dict(zip(statement.columns, row))
                    reordered.append(tuple(mapping.get(name) for name in names))
                table.append_rows(reordered)
            self.catalog.mark_dirty(statement.name)
            return table
