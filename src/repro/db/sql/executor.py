"""SQL statement executor: ties the parser, planner and operators together."""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.db.catalog import Catalog
from repro.db.io_model import IOModel
from repro.db.schema import ColumnDef, Schema
from repro.db.sql.ast import CreateTableStatement, InsertStatement, SelectStatement
from repro.db.sql.parser import parse
from repro.db.sql.planner import plan_select
from repro.db.table import Table
from repro.errors import SQLPlanningError, UnsupportedSQLError

__all__ = ["QueryResult", "SQLExecutor"]


@dataclass
class QueryResult:
    """The result of executing one SQL statement."""

    table: Table
    statement_type: str
    elapsed_seconds: float
    io: dict[str, float] = field(default_factory=dict)
    plan_text: str = ""

    def rows(self) -> list[tuple]:
        return self.table.to_rows()

    def scalar(self):
        """Return the single value of a 1x1 result (raises otherwise)."""
        if self.table.num_rows != 1 or self.table.num_columns != 1:
            raise SQLPlanningError(
                f"scalar() requires a 1x1 result, got {self.table.num_rows}x{self.table.num_columns}"
            )
        return self.table.row(0)[0]


class SQLExecutor:
    """Execute SQL statements against a catalog, charging the IO model."""

    def __init__(self, catalog: Catalog, io_model: IOModel | None = None) -> None:
        self.catalog = catalog
        self.io_model = io_model or IOModel()

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute one SQL statement."""
        statement = parse(sql)
        started = perf_counter()
        io_before = self.io_model.snapshot()

        if isinstance(statement, CreateTableStatement):
            table = self._execute_create(statement)
            kind = "create"
            plan_text = f"CreateTable({statement.name})"
        elif isinstance(statement, InsertStatement):
            table = self._execute_insert(statement)
            kind = "insert"
            plan_text = f"Insert({statement.name}, rows={len(statement.rows)})"
        elif isinstance(statement, SelectStatement):
            planned = plan_select(statement, self.catalog, self.io_model)
            plan_text = planned.root.explain()
            table = planned.root.execute()
            kind = "select"
        else:  # pragma: no cover - parser only produces the three kinds above
            raise UnsupportedSQLError(f"unsupported statement type {type(statement).__name__}")

        elapsed = perf_counter() - started
        io_after = self.io_model.snapshot()
        io_delta = {key: io_after[key] - io_before.get(key, 0.0) for key in io_after}
        return QueryResult(table=table, statement_type=kind, elapsed_seconds=elapsed, io=io_delta, plan_text=plan_text)

    def explain(self, sql: str) -> str:
        """Return the physical plan for a SELECT without executing it."""
        statement = parse(sql)
        if not isinstance(statement, SelectStatement):
            raise UnsupportedSQLError("EXPLAIN is only supported for SELECT statements")
        planned = plan_select(statement, self.catalog, self.io_model)
        return planned.root.explain()

    # -- DDL / DML ------------------------------------------------------------

    def _execute_create(self, statement: CreateTableStatement) -> Table:
        schema = Schema(ColumnDef(name, dtype) for name, dtype in statement.columns)
        return self.catalog.create_table(statement.name, schema)

    def _execute_insert(self, statement: InsertStatement) -> Table:
        table = self.catalog.table(statement.name)
        if statement.columns is None:
            table.append_rows(statement.rows)
        else:
            names = table.schema.names
            unknown = [c for c in statement.columns if c not in names]
            if unknown:
                raise SQLPlanningError(f"INSERT references unknown columns {unknown} of table {statement.name!r}")
            reordered = []
            for row in statement.rows:
                if len(row) != len(statement.columns):
                    raise SQLPlanningError(
                        f"INSERT row has {len(row)} values but {len(statement.columns)} columns were named"
                    )
                mapping = dict(zip(statement.columns, row))
                reordered.append(tuple(mapping.get(name) for name in names))
            table.append_rows(reordered)
        self.catalog.mark_dirty(statement.name)
        return table
