"""Recursive-descent parser for the supported SQL subset."""

from __future__ import annotations

from typing import Any

from repro.db.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.db.sql.ast import (
    CreateTableStatement,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    TableRef,
)
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.db.types import DataType
from repro.errors import SQLSyntaxError, UnsupportedSQLError

__all__ = ["parse", "parse_expression"]

_TYPE_NAMES = {
    "int": DataType.INT64,
    "integer": DataType.INT64,
    "bigint": DataType.INT64,
    "int64": DataType.INT64,
    "float": DataType.FLOAT64,
    "double": DataType.FLOAT64,
    "real": DataType.FLOAT64,
    "float64": DataType.FLOAT64,
    "text": DataType.STRING,
    "varchar": DataType.STRING,
    "string": DataType.STRING,
    "bool": DataType.BOOL,
    "boolean": DataType.BOOL,
}


def parse(sql: str) -> Statement:
    """Parse a single SQL statement and return its AST."""
    return _Parser(tokenize(sql)).parse_statement()


def parse_expression(text: str) -> Expression:
    """Parse a standalone scalar expression (used by tests and the formula API)."""
    parser = _Parser(tokenize(text))
    expr = parser._parse_expression()
    parser._expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _accept_keyword(self, *names: str) -> bool:
        if self._check_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise SQLSyntaxError(f"expected {name.upper()}, found {token.value!r}", token.position)
        return self._advance()

    def _accept_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> Token:
        token = self._peek()
        if token.type is not TokenType.PUNCTUATION or token.value != value:
            raise SQLSyntaxError(f"expected {value!r}, found {token.value!r}", token.position)
        return self._advance()

    def _accept_operator(self, *values: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in values:
            return self._advance()
        return None

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise SQLSyntaxError(f"expected an identifier, found {token.value!r}", token.position)
        self._advance()
        return token.value

    def _expect_eof(self) -> None:
        self._accept_punct(";")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise SQLSyntaxError(f"unexpected trailing input {token.value!r}", token.position)

    # -- statements ------------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self._check_keyword("select"):
            statement = self._parse_select()
        elif self._check_keyword("create"):
            statement = self._parse_create_table()
        elif self._check_keyword("insert"):
            statement = self._parse_insert()
        else:
            token = self._peek()
            raise UnsupportedSQLError(f"unsupported statement starting with {token.value!r}")
        self._expect_eof()
        return statement

    def _parse_create_table(self) -> CreateTableStatement:
        self._expect_keyword("create")
        self._expect_keyword("table")
        name = self._expect_identifier()
        self._expect_punct("(")
        columns: list[tuple[str, DataType]] = []
        while True:
            col_name = self._expect_identifier()
            type_token = self._peek()
            if type_token.type is not TokenType.IDENTIFIER:
                raise SQLSyntaxError(f"expected a type name, found {type_token.value!r}", type_token.position)
            self._advance()
            type_name = type_token.value.lower()
            if type_name not in _TYPE_NAMES:
                raise UnsupportedSQLError(f"unsupported column type {type_token.value!r}")
            columns.append((col_name, _TYPE_NAMES[type_name]))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return CreateTableStatement(name=name, columns=columns)

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        name = self._expect_identifier()
        columns: list[str] | None = None
        if self._accept_punct("("):
            columns = [self._expect_identifier()]
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        self._expect_keyword("values")
        rows: list[list[Any]] = []
        while True:
            self._expect_punct("(")
            row = [self._parse_literal_value()]
            while self._accept_punct(","):
                row.append(self._parse_literal_value())
            self._expect_punct(")")
            rows.append(row)
            if not self._accept_punct(","):
                break
        return InsertStatement(name=name, columns=columns, rows=rows)

    def _parse_literal_value(self) -> Any:
        expr = self._parse_expression()
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, UnaryOp) and expr.op == "-" and isinstance(expr.operand, Literal):
            return -expr.operand.value
        raise UnsupportedSQLError("INSERT VALUES must be literal constants")

    # -- SELECT -------------------------------------------------------------------

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")

        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        table: TableRef | None = None
        joins: list[JoinClause] = []
        if self._accept_keyword("from"):
            table = self._parse_table_ref()
            joins = self._parse_joins()

        where = self._parse_expression() if self._accept_keyword("where") else None

        group_by: list[Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expression())
            while self._accept_punct(","):
                group_by.append(self._parse_expression())

        having = self._parse_expression() if self._accept_keyword("having") else None

        order_by: list[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        limit: int | None = None
        offset = 0
        if self._accept_keyword("limit"):
            limit = self._parse_nonnegative_int("LIMIT")
            if self._accept_keyword("offset"):
                offset = self._parse_nonnegative_int("OFFSET")

        return SelectStatement(
            items=items,
            table=table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER:
            raise SQLSyntaxError(f"{clause} requires an integer", token.position)
        self._advance()
        try:
            value = int(token.value)
        except ValueError:
            raise SQLSyntaxError(f"{clause} requires an integer, got {token.value!r}", token.position) from None
        if value < 0:
            raise SQLSyntaxError(f"{clause} must be non-negative", token.position)
        return value

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return SelectItem(expression=Star())
        # Qualified star: ident.*
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek(1).type is TokenType.PUNCTUATION
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            qualifier = self._expect_identifier()
            self._advance()  # .
            self._advance()  # *
            return SelectItem(expression=Star(qualifier=qualifier))

        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return SelectItem(expression=expression, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return TableRef(name=name, alias=alias)

    def _parse_joins(self) -> list[JoinClause]:
        joins: list[JoinClause] = []
        while True:
            if self._accept_keyword("inner"):
                self._expect_keyword("join")
            elif self._check_keyword("join"):
                self._advance()
            elif self._check_keyword("left"):
                raise UnsupportedSQLError("only inner joins are supported")
            else:
                break
            table = self._parse_table_ref()
            self._expect_keyword("on")
            left_keys, right_keys = self._parse_join_condition()
            joins.append(JoinClause(table=table, left_keys=tuple(left_keys), right_keys=tuple(right_keys)))
        return joins

    def _parse_join_condition(self) -> tuple[list[str], list[str]]:
        left_keys: list[str] = []
        right_keys: list[str] = []
        while True:
            left = self._parse_qualified_name()
            operator = self._accept_operator("=")
            if operator is None:
                raise UnsupportedSQLError("JOIN ... ON only supports equality conditions")
            right = self._parse_qualified_name()
            left_keys.append(left)
            right_keys.append(right)
            if not self._accept_keyword("and"):
                break
        return left_keys, right_keys

    def _parse_qualified_name(self) -> str:
        name = self._expect_identifier()
        while self._accept_punct("."):
            name = f"{name}.{self._expect_identifier()}"
        return name

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_expression()
        ascending = True
        if self._accept_keyword("asc"):
            ascending = True
        elif self._accept_keyword("desc"):
            ascending = False
        return OrderItem(expression=expression, ascending=ascending)

    # -- expressions -----------------------------------------------------------------
    # Precedence (low to high): OR, AND, NOT, comparison, additive, multiplicative, unary, primary.

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("or"):
            right = self._parse_and()
            left = BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("and"):
            right = self._parse_not()
            left = BinaryOp("and", left, right)
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()

        if self._accept_keyword("is"):
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated=negated)

        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high)

        if self._check_keyword("not") and self._peek(1).is_keyword("in"):
            self._advance()
            self._advance()
            return UnaryOp("not", self._parse_in_list(left))

        if self._accept_keyword("in"):
            return self._parse_in_list(left)

        operator = self._accept_operator("=", "!=", "<", "<=", ">", ">=")
        if operator is not None:
            right = self._parse_additive()
            return BinaryOp(operator.value, left, right)
        return left

    def _parse_in_list(self, operand: Expression) -> InList:
        self._expect_punct("(")
        values = [self._parse_expression()]
        while self._accept_punct(","):
            values.append(self._parse_expression())
        self._expect_punct(")")
        return InList(operand, values)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            operator = self._accept_operator("+", "-")
            if operator is None:
                return left
            right = self._parse_multiplicative()
            left = BinaryOp(operator.value, left, right)

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            operator = self._accept_operator("*", "/", "%")
            if operator is None:
                return left
            right = self._parse_unary()
            left = BinaryOp(operator.value, left, right)

    def _parse_unary(self) -> Expression:
        operator = self._accept_operator("-", "+")
        if operator is not None:
            operand = self._parse_unary()
            if operator.value == "-":
                if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                    return Literal(-operand.value)
                return UnaryOp("-", operand)
            return operand
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))

        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)

        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)

        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression

        if token.type is TokenType.IDENTIFIER:
            # Function call?
            if self._peek(1).type is TokenType.PUNCTUATION and self._peek(1).value == "(":
                return self._parse_function_call()
            name = self._parse_qualified_name()
            return ColumnRef(name)

        raise SQLSyntaxError(f"unexpected token {token.value!r} in expression", token.position)

    def _parse_function_call(self) -> Expression:
        name = self._expect_identifier()
        self._expect_punct("(")
        args: list[Expression] = []
        if self._accept_punct(")"):
            return FunctionCall(name, tuple(args))
        # COUNT(*) has a bare star argument.
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            self._expect_punct(")")
            return FunctionCall(name, tuple())
        args.append(self._parse_expression())
        while self._accept_punct(","):
            args.append(self._parse_expression())
        self._expect_punct(")")
        return FunctionCall(name, tuple(args))
