"""Logical-to-physical planning for SELECT statements.

The planner turns a parsed :class:`~repro.db.sql.ast.SelectStatement` into a
tree of physical operators:

``Scan -> [HashJoin]* -> Filter(WHERE) -> Aggregate -> Filter(HAVING) ->
Project -> Distinct -> Sort -> Limit``

It also performs name resolution: qualified column references
(``m.intensity``) are rewritten to the actual column names of the (joined)
input schema, and aggregate function calls in the SELECT list are pulled out
into :class:`~repro.db.operators.aggregate.AggregateSpec` entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.catalog import Catalog
from repro.db.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.db.io_model import IOModel
from repro.db.operators import (
    Aggregate,
    AggregateSpec,
    Filter,
    HashJoin,
    Limit,
    Operator,
    Project,
    Projection,
    Sort,
    TableScan,
)
from repro.db.operators.aggregate import SUPPORTED_AGGREGATES
from repro.db.sql.ast import SelectStatement, Star
from repro.db.table import Table
from repro.errors import SQLPlanningError, UnsupportedSQLError

__all__ = ["plan_select", "PlannedQuery"]


@dataclass
class PlannedQuery:
    """The physical plan plus metadata the AQP engine wants to inspect."""

    root: Operator
    statement: SelectStatement
    base_tables: list[str]
    referenced_columns: dict[str, set[str]]


def plan_select(
    statement: SelectStatement,
    catalog: Catalog,
    io_model: IOModel | None = None,
) -> PlannedQuery:
    """Plan a SELECT statement against ``catalog``."""
    if statement.table is None:
        raise UnsupportedSQLError("SELECT without FROM is not supported")

    builder = _PlanBuilder(statement, catalog, io_model)
    return builder.build()


class _PlanBuilder:
    def __init__(self, statement: SelectStatement, catalog: Catalog, io_model: IOModel | None) -> None:
        self.statement = statement
        self.catalog = catalog
        self.io_model = io_model
        #: alias -> real table name
        self.alias_map: dict[str, str] = {}
        #: real table name -> set of its column names
        self.table_columns: dict[str, set[str]] = {}
        #: column names available after the FROM/JOIN stage
        self.available: set[str] = set()

    # -- entry point ---------------------------------------------------------

    def build(self) -> PlannedQuery:
        statement = self.statement
        plan = self._build_from_clause()

        if statement.where is not None:
            predicate = self._resolve(statement.where)
            plan = Filter(plan, predicate)

        aggregates, rewritten_items, rewritten_having = self._extract_aggregates()
        group_exprs = [self._resolve(e) for e in statement.group_by]

        if aggregates or group_exprs:
            plan = Aggregate(plan, group_exprs, aggregates)
            post_available = {self._group_key_name(e) for e in group_exprs} | {a.name for a in aggregates}
        else:
            post_available = set(self.available)

        if rewritten_having is not None:
            plan = Filter(plan, self._resolve(rewritten_having, post_available))

        projections = self._build_projections(rewritten_items, post_available, bool(aggregates or group_exprs))
        output_names = [p.name for p in projections]

        # ORDER BY may reference columns that are not in the SELECT list (e.g.
        # ``SELECT order_id FROM orders ORDER BY amount``); carry them through
        # the projection as hidden columns and strip them after the sort.
        hidden: list[Projection] = []
        if statement.order_by and not statement.distinct:
            hidden = self._hidden_sort_projections(output_names, post_available)
        plan = Project(plan, projections + hidden)

        if statement.distinct:
            plan = _Distinct(plan)

        if statement.order_by:
            plan = Sort(plan, self._resolve_order_keys(output_names + [p.name for p in hidden]))
            if hidden:
                plan = Project(plan, [Projection(ColumnRef(name), alias=name) for name in output_names])

        if statement.limit is not None:
            plan = Limit(plan, statement.limit, statement.offset)

        referenced = self._collect_referenced_columns()
        return PlannedQuery(
            root=plan,
            statement=statement,
            base_tables=list(dict.fromkeys(self.alias_map.values())),
            referenced_columns=referenced,
        )

    # -- FROM / JOIN ------------------------------------------------------------

    def _build_from_clause(self) -> Operator:
        statement = self.statement
        assert statement.table is not None
        base = self.catalog.table(statement.table.name)
        self.alias_map[statement.table.effective_name] = statement.table.name
        self.alias_map[statement.table.name] = statement.table.name
        self.table_columns[statement.table.name] = set(base.schema.names)
        self.available = set(base.schema.names)

        plan: Operator = TableScan(base, self.io_model, self._scan_columns(base), catalog=self.catalog)

        for join in statement.joins:
            right_table = self.catalog.table(join.table.name)
            self.alias_map[join.table.effective_name] = join.table.name
            self.alias_map[join.table.name] = join.table.name
            self.table_columns[join.table.name] = set(right_table.schema.names)

            right_scan = TableScan(right_table, self.io_model, self._scan_columns(right_table), catalog=self.catalog)
            left_keys, right_keys = self._resolve_join_keys(join.left_keys, join.right_keys, right_table)
            plan = HashJoin(plan, right_scan, left_keys, right_keys)

            for name in right_table.schema.names:
                if name in self.available:
                    self.available.add(f"{right_table.name}.{name}")
                else:
                    self.available.add(name)
        return plan

    def _scan_columns(self, table: Table) -> list[str] | None:
        """Restrict the scan to the columns the query references, when possible."""
        needed = self._all_statement_columns()
        if needed is None:
            return None
        names = []
        for name in table.schema.names:
            if name in needed or any(q.endswith(f".{name}") for q in needed):
                names.append(name)
        # Join keys are added later in resolution; be conservative and include
        # any column mentioned with this table's qualifier.
        return names if names else None

    def _all_statement_columns(self) -> set[str] | None:
        """Every column name (possibly qualified) the statement mentions."""
        statement = self.statement
        names: set[str] = set()
        for item in statement.items:
            if isinstance(item.expression, Star):
                return None  # SELECT * needs every column
            names |= item.expression.referenced_columns()
        for expr in statement.group_by:
            names |= expr.referenced_columns()
        if statement.where is not None:
            names |= statement.where.referenced_columns()
        if statement.having is not None:
            names |= statement.having.referenced_columns()
        for order in statement.order_by:
            names |= order.expression.referenced_columns()
        for join in statement.joins:
            names |= set(join.left_keys) | set(join.right_keys)
        # Strip qualifiers so scans can match plain column names too.
        stripped = set(names)
        for name in names:
            if "." in name:
                stripped.add(name.split(".")[-1])
        return stripped

    def _resolve_join_keys(
        self,
        left_keys: tuple[str, ...],
        right_keys: tuple[str, ...],
        right_table: Table,
    ) -> tuple[list[str], list[str]]:
        resolved_left: list[str] = []
        resolved_right: list[str] = []
        right_names = set(right_table.schema.names)
        for raw_left, raw_right in zip(left_keys, right_keys):
            left_name = self._strip_qualifier(raw_left)
            right_name = self._strip_qualifier(raw_right)
            left_qualifier = self._qualifier_of(raw_left)
            right_qualifier = self._qualifier_of(raw_right)

            left_is_right_side = self._belongs_to(left_qualifier, right_table.name) or (
                left_qualifier is None and left_name in right_names and left_name not in self.available
            )
            if left_is_right_side:
                left_name, right_name = right_name, left_name

            if left_name not in self.available:
                raise SQLPlanningError(f"join key {raw_left!r} not found in the left input")
            if right_name not in right_names:
                raise SQLPlanningError(f"join key {raw_right!r} not found in table {right_table.name!r}")
            resolved_left.append(left_name)
            resolved_right.append(right_name)
        return resolved_left, resolved_right

    def _belongs_to(self, qualifier: str | None, table_name: str) -> bool:
        if qualifier is None:
            return False
        return self.alias_map.get(qualifier) == table_name

    @staticmethod
    def _strip_qualifier(name: str) -> str:
        return name.split(".")[-1]

    @staticmethod
    def _qualifier_of(name: str) -> str | None:
        return name.split(".")[0] if "." in name else None

    # -- name resolution -----------------------------------------------------------

    def _resolve(self, expression: Expression, available: set[str] | None = None) -> Expression:
        """Rewrite qualified column references to available column names."""
        available = self.available if available is None else available

        if isinstance(expression, ColumnRef):
            return ColumnRef(self._resolve_column_name(expression.name, available))
        if isinstance(expression, Literal):
            return expression
        if isinstance(expression, BinaryOp):
            return BinaryOp(expression.op, self._resolve(expression.left, available), self._resolve(expression.right, available))
        if isinstance(expression, UnaryOp):
            return UnaryOp(expression.op, self._resolve(expression.operand, available))
        if isinstance(expression, FunctionCall):
            return FunctionCall(expression.name, tuple(self._resolve(a, available) for a in expression.args))
        if isinstance(expression, Between):
            return Between(
                self._resolve(expression.operand, available),
                self._resolve(expression.low, available),
                self._resolve(expression.high, available),
            )
        if isinstance(expression, InList):
            return InList(
                self._resolve(expression.operand, available),
                [self._resolve(v, available) for v in expression.values],
            )
        if isinstance(expression, IsNull):
            return IsNull(self._resolve(expression.operand, available), expression.negated)
        raise SQLPlanningError(f"cannot resolve expression of type {type(expression).__name__}")

    def _resolve_column_name(self, name: str, available: set[str]) -> str:
        if name in available:
            return name
        if "." in name:
            qualifier, _, bare = name.rpartition(".")
            real_table = self.alias_map.get(qualifier)
            if real_table is not None:
                qualified = f"{real_table}.{bare}"
                if qualified in available:
                    return qualified
            if bare in available:
                return bare
        raise SQLPlanningError(f"column {name!r} not found; available: {sorted(available)}")

    # -- aggregates ---------------------------------------------------------------------

    def _extract_aggregates(self):
        """Pull aggregate calls out of the SELECT/HAVING expressions.

        Returns ``(specs, rewritten_select_items, rewritten_having)`` where
        the rewritten expressions reference the aggregate outputs by name.
        """
        statement = self.statement
        specs: list[AggregateSpec] = []
        spec_index: dict[str, str] = {}

        def rewrite(expression: Expression) -> Expression:
            if isinstance(expression, FunctionCall) and expression.name.lower() in SUPPORTED_AGGREGATES:
                if len(expression.args) > 1:
                    raise UnsupportedSQLError(f"aggregate {expression.name} takes at most one argument")
                argument = self._resolve(expression.args[0]) if expression.args else None
                key = f"{expression.name.lower()}({argument})"
                if key not in spec_index:
                    spec = AggregateSpec(expression.name.lower(), argument)
                    specs.append(spec)
                    spec_index[key] = spec.name
                return ColumnRef(spec_index[key])
            if isinstance(expression, BinaryOp):
                return BinaryOp(expression.op, rewrite(expression.left), rewrite(expression.right))
            if isinstance(expression, UnaryOp):
                return UnaryOp(expression.op, rewrite(expression.operand))
            if isinstance(expression, FunctionCall):
                return FunctionCall(expression.name, tuple(rewrite(a) for a in expression.args))
            if isinstance(expression, Between):
                return Between(rewrite(expression.operand), rewrite(expression.low), rewrite(expression.high))
            if isinstance(expression, InList):
                return InList(rewrite(expression.operand), [rewrite(v) for v in expression.values])
            if isinstance(expression, IsNull):
                return IsNull(rewrite(expression.operand), expression.negated)
            return expression

        rewritten_items = []
        for item in statement.items:
            if isinstance(item.expression, Star):
                rewritten_items.append(item)
            else:
                rewritten_items.append(type(item)(expression=rewrite(item.expression), alias=item.alias))

        rewritten_having = rewrite(statement.having) if statement.having is not None else None
        return specs, rewritten_items, rewritten_having

    def _group_key_name(self, expression: Expression) -> str:
        if isinstance(expression, ColumnRef):
            return expression.name
        return expression.output_name()

    # -- projections ------------------------------------------------------------------------

    def _build_projections(self, items, post_available: set[str], is_aggregate: bool) -> list[Projection]:
        projections: list[Projection] = []
        for item in items:
            if isinstance(item.expression, Star):
                if is_aggregate:
                    raise UnsupportedSQLError("SELECT * cannot be combined with GROUP BY / aggregates")
                source = self._star_columns(item.expression)
                for name in source:
                    projections.append(Projection(ColumnRef(name), alias=name.split(".")[-1] if "." in name else name))
                continue
            resolved = self._resolve(item.expression, post_available)
            alias = item.alias
            if alias is None and isinstance(item.expression, ColumnRef):
                alias = self._strip_qualifier(item.expression.name)
            projections.append(Projection(resolved, alias=alias))
        if not projections:
            raise SQLPlanningError("SELECT list is empty")
        return projections

    def _star_columns(self, star: Star) -> list[str]:
        if star.qualifier is not None:
            real = self.alias_map.get(star.qualifier)
            if real is None:
                raise SQLPlanningError(f"unknown table alias {star.qualifier!r} in qualified star")
            names = []
            for name in sorted(self.table_columns[real]):
                qualified = f"{real}.{name}"
                names.append(qualified if qualified in self.available else name)
            return names
        # Unqualified star: every available column, base-table order first.
        ordered: list[str] = []
        for table_name in dict.fromkeys(self.alias_map.values()):
            table = self.catalog.table(table_name)
            for name in table.schema.names:
                qualified = f"{table_name}.{name}"
                if qualified in self.available and qualified not in ordered:
                    ordered.append(qualified)
                elif name in self.available and name not in ordered:
                    ordered.append(name)
        return ordered

    # -- ORDER BY ----------------------------------------------------------------------------

    def _hidden_sort_projections(
        self, output_names: list[str], post_available: set[str]
    ) -> list[Projection]:
        """Projections for ORDER BY columns missing from the SELECT list."""
        hidden: list[Projection] = []
        seen: set[str] = set(output_names)
        for order in self.statement.order_by:
            expression = order.expression
            if not isinstance(expression, ColumnRef):
                continue
            bare = self._strip_qualifier(expression.name)
            if expression.name in seen or bare in seen:
                continue
            try:
                resolved = self._resolve_column_name(expression.name, post_available)
            except SQLPlanningError:
                continue
            alias = bare
            if alias in seen:
                alias = f"__sort_{bare}"
            hidden.append(Projection(ColumnRef(resolved), alias=alias))
            seen.add(alias)
        return hidden

    def _resolve_order_keys(self, output_names: list[str]) -> list[tuple[str, bool]]:
        keys: list[tuple[str, bool]] = []
        for order in self.statement.order_by:
            expression = order.expression
            if isinstance(expression, Literal) and isinstance(expression.value, int):
                ordinal = expression.value
                if not 1 <= ordinal <= len(output_names):
                    raise SQLPlanningError(f"ORDER BY ordinal {ordinal} out of range")
                keys.append((output_names[ordinal - 1], order.ascending))
                continue
            if isinstance(expression, ColumnRef):
                name = expression.name
                bare = self._strip_qualifier(name)
                if name in output_names:
                    keys.append((name, order.ascending))
                    continue
                if bare in output_names:
                    keys.append((bare, order.ascending))
                    continue
            raise UnsupportedSQLError(
                "ORDER BY only supports output column names or ordinals in this SQL subset"
            )
        return keys

    # -- metadata ---------------------------------------------------------------------------------

    def _collect_referenced_columns(self) -> dict[str, set[str]]:
        """Map base table name -> set of its columns the statement references."""
        needed = self._all_statement_columns()
        referenced: dict[str, set[str]] = {}
        for table_name in dict.fromkeys(self.alias_map.values()):
            columns = self.table_columns[table_name]
            if needed is None:
                referenced[table_name] = set(columns)
            else:
                referenced[table_name] = {c for c in columns if c in needed}
        return referenced


class _Distinct(Operator):
    """Remove duplicate output rows (used for SELECT DISTINCT).

    Vectorised: every output column is factorised into dense codes (the same
    NULL-aware machinery grouped aggregation uses) and the first occurrence
    of each distinct composite code is kept, in input order — identical to
    the old set-of-row-tuples loop.
    """

    def __init__(self, child: Operator) -> None:
        self.child = child

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self) -> str:
        return "Distinct"

    def execute(self) -> Table:
        from repro.db.operators.codes import factorize_keys

        table = self.child.execute()
        if table.num_rows == 0:
            return table
        key_columns = [table.column(name) for name in table.schema.names]
        _, first_rows, _ = factorize_keys(key_columns, table.num_rows)
        # first_rows is ascending (groups are numbered by first occurrence),
        # so taking it preserves the original row order of survivors.
        return table.take(first_rows)
