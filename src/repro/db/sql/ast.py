"""Logical AST for parsed SQL statements.

Scalar expressions reuse :mod:`repro.db.expressions`; the nodes here model
statement-level structure (SELECT shape, FROM clause, DDL and DML).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.db.expressions import Expression
from repro.db.types import DataType

__all__ = [
    "SelectItem",
    "Star",
    "TableRef",
    "JoinClause",
    "OrderItem",
    "SelectStatement",
    "CreateTableStatement",
    "InsertStatement",
    "Statement",
]


@dataclass(frozen=True)
class Star:
    """``SELECT *`` (optionally qualified, e.g. ``t.*`` — qualifier ignored)."""

    qualifier: str | None = None


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list: an expression (or ``*``) plus an alias."""

    expression: Expression | Star
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A table reference in the FROM clause, with optional alias."""

    name: str
    alias: str | None = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """``JOIN <table> ON <left_col> = <right_col> [AND ...]`` (inner only)."""

    table: TableRef
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    ascending: bool = True


@dataclass
class SelectStatement:
    """A parsed SELECT query."""

    items: list[SelectItem]
    table: TableRef | None
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0
    distinct: bool = False


@dataclass
class CreateTableStatement:
    """``CREATE TABLE name (col type, ...)``."""

    name: str
    columns: list[tuple[str, DataType]]


@dataclass
class InsertStatement:
    """``INSERT INTO name [(cols)] VALUES (...), (...)``."""

    name: str
    columns: list[str] | None
    rows: list[list[Any]]


Statement = SelectStatement | CreateTableStatement | InsertStatement
