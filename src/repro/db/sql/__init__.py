"""SQL front-end: lexer, parser, logical AST, planner and executor.

The supported dialect is a deliberately small subset of SQL — enough to
express every query in the paper and in the benchmark suite:

* ``SELECT`` lists with expressions, aliases, ``*`` and aggregate functions,
* ``FROM`` with inner ``JOIN ... ON`` equi-joins,
* ``WHERE`` with arithmetic, comparisons, ``AND``/``OR``/``NOT``,
  ``BETWEEN``, ``IN`` and ``IS [NOT] NULL``,
* ``GROUP BY``, ``HAVING``, ``ORDER BY``, ``LIMIT``/``OFFSET``,
* ``CREATE TABLE`` and ``INSERT INTO ... VALUES``.
"""

from repro.db.sql.lexer import tokenize, Token, TokenType
from repro.db.sql.parser import parse
from repro.db.sql.planner import plan_select
from repro.db.sql.executor import SQLExecutor

__all__ = ["tokenize", "Token", "TokenType", "parse", "plan_select", "SQLExecutor"]
