"""In-database user-defined functions — the "embedded statistical environment".

The paper relies on databases that embed a statistical environment (R in
Oracle / SAP HANA / MonetDB) so that model fitting runs *inside* the engine
and can therefore be intercepted.  This module is that embedding for the
reproduction: users register Python callables as scalar or table UDFs, and
the special :func:`fit_udf` factory wraps a model-fitting routine so the
database sees which table, columns and model family were involved — exactly
the hook the harvester (:mod:`repro.core.harvester`) needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.db.table import Table
from repro.errors import ExecutionError

__all__ = ["UDFRegistry", "ScalarUDF", "TableUDF", "FitInvocation"]


@dataclass(frozen=True)
class ScalarUDF:
    """A registered scalar function: vectorised ``f(*arrays) -> array``."""

    name: str
    function: Callable[..., np.ndarray]
    arity: int

    def __call__(self, *arrays: np.ndarray) -> np.ndarray:
        if len(arrays) != self.arity:
            raise ExecutionError(f"UDF {self.name!r} expects {self.arity} arguments, got {len(arrays)}")
        return np.asarray(self.function(*arrays))


@dataclass(frozen=True)
class TableUDF:
    """A registered table function: ``f(table, **params) -> Table``."""

    name: str
    function: Callable[..., Table]

    def __call__(self, table: Table, **params: Any) -> Table:
        return self.function(table, **params)


@dataclass
class FitInvocation:
    """A record of one in-database fitting call, as seen by the engine.

    This is the raw material the harvester consumes: which table was fitted,
    which columns played the role of inputs and output, which model family /
    callable was used, optional grouping keys, and the result the statistical
    routine returned to the user.
    """

    table_name: str
    input_columns: list[str]
    output_column: str
    model_name: str
    group_by: list[str] = field(default_factory=list)
    parameters: dict[str, Any] = field(default_factory=dict)
    result: Any = None


class UDFRegistry:
    """Registry of scalar and table UDFs plus the fit-invocation log."""

    def __init__(self) -> None:
        self._scalars: dict[str, ScalarUDF] = {}
        self._tables: dict[str, TableUDF] = {}
        self._fit_log: list[FitInvocation] = []
        self._fit_listeners: list[Callable[[FitInvocation], None]] = []

    # -- registration ----------------------------------------------------------

    def register_scalar(self, name: str, function: Callable[..., np.ndarray], arity: int) -> ScalarUDF:
        udf = ScalarUDF(name=name.lower(), function=function, arity=arity)
        self._scalars[udf.name] = udf
        return udf

    def register_table(self, name: str, function: Callable[..., Table]) -> TableUDF:
        udf = TableUDF(name=name.lower(), function=function)
        self._tables[udf.name] = udf
        return udf

    def scalar(self, name: str) -> ScalarUDF:
        try:
            return self._scalars[name.lower()]
        except KeyError:
            raise ExecutionError(f"unknown scalar UDF {name!r}") from None

    def table_function(self, name: str) -> TableUDF:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise ExecutionError(f"unknown table UDF {name!r}") from None

    def has_scalar(self, name: str) -> bool:
        return name.lower() in self._scalars

    # -- fit interception ---------------------------------------------------------

    def add_fit_listener(self, listener: Callable[[FitInvocation], None]) -> None:
        """Register a callback invoked for every in-database fit (the harvester)."""
        self._fit_listeners.append(listener)

    def record_fit(self, invocation: FitInvocation) -> None:
        """Log a fit invocation and notify listeners."""
        self._fit_log.append(invocation)
        for listener in self._fit_listeners:
            listener(invocation)

    @property
    def fit_log(self) -> list[FitInvocation]:
        return list(self._fit_log)

    def clear_fit_log(self) -> None:
        self._fit_log.clear()
