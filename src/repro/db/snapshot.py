"""Immutable catalog snapshots — the storage half of snapshot isolation.

A :class:`CatalogSnapshot` is a frozen view of the catalog taken at one
commit boundary: the version counter and one pinned :class:`~repro.db.
table.Table` per base table.  Pinning is O(tables), not O(rows): a pinned
table shares the live table's immutable column objects, so the snapshot
costs a dict copy per table and no data movement.  ``Table.append_rows``
*replaces* a table's column mapping rather than mutating it, which is
exactly what makes the shared columns safe — a concurrent ingest commit
builds new columns and swaps them in; the pinned view keeps the old ones.

Readers enter a snapshot with :meth:`repro.db.catalog.Catalog.reading`,
after which every catalog lookup on that thread resolves through the pin.
Statistics are computed lazily *from the pinned tables* (seeded with the
live catalog's cached stats when they were already fresh at pin time), so
a planner probing a snapshot never observes statistics newer than the data
it will scan.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from repro.db.stats import TableStats, compute_table_stats
from repro.db.table import Table
from repro.errors import CatalogError

__all__ = ["CatalogSnapshot", "PinStack"]


class PinStack(threading.local):
    """Per-thread stack of pinned snapshots (innermost pin wins).

    Subclassing ``threading.local`` runs ``__init__`` once per accessing
    thread, so ``.pins`` always exists: readers get a plain attribute load
    instead of ``getattr(local, "pins", None)``, whose internal
    AttributeError on never-pinned threads costs close to a microsecond on
    the version-check path the plan cache hits for every query.
    """

    def __init__(self) -> None:
        self.pins: list = []


class CatalogSnapshot:
    """A frozen ``(version, tables, stats)`` view of one catalog commit."""

    __slots__ = ("version", "_tables", "_stats", "_meta")

    def __init__(
        self,
        version: int,
        tables: dict[str, Table],
        stats: dict[str, TableStats] | None = None,
        meta: dict[str, dict[str, Any]] | None = None,
    ) -> None:
        self.version = version
        self._tables = tables
        self._stats: dict[str, TableStats] = dict(stats) if stats else {}
        #: Per-table metadata captured in the same commit as the tables
        #: (see :meth:`repro.db.catalog.Catalog.set_table_meta`).  The
        #: archive tier keeps its stats overlay and segment list here;
        #: reading the *live* values from a pinned thread would pair one
        #: commit's tables with another commit's archive state — e.g. a
        #: live overlay over pinned stats double-counts rows archived
        #: after the pin.
        self._meta = {name: dict(entry) for name, entry in meta.items()} if meta else {}

    # -- lookup (mirrors the Catalog read surface) ----------------------------

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r} in snapshot@v{self.version}; known tables: {sorted(self._tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def stats(self, name: str) -> TableStats:
        """Statistics of the *pinned* table (lazily computed, then cached).

        A duplicate compute under a thread race is harmless — both threads
        derive identical stats from the same immutable pinned table and the
        dict store is atomic — so no lock is needed here.
        """
        cached = self._stats.get(name)
        if cached is None:
            cached = compute_table_stats(self.table(name))
            self._stats[name] = cached
        overlay = self.table_meta(name, "stats_overlay")
        return overlay(cached) if overlay is not None else cached

    def table_meta(self, name: str, key: str, default: Any = None) -> Any:
        """Per-table metadata frozen at capture time."""
        entry = self._meta.get(name)
        if entry is None:
            return default
        return entry.get(key, default)

    def total_bytes(self) -> int:
        return sum(table.byte_size() for table in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CatalogSnapshot(version={self.version}, tables={sorted(self._tables)})"
