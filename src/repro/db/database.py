"""The :class:`Database` façade: catalog + SQL executor + IO model + UDFs.

This is the substrate object the rest of the library builds on.  The model
harvesting system (:class:`repro.core.system.LawsDatabase`) wraps a
``Database`` and adds the model store, the interception hooks and the
approximate query engine.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Mapping, Sequence

from repro.db.catalog import Catalog
from repro.db.io_model import IOModel, IOParameters
from repro.db.schema import Schema
from repro.db.sql.executor import QueryResult, SQLExecutor
from repro.db.stats import TableStats
from repro.db.table import Table
from repro.db.udf import UDFRegistry

__all__ = ["Database"]


class Database:
    """An in-memory columnar relational database with a SQL subset."""

    def __init__(self, io_parameters: IOParameters | None = None) -> None:
        self.catalog = Catalog()
        self.io_model = IOModel(io_parameters)
        self.udfs = UDFRegistry()
        self._executor = SQLExecutor(self.catalog, self.io_model)

    # -- DDL / data loading -----------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty table with the given schema."""
        return self.catalog.create_table(name, schema)

    def register_table(self, table: Table, replace: bool = False) -> Table:
        """Register an existing :class:`Table` under its own name."""
        return self.catalog.register_table(table, replace=replace)

    def load_dict(self, name: str, data: Mapping[str, Sequence[Any]], schema: Schema | None = None) -> Table:
        """Create and register a table from a column mapping (types inferred)."""
        table = Table.from_dict(name, data, schema)
        return self.catalog.register_table(table)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def insert_rows(self, name: str, rows: Sequence[Sequence[Any]]) -> None:
        """Append row tuples to an existing table (one atomic commit).

        The append and its catalog version bump happen under the commit
        lock, so a concurrent :meth:`~repro.db.catalog.Catalog.snapshot`
        sees either none of the batch or all of it with the bumped version
        — batch-granular commits, never a torn half-batch.
        """
        with self.catalog.commit_lock:
            self.catalog.live_table(name).append_rows(rows)
            self.catalog.mark_dirty(name)

    def append_batch(self, name: str, rows: Sequence[Sequence[Any]]) -> tuple[int, int]:
        """Append row tuples and return the half-open row range they occupy.

        The streaming ingestor uses the returned ``(start, end)`` range to
        tell downstream listeners (drift monitors, maintenance) exactly which
        rows a batch contributed.
        """
        with self.catalog.commit_lock:
            table = self.catalog.live_table(name)
            start = table.num_rows
            self.insert_rows(name, rows)
            return start, table.num_rows

    # -- lookup ------------------------------------------------------------------

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def has_table(self, name: str) -> bool:
        return self.catalog.has_table(name)

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def stats(self, name: str) -> TableStats:
        return self.catalog.stats(name)

    def set_stats_overlay(self, name: str, overlay: Callable[[TableStats], TableStats]) -> None:
        """Serve ``stats(name)`` through ``overlay`` (archive-tier merging).

        Overlays live in the catalog and are captured by snapshots, so a
        pinned reader keeps the overlay state of its commit, not the live one.
        """
        self.catalog.set_stats_overlay(name, overlay)

    def clear_stats_overlay(self, name: str) -> None:
        self.catalog.clear_stats_overlay(name)

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self):
        """Pin a consistent view of every table (see :meth:`Catalog.snapshot`)."""
        return self.catalog.snapshot()

    def reading(self, snapshot):
        """Context manager: run this thread's reads against ``snapshot``."""
        return self.catalog.reading(snapshot)

    # -- SQL ------------------------------------------------------------------------

    def sql(self, query: str) -> QueryResult:
        """Execute a SQL statement and return its result."""
        return self._executor.execute(query)

    def parse_sql(self, query: str):
        """Parse a SQL statement through the executor's LRU parse cache.

        Other front-ends (the approximate engine, the unified planner)
        analyse the same statement text repeatedly; routing them through the
        shared cache means each distinct statement is parsed once.
        """
        return self._executor.parse_statement(query)

    @property
    def executor(self) -> SQLExecutor:
        """The SQL executor (exposes the parse/plan cache to the planner)."""
        return self._executor

    def query(self, query: str) -> Table:
        """Execute a SELECT and return just the result table."""
        return self._executor.execute(query).table

    def explain(self, query: str) -> str:
        """Return the physical plan text for a SELECT statement."""
        return self._executor.explain(query)

    def plan_cache_info(self) -> dict[str, int]:
        """Hit/miss/invalidation counters of the SQL plan cache."""
        return self._executor.plan_cache_info()

    def clear_plan_cache(self) -> None:
        """Drop all cached SQL parses and plans."""
        self._executor.clear_plan_cache()

    # -- accounting -------------------------------------------------------------------

    def reset_io(self) -> None:
        """Reset the simulated IO counters (benchmarks call this between runs)."""
        self.io_model.reset()

    def io_snapshot(self) -> dict[str, float]:
        return self.io_model.snapshot()

    def total_bytes(self) -> int:
        """Total nominal storage footprint of all tables."""
        return self.catalog.total_bytes()

    def fingerprint(self) -> str:
        """Deterministic digest of every table's name, schema and rows.

        The chaos suite diffs a faulted run against a never-faulted oracle:
        equal fingerprints mean byte-equal logical content, without
        per-table row-by-row assertions.  Row order is part of the digest —
        appends are ordered, so two runs of the same workload must agree.
        """
        digest = hashlib.sha256()
        for name in sorted(self.table_names()):
            table = self.table(name)
            digest.update(name.encode("utf-8"))
            digest.update(repr(table.schema.names).encode("utf-8"))
            for row in table.to_rows():
                digest.update(repr(row).encode("utf-8"))
        return digest.hexdigest()

    def describe(self) -> str:
        return self.catalog.describe()
