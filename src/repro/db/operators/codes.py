"""Shared key-factorisation helpers for the vectorised operators.

Grouped aggregation, hash join and DISTINCT all reduce key columns to dense
integer codes ranked in ascending value order (the order ``np.unique``
produces).  For integer-like keys whose value range is not much larger than
the row count, the ranking is computed with a histogram in O(n) instead of
a sort.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.column import Column

__all__ = ["rank_codes", "argsort_codes", "factorize_keys", "CodeSpacePacker"]


class CodeSpacePacker:
    """Packs per-column dense codes into one composite int64 code per row.

    Maintains aligned packed-code arrays (one per input relation — grouped
    aggregation packs one, the hash join packs the probe and build sides in
    lockstep) and the running size of the composite code space.  The space
    is re-densified via ``np.unique`` *before* any multiply that could
    overflow int64 or outgrow the scratch tables downstream consumers
    allocate, so arbitrarily many / arbitrarily wide key columns stay exact.
    """

    def __init__(self, parts: list[np.ndarray], space: int = 1) -> None:
        self.parts = [np.asarray(p, dtype=np.int64) for p in parts]
        self.space = int(space)
        self._limit = 4 * sum(len(p) for p in self.parts) + 64

    def add(self, codes: list[np.ndarray], width: int) -> None:
        """Append one key column's dense codes (``[0, width)`` per part)."""
        if self.space > self._limit:
            self._densify()
        self.parts = [part * width + c for part, c in zip(self.parts, codes)]
        self.space *= width

    def _densify(self) -> None:
        combined = np.concatenate(self.parts) if len(self.parts) > 1 else self.parts[0]
        uniques, inverse = np.unique(combined, return_inverse=True)
        inverse = inverse.astype(np.int64, copy=False)
        densified = []
        offset = 0
        for part in self.parts:
            densified.append(inverse[offset : offset + len(part)])
            offset += len(part)
        self.parts = densified
        self.space = len(uniques)

    def finish(self) -> tuple[list[np.ndarray], int]:
        """Final packed codes and code-space size, densified if oversized."""
        if self.space > self._limit:
            self._densify()
        return self.parts, self.space


def factorize_keys(key_columns: "list[Column]", num_rows: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Factorise composite group keys into dense integer codes.

    Returns ``(group_ids, first_rows, num_groups)`` where ``group_ids`` maps
    each row to a group in ``[0, num_groups)`` numbered by first occurrence,
    and ``first_rows[g]`` is the row index where group ``g`` first appears.
    NULL key components (validity or in-array sentinel) are their own code,
    so NULL keys group together — matching python-value hashing.  Used by
    grouped aggregation and by DISTINCT (every output column is a key).
    """
    group_ids: np.ndarray | None = None
    space = 0
    packer: CodeSpacePacker | None = None
    for column in key_columns:
        nulls = column.null_mask()
        valid = ~nulls
        codes = np.zeros(num_rows, dtype=np.int64)  # 0 = NULL bucket
        cardinality = 0
        if valid.any():
            value_codes, cardinality = rank_codes(column.values[valid])
            codes[valid] = value_codes + 1
        if group_ids is None:
            # A single factorised column is already dense: codes 1..cardinality
            # all occur by construction, and 0 occurs iff NULLs exist.
            if nulls.any():
                group_ids = codes
                space = cardinality + 1
            else:
                group_ids = codes - 1
                space = cardinality
        else:
            if packer is None:
                # The packer re-densifies before the composite code space
                # could overflow int64 under many / wide key columns.
                packer = CodeSpacePacker([group_ids], space)
            packer.add([codes], cardinality + 1)

    assert group_ids is not None
    if packer is not None:
        unique_packed, group_ids = np.unique(packer.parts[0], return_inverse=True)
        num_groups = len(unique_packed)
    else:
        num_groups = space

    # Renumber groups by first occurrence so output order matches the
    # insertion order of the old dict-based implementation.  The reversed
    # scatter makes the *earliest* row win each group's slot without a sort.
    first = np.empty(num_groups, dtype=np.int64)
    first[group_ids[::-1]] = np.arange(num_rows - 1, -1, -1, dtype=np.int64)
    order = np.argsort(first, kind="stable")  # num_groups elements, not num_rows
    rank = np.empty(num_groups, dtype=np.int64)
    rank[order] = np.arange(num_groups)
    return rank[group_ids], first[order], num_groups


def rank_codes(values: np.ndarray) -> tuple[np.ndarray, int]:
    """Dense 0-based codes (ascending value rank) for a NULL-free array.

    Returns ``(codes, cardinality)`` where equal values share a code and
    codes are numbered by ascending value, exactly like
    ``np.unique(values, return_inverse=True)``.
    """
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    if values.dtype.kind in "iub":
        ints = values.astype(np.int64, copy=False)
        vmin = int(ints.min())
        vmax = int(ints.max())
        span = vmax - vmin + 1
        if span <= 4 * n + 64:
            shifted = ints - vmin
            present = np.bincount(shifted, minlength=span) > 0
            ranks = np.cumsum(present) - 1
            return ranks[shifted].astype(np.int64, copy=False), int(present.sum())
    uniques, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64, copy=False), len(uniques)


def argsort_codes(codes: np.ndarray, cardinality: int) -> np.ndarray:
    """Stable argsort of dense codes, via radix sort when codes fit uint16.

    NumPy's stable sort for small unsigned integer dtypes is a radix sort;
    for the typical group count (well under 2**16) this is several times
    faster than a comparison sort of int64 codes.
    """
    if 0 < cardinality <= np.iinfo(np.uint16).max:
        return np.argsort(codes.astype(np.uint16), kind="stable")
    return np.argsort(codes, kind="stable")
