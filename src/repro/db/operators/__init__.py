"""Physical query operators.

Each operator consumes and produces :class:`~repro.db.table.Table` objects.
The executor wires them into a tree; the leaves are
:class:`~repro.db.operators.scan.TableScan` nodes that charge the simulated
IO model.
"""

from repro.db.operators.base import Operator
from repro.db.operators.scan import TableScan, MaterializedInput
from repro.db.operators.filter import Filter
from repro.db.operators.project import Project, Projection
from repro.db.operators.aggregate import Aggregate, AggregateSpec
from repro.db.operators.join import HashJoin
from repro.db.operators.sort import Sort
from repro.db.operators.limit import Limit

__all__ = [
    "Operator",
    "TableScan",
    "MaterializedInput",
    "Filter",
    "Project",
    "Projection",
    "Aggregate",
    "AggregateSpec",
    "HashJoin",
    "Sort",
    "Limit",
]
