"""Group-by / aggregate operator.

Supports the aggregate functions the paper's queries and the TPC-DS-lite
benchmark need: COUNT, COUNT(*), SUM, AVG, MIN, MAX, STDDEV and VAR.
Grouping is hash-based on the python values of the key columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.db.column import Column
from repro.db.expressions import ColumnRef, Expression
from repro.db.operators.base import Operator
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ExecutionError

__all__ = ["AggregateSpec", "Aggregate", "SUPPORTED_AGGREGATES", "compute_aggregate"]

SUPPORTED_AGGREGATES = {"count", "sum", "avg", "min", "max", "stddev", "var"}


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: function, input expression (None for COUNT(*)), alias."""

    function: str
    expression: Expression | None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.function.lower() not in SUPPORTED_AGGREGATES:
            raise ExecutionError(
                f"unsupported aggregate function {self.function!r}; "
                f"supported: {sorted(SUPPORTED_AGGREGATES)}"
            )

    @property
    def name(self) -> str:
        if self.alias is not None:
            return self.alias
        arg = "*" if self.expression is None else self.expression.output_name()
        return f"{self.function.lower()}({arg})"

    @property
    def output_dtype(self) -> DataType:
        if self.function.lower() == "count":
            return DataType.INT64
        return DataType.FLOAT64


def compute_aggregate(function: str, values: np.ndarray) -> Any:
    """Compute a single aggregate over non-NULL float values."""
    function = function.lower()
    if function == "count":
        return int(len(values))
    if len(values) == 0:
        return None
    if function == "sum":
        return float(np.sum(values))
    if function == "avg":
        return float(np.mean(values))
    if function == "min":
        return float(np.min(values))
    if function == "max":
        return float(np.max(values))
    if function == "stddev":
        return float(np.std(values, ddof=1)) if len(values) > 1 else 0.0
    if function == "var":
        return float(np.var(values, ddof=1)) if len(values) > 1 else 0.0
    raise ExecutionError(f"unsupported aggregate function {function!r}")


class Aggregate(Operator):
    """Hash aggregation with optional grouping keys."""

    def __init__(
        self,
        child: Operator,
        group_by: list[Expression],
        aggregates: list[AggregateSpec],
    ) -> None:
        self.child = child
        self.group_by = group_by
        self.aggregates = aggregates

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(str(e) for e in self.group_by)
        aggs = ", ".join(a.name for a in self.aggregates)
        return f"Aggregate(group_by=[{keys}], aggregates=[{aggs}])"

    def execute(self) -> Table:
        table = self.child.execute()
        return self.apply(table)

    def apply(self, table: Table) -> Table:
        """Aggregate an already-materialised table (shared with the AQP engine)."""
        key_columns = [expr.evaluate(table) for expr in self.group_by]
        agg_inputs: list[Column | None] = []
        for spec in self.aggregates:
            if spec.expression is None:
                agg_inputs.append(None)
            else:
                agg_inputs.append(spec.expression.evaluate(table))

        if not self.group_by:
            return self._global_aggregate(table, agg_inputs)
        return self._grouped_aggregate(table, key_columns, agg_inputs)

    # -- helpers -----------------------------------------------------------------

    def _output_schema(self) -> Schema:
        defs = []
        for expr in self.group_by:
            name = expr.output_name() if not isinstance(expr, ColumnRef) else expr.name
            # dtype is resolved at execute time; placeholder is FLOAT64 and fixed below.
            defs.append(ColumnDef(name, DataType.FLOAT64))
        for spec in self.aggregates:
            defs.append(ColumnDef(spec.name, spec.output_dtype))
        return Schema(defs)

    def _global_aggregate(self, table: Table, agg_inputs: list[Column | None]) -> Table:
        values: dict[str, list[Any]] = {}
        defs: list[ColumnDef] = []
        for spec, column in zip(self.aggregates, agg_inputs):
            result = self._aggregate_one(spec, column, table.num_rows)
            values[spec.name] = [result]
            defs.append(ColumnDef(spec.name, spec.output_dtype))
        columns = {
            name: Column.from_values(next(d.dtype for d in defs if d.name == name), vals)
            for name, vals in values.items()
        }
        return Table("aggregate", Schema(defs), columns)

    def _grouped_aggregate(
        self, table: Table, key_columns: list[Column], agg_inputs: list[Column | None]
    ) -> Table:
        groups: dict[tuple[Any, ...], list[int]] = {}
        key_lists = [column.to_pylist() for column in key_columns]
        for row_index in range(table.num_rows):
            key = tuple(key_list[row_index] for key_list in key_lists)
            groups.setdefault(key, []).append(row_index)

        key_names = []
        for expr in self.group_by:
            key_names.append(expr.name if isinstance(expr, ColumnRef) else expr.output_name())

        out_values: dict[str, list[Any]] = {name: [] for name in key_names}
        for spec in self.aggregates:
            out_values[spec.name] = []

        for key, indices in groups.items():
            for name, key_value in zip(key_names, key):
                out_values[name].append(key_value)
            row_indices = np.array(indices, dtype=np.int64)
            for spec, column in zip(self.aggregates, agg_inputs):
                subset = column.take(row_indices) if column is not None else None
                out_values[spec.name].append(self._aggregate_one(spec, subset, len(indices)))

        defs = []
        columns = {}
        for name, key_column in zip(key_names, key_columns):
            columns[name] = Column.from_values(key_column.dtype, out_values[name])
            defs.append(ColumnDef(name, key_column.dtype))
        for spec in self.aggregates:
            columns[spec.name] = Column.from_values(spec.output_dtype, out_values[spec.name])
            defs.append(ColumnDef(spec.name, spec.output_dtype))
        return Table("aggregate", Schema(defs), columns)

    @staticmethod
    def _aggregate_one(spec: AggregateSpec, column: Column | None, group_size: int) -> Any:
        function = spec.function.lower()
        if column is None:
            if function != "count":
                raise ExecutionError(f"aggregate {function!r} requires an argument")
            return group_size
        if function == "count":
            return group_size - column.null_count
        if not column.dtype.is_numeric:
            raise ExecutionError(f"aggregate {function!r} requires a numeric argument")
        return compute_aggregate(function, column.nonnull_numpy().astype(np.float64))
