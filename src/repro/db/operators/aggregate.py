"""Group-by / aggregate operator.

Supports the aggregate functions the paper's queries and the TPC-DS-lite
benchmark need: COUNT, COUNT(*), SUM, AVG, MIN, MAX, STDDEV and VAR.

Grouping is vectorised: the key columns are factorised into dense integer
group codes (NULL-aware — NULL keys form their own group, as the hash-based
implementation always did), and every aggregate is computed per group with
``np.bincount`` / sorted-segment reductions instead of a per-row python
loop.  Groups are emitted in first-occurrence order, matching the original
dict-based implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.db.column import Column
from repro.db.expressions import ColumnRef, Expression
from repro.db.operators.base import Operator
from repro.db.operators.codes import argsort_codes, factorize_keys
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ExecutionError

__all__ = ["AggregateSpec", "Aggregate", "SUPPORTED_AGGREGATES", "compute_aggregate"]

SUPPORTED_AGGREGATES = {"count", "sum", "avg", "min", "max", "stddev", "var"}


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: function, input expression (None for COUNT(*)), alias."""

    function: str
    expression: Expression | None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.function.lower() not in SUPPORTED_AGGREGATES:
            raise ExecutionError(
                f"unsupported aggregate function {self.function!r}; "
                f"supported: {sorted(SUPPORTED_AGGREGATES)}"
            )

    @property
    def name(self) -> str:
        if self.alias is not None:
            return self.alias
        arg = "*" if self.expression is None else self.expression.output_name()
        return f"{self.function.lower()}({arg})"

    @property
    def output_dtype(self) -> DataType:
        if self.function.lower() == "count":
            return DataType.INT64
        return DataType.FLOAT64


def compute_aggregate(function: str, values: np.ndarray) -> Any:
    """Compute a single aggregate over non-NULL float values."""
    function = function.lower()
    if function == "count":
        return int(len(values))
    if len(values) == 0:
        return None
    if function == "sum":
        return float(np.sum(values))
    if function == "avg":
        return float(np.mean(values))
    if function == "min":
        return float(np.min(values))
    if function == "max":
        return float(np.max(values))
    if function == "stddev":
        return float(np.std(values, ddof=1)) if len(values) > 1 else 0.0
    if function == "var":
        return float(np.var(values, ddof=1)) if len(values) > 1 else 0.0
    raise ExecutionError(f"unsupported aggregate function {function!r}")


class _GroupContext:
    """Per-aggregation shared state: group ids and the lazy row order."""

    __slots__ = ("group_ids", "num_groups", "_row_order")

    def __init__(self, group_ids: np.ndarray, num_groups: int) -> None:
        self.group_ids = group_ids
        self.num_groups = num_groups
        self._row_order: np.ndarray | None = None

    @property
    def row_order(self) -> np.ndarray:
        """Stable row permutation clustering rows by group (computed once)."""
        if self._row_order is None:
            self._row_order = argsort_codes(self.group_ids, self.num_groups)
        return self._row_order


class _InputState:
    """Lazy per-input-column reductions shared by every aggregate over it."""

    __slots__ = ("column", "context", "_valid", "_ids", "_counts", "_vals", "_sums", "_sorted_vals")

    def __init__(self, column: Column, context: _GroupContext) -> None:
        self.column = column
        self.context = context
        self._valid: np.ndarray | None = None
        self._ids: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._vals: np.ndarray | None = None
        self._sums: np.ndarray | None = None
        self._sorted_vals: np.ndarray | None = None

    @property
    def valid(self) -> np.ndarray:
        if self._valid is None:
            self._valid = self.column.validity
        return self._valid

    @property
    def ids(self) -> np.ndarray:
        """Group id of every non-NULL row of this input."""
        if self._ids is None:
            self._ids = self.context.group_ids[self.valid]
        return self._ids

    @property
    def counts(self) -> np.ndarray:
        """Non-NULL row count per group."""
        if self._counts is None:
            self._counts = np.bincount(self.ids, minlength=self.context.num_groups).astype(np.int64)
        return self._counts

    @property
    def vals(self) -> np.ndarray:
        """Non-NULL values as float64, aligned with :attr:`ids`."""
        if self._vals is None:
            self._vals = self.column.values[self.valid].astype(np.float64)
        return self._vals

    @property
    def sums(self) -> np.ndarray:
        """Per-group sum of non-NULL values."""
        if self._sums is None:
            self._sums = np.bincount(self.ids, weights=self.vals, minlength=self.context.num_groups)
        return self._sums

    @property
    def sorted_vals(self) -> np.ndarray:
        """Non-NULL values clustered by group (for segment MIN/MAX)."""
        if self._sorted_vals is None:
            row_order = self.context.row_order
            valid_sorted = self.valid[row_order]
            self._sorted_vals = self.column.values[row_order][valid_sorted].astype(np.float64)
        return self._sorted_vals


class Aggregate(Operator):
    """Hash aggregation with optional grouping keys."""

    def __init__(
        self,
        child: Operator,
        group_by: list[Expression],
        aggregates: list[AggregateSpec],
    ) -> None:
        self.child = child
        self.group_by = group_by
        self.aggregates = aggregates

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(str(e) for e in self.group_by)
        aggs = ", ".join(a.name for a in self.aggregates)
        return f"Aggregate(group_by=[{keys}], aggregates=[{aggs}])"

    def execute(self) -> Table:
        table = self.child.execute()
        return self.apply(table)

    def apply(self, table: Table) -> Table:
        """Aggregate an already-materialised table (shared with the AQP engine)."""
        key_columns = [expr.evaluate(table) for expr in self.group_by]
        agg_inputs: list[Column | None] = []
        for spec in self.aggregates:
            if spec.expression is None:
                agg_inputs.append(None)
            else:
                agg_inputs.append(spec.expression.evaluate(table))

        if not self.group_by:
            return self._global_aggregate(table, agg_inputs)
        return self._grouped_aggregate(table, key_columns, agg_inputs)

    # -- helpers -----------------------------------------------------------------

    def output_schema(self, input_schema: Schema) -> Schema:
        """The result schema, with group keys keeping their real dtypes.

        Key dtypes are resolved by probing each key expression against an
        empty table with ``input_schema``, so computed keys (``year + 1``)
        get exactly the dtype execution will produce.
        """
        probe = Table("_schema_probe", input_schema)
        defs = []
        for expr in self.group_by:
            name = expr.name if isinstance(expr, ColumnRef) else expr.output_name()
            defs.append(ColumnDef(name, expr.evaluate(probe).dtype))
        for spec in self.aggregates:
            defs.append(ColumnDef(spec.name, spec.output_dtype))
        return Schema(defs)

    def _global_aggregate(self, table: Table, agg_inputs: list[Column | None]) -> Table:
        values: dict[str, list[Any]] = {}
        defs: list[ColumnDef] = []
        for spec, column in zip(self.aggregates, agg_inputs):
            result = self._aggregate_one(spec, column, table.num_rows)
            values[spec.name] = [result]
            defs.append(ColumnDef(spec.name, spec.output_dtype))
        columns = {
            name: Column.from_values(next(d.dtype for d in defs if d.name == name), vals)
            for name, vals in values.items()
        }
        return Table("aggregate", Schema(defs), columns)

    def _grouped_aggregate(
        self, table: Table, key_columns: list[Column], agg_inputs: list[Column | None]
    ) -> Table:
        num_rows = table.num_rows
        group_ids, first_rows, num_groups = factorize_keys(key_columns, num_rows)

        key_names = []
        for expr in self.group_by:
            key_names.append(expr.name if isinstance(expr, ColumnRef) else expr.output_name())

        defs = []
        columns = {}
        for name, key_column in zip(key_names, key_columns):
            # One representative row per group carries the key value (and its
            # NULL-ness) into the output with the original dtype.
            columns[name] = key_column.take(first_rows)
            defs.append(ColumnDef(name, key_column.dtype))

        counts_star = np.bincount(group_ids, minlength=num_groups).astype(np.int64)
        # Per-input shared state: aggregates over the same column reuse one
        # validity split, one per-group count and one per-group sum, and all
        # MIN/MAX aggregates share a single group-clustered row order.
        context = _GroupContext(group_ids, num_groups)
        states: dict[int, _InputState] = {}
        for spec, column in zip(self.aggregates, agg_inputs):
            state = None
            if column is not None:
                state = states.get(id(column))
                if state is None:
                    state = _InputState(column, context)
                    states[id(column)] = state
            columns[spec.name] = self._grouped_one(spec, state, counts_star, num_groups)
            defs.append(ColumnDef(spec.name, spec.output_dtype))
        return Table("aggregate", Schema(defs), columns)

    @staticmethod
    def _grouped_one(
        spec: AggregateSpec,
        state: "_InputState | None",
        counts_star: np.ndarray,
        num_groups: int,
    ) -> Column:
        """Compute one aggregate for every group via segment reductions."""
        function = spec.function.lower()
        if state is None:
            if function != "count":
                raise ExecutionError(f"aggregate {function!r} requires an argument")
            return Column(DataType.INT64, counts_star.copy())
        if num_groups == 0:
            return Column.empty(spec.output_dtype)
        if function != "count" and not state.column.dtype.is_numeric:
            raise ExecutionError(f"aggregate {function!r} requires a numeric argument")

        # NULL handling matches the row-at-a-time path: aggregates consume
        # the validity-masked values of the input column.
        counts = state.counts
        if function == "count":
            return Column(DataType.INT64, counts.copy())

        nonempty = counts > 0
        out = np.full(num_groups, np.nan, dtype=np.float64)

        if function == "sum":
            out[nonempty] = state.sums[nonempty]
        elif function == "avg":
            out[nonempty] = state.sums[nonempty] / counts[nonempty]
        elif function in ("stddev", "var"):
            means = np.zeros(num_groups, dtype=np.float64)
            means[nonempty] = state.sums[nonempty] / counts[nonempty]
            deviations = state.vals - means[state.ids]
            ssq = np.bincount(state.ids, weights=deviations * deviations, minlength=num_groups)
            multi = counts > 1
            out[multi] = ssq[multi] / (counts[multi] - 1)
            out[counts == 1] = 0.0
            if function == "stddev":
                out[multi] = np.sqrt(out[multi])
        elif function in ("min", "max"):
            starts = np.zeros(num_groups, dtype=np.int64)
            starts[1:] = np.cumsum(counts)[:-1]
            reducer = np.minimum if function == "min" else np.maximum
            if nonempty.any():
                out[nonempty] = reducer.reduceat(state.sorted_vals, starts[nonempty])
        else:  # pragma: no cover - SUPPORTED_AGGREGATES guards this
            raise ExecutionError(f"unsupported aggregate function {function!r}")

        # An all-NULL group yields NULL; a NaN produced from genuine values
        # keeps validity True, exactly like the old per-group
        # ``float(np.sum([...nan...]))`` path.
        out[~nonempty] = np.nan
        return Column(DataType.FLOAT64, out, nonempty.copy())

    @staticmethod
    def _aggregate_one(spec: AggregateSpec, column: Column | None, group_size: int) -> Any:
        function = spec.function.lower()
        if column is None:
            if function != "count":
                raise ExecutionError(f"aggregate {function!r} requires an argument")
            return group_size
        if function == "count":
            return group_size - column.null_count
        if not column.dtype.is_numeric:
            raise ExecutionError(f"aggregate {function!r} requires a numeric argument")
        return compute_aggregate(function, column.nonnull_numpy().astype(np.float64))
