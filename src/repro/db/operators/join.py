"""Hash join operator (inner equi-join)."""

from __future__ import annotations

import numpy as np

from repro.db.operators.base import Operator
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.errors import ExecutionError

__all__ = ["HashJoin"]


class HashJoin(Operator):
    """Inner equi-join on one or more key column pairs.

    The right (build) side is hashed; the left (probe) side streams through.
    Output columns are the left columns followed by the right columns; when a
    name collides, the right column is prefixed with ``<right_table>.``.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
    ) -> None:
        if len(left_keys) != len(right_keys):
            raise ExecutionError("join requires the same number of left and right keys")
        if not left_keys:
            raise ExecutionError("join requires at least one key column")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def describe(self) -> str:
        conditions = ", ".join(f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"HashJoin({conditions})"

    def execute(self) -> Table:
        left_table = self.left.execute()
        right_table = self.right.execute()

        # Build phase: hash the right side on its key values.
        build: dict[tuple, list[int]] = {}
        right_key_lists = [right_table.column(k).to_pylist() for k in self.right_keys]
        for row_index in range(right_table.num_rows):
            key = tuple(key_list[row_index] for key_list in right_key_lists)
            if any(part is None for part in key):
                continue  # NULL keys never match in an inner join
            build.setdefault(key, []).append(row_index)

        # Probe phase.
        left_indices: list[int] = []
        right_indices: list[int] = []
        left_key_lists = [left_table.column(k).to_pylist() for k in self.left_keys]
        for row_index in range(left_table.num_rows):
            key = tuple(key_list[row_index] for key_list in left_key_lists)
            if any(part is None for part in key):
                continue
            for match in build.get(key, ()):
                left_indices.append(row_index)
                right_indices.append(match)

        left_result = left_table.take(np.array(left_indices, dtype=np.int64))
        right_result = right_table.take(np.array(right_indices, dtype=np.int64))

        # Stitch the two sides together, disambiguating clashing names.
        defs: list[ColumnDef] = list(left_result.schema.columns)
        columns = left_result.columns()
        existing = set(left_result.schema.names)
        for col_def in right_result.schema:
            out_name = col_def.name
            if out_name in existing:
                out_name = f"{right_table.name}.{col_def.name}"
            if out_name in existing:
                raise ExecutionError(f"cannot disambiguate join output column {col_def.name!r}")
            defs.append(ColumnDef(out_name, col_def.dtype, col_def.nullable))
            columns[out_name] = right_result.column(col_def.name)
            existing.add(out_name)

        name = f"{left_table.name}_join_{right_table.name}"
        return Table(name, Schema(defs), columns)
