"""Hash join operator (inner equi-join), vectorised.

Keys are factorised into dense integer codes over the *union* of both
sides' key values, so the probe phase is a single ``np.searchsorted`` over
the build side's sorted codes and the match expansion is ``np.repeat``
arithmetic — no per-row python loops.  Semantics are identical to the old
dict-of-python-values implementation: NULL keys never match, key equality
follows numeric equality across INT64/FLOAT64/BOOL (``1 == 1.0 == True``),
and output rows are left-row-major with right matches in ascending
right-row order.
"""

from __future__ import annotations

import numpy as np

from repro.db.column import Column
from repro.db.operators.base import Operator
from repro.db.operators.codes import CodeSpacePacker, argsort_codes, rank_codes
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ExecutionError

__all__ = ["HashJoin"]


def _comparable(left_dtype: DataType, right_dtype: DataType) -> bool:
    """Whether two key dtypes can ever compare equal under python equality."""
    if left_dtype is right_dtype:
        return True
    # INT64, FLOAT64 and BOOL all live on the python numeric tower; STRING
    # values never equal numbers, so such pairs produce an empty join.
    return left_dtype is not DataType.STRING and right_dtype is not DataType.STRING


def _int64_exact(values: np.ndarray, dtype: DataType) -> tuple[np.ndarray, np.ndarray]:
    """Map numeric key values to exact int64, flagging the convertible ones.

    Used when an integer-like key column joins a FLOAT64 one: comparing in
    float64 would collapse integers differing beyond 2**53.  A float that is
    non-integral, non-finite or outside int64 range can never equal an INT64
    key, so it is simply flagged unmatchable (equivalent to no match for an
    inner join).
    """
    if dtype is DataType.FLOAT64:
        convertible = (
            np.isfinite(values)
            & (values == np.floor(values))
            & (values >= -(2.0**63))
            & (values < 2.0**63)
        )
        ints = np.zeros(len(values), dtype=np.int64)
        ints[convertible] = values[convertible].astype(np.int64)
        return ints, convertible
    return values.astype(np.int64, copy=False), np.ones(len(values), dtype=bool)


def _pair_codes(left: Column, right: Column) -> tuple[np.ndarray, np.ndarray, int]:
    """Factorise one key column pair into a shared integer code space.

    Returns ``(left_codes, right_codes, cardinality)`` with ``-1`` marking
    keys that can never match: NULLs (validity or in-array sentinel) on
    either side, and — for mixed int/float key pairs — float values with no
    exact integer counterpart.
    """
    left_valid = ~left.null_mask()
    right_valid = ~right.null_mask()
    left_vals = left.values[left_valid]
    right_vals = right.values[right_valid]
    if left.dtype is not right.dtype:
        # Mixed numeric dtypes: python equality is exact (1 == 1.0 == True,
        # but 2**53 + 1 != float(2**53)), so compare in exact int64 space
        # when an integer-like side is involved.
        left_vals, left_matchable = _int64_exact(left_vals, left.dtype)
        right_vals, right_matchable = _int64_exact(right_vals, right.dtype)
        left_vals = left_vals[left_matchable]
        right_vals = right_vals[right_matchable]
        left_valid[left_valid] = left_matchable
        right_valid[right_valid] = right_matchable
    combined = np.concatenate([left_vals, right_vals])
    left_codes = np.full(len(left), -1, dtype=np.int64)
    right_codes = np.full(len(right), -1, dtype=np.int64)
    inverse, cardinality = rank_codes(combined)
    if cardinality:
        left_codes[left_valid] = inverse[: len(left_vals)]
        right_codes[right_valid] = inverse[len(left_vals) :]
    return left_codes, right_codes, cardinality


class HashJoin(Operator):
    """Inner equi-join on one or more key column pairs.

    The right (build) side is hashed; the left (probe) side streams through.
    Output columns are the left columns followed by the right columns; when a
    name collides, the right column is prefixed with ``<right_table>.``.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
    ) -> None:
        if len(left_keys) != len(right_keys):
            raise ExecutionError("join requires the same number of left and right keys")
        if not left_keys:
            raise ExecutionError("join requires at least one key column")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def describe(self) -> str:
        conditions = ", ".join(f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"HashJoin({conditions})"

    def execute(self) -> Table:
        left_table = self.left.execute()
        right_table = self.right.execute()
        left_indices, right_indices = self._match_indices(left_table, right_table)

        left_result = left_table.take(left_indices)
        right_result = right_table.take(right_indices)

        # Stitch the two sides together, disambiguating clashing names.
        defs: list[ColumnDef] = list(left_result.schema.columns)
        columns = left_result.columns()
        existing = set(left_result.schema.names)
        for col_def in right_result.schema:
            out_name = col_def.name
            if out_name in existing:
                out_name = f"{right_table.name}.{col_def.name}"
            if out_name in existing:
                raise ExecutionError(f"cannot disambiguate join output column {col_def.name!r}")
            defs.append(ColumnDef(out_name, col_def.dtype, col_def.nullable))
            columns[out_name] = right_result.column(col_def.name)
            existing.add(out_name)

        name = f"{left_table.name}_join_{right_table.name}"
        return Table(name, Schema(defs), columns)

    # -- matching ---------------------------------------------------------------

    def _match_indices(self, left_table: Table, right_table: Table) -> tuple[np.ndarray, np.ndarray]:
        """Row-index pairs of every inner-join match, left-row-major."""
        empty = np.empty(0, dtype=np.int64)
        num_left = left_table.num_rows
        num_right = right_table.num_rows
        if num_left == 0 or num_right == 0:
            return empty, empty

        left_columns = [left_table.column(k) for k in self.left_keys]
        right_columns = [right_table.column(k) for k in self.right_keys]
        if any(
            not _comparable(l.dtype, r.dtype) for l, r in zip(left_columns, right_columns)
        ):
            return empty, empty

        # Factorise each key pair, then pack the per-column codes into one
        # composite code per row.  Rows with any NULL component drop out.
        # The code space stays dense (the packer re-densifies whenever the
        # packed range outgrows the row count), so the probe phase is direct
        # array indexing — no binary search, no per-row hashing.
        packer = CodeSpacePacker(
            [np.zeros(num_left, dtype=np.int64), np.zeros(num_right, dtype=np.int64)]
        )
        left_ok = np.ones(num_left, dtype=bool)
        right_ok = np.ones(num_right, dtype=bool)
        for left_column, right_column in zip(left_columns, right_columns):
            left_codes, right_codes, cardinality = _pair_codes(left_column, right_column)
            if cardinality == 0:  # every key on both sides is NULL/unmatchable
                return empty, empty
            left_ok &= left_codes >= 0
            right_ok &= right_codes >= 0
            packer.add(
                [
                    np.where(left_codes >= 0, left_codes, 0),
                    np.where(right_codes >= 0, right_codes, 0),
                ],
                cardinality,
            )
        (left_packed, right_packed), space = packer.finish()

        probe_rows = np.flatnonzero(left_ok)
        build_rows = np.flatnonzero(right_ok)
        if len(probe_rows) == 0 or len(build_rows) == 0:
            return empty, empty
        probe_codes = left_packed[probe_rows]
        build_codes = right_packed[build_rows]

        # Build: per-code match counts and slice offsets into the build rows
        # sorted by code; stable sort keeps matches in ascending right-row
        # order within each code.
        counts_by_code = np.bincount(build_codes, minlength=space)
        match_counts_all = counts_by_code[probe_codes]
        matched = match_counts_all > 0
        if not matched.any():
            return empty, empty
        build_order = argsort_codes(build_codes, space)
        sorted_build_rows = build_rows[build_order]
        starts_by_code = np.cumsum(counts_by_code) - counts_by_code

        matched_probe_rows = probe_rows[matched]
        matched_codes = probe_codes[matched]
        match_counts = match_counts_all[matched]

        # Expand: each matched probe row repeats once per build match, and a
        # per-match ramp indexes into that code's slice of the sorted build
        # rows.
        total = int(match_counts.sum())
        left_indices = np.repeat(matched_probe_rows, match_counts)
        offsets = np.zeros(len(match_counts), dtype=np.int64)
        offsets[1:] = np.cumsum(match_counts)[:-1]
        ramp = np.arange(total, dtype=np.int64) - np.repeat(offsets, match_counts)
        right_indices = sorted_build_rows[np.repeat(starts_by_code[matched_codes], match_counts) + ramp]
        return left_indices, right_indices
