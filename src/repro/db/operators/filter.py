"""Filter operator: keep rows matching a boolean expression."""

from __future__ import annotations

from repro.db.expressions import Expression, truthy_mask
from repro.db.operators.base import Operator
from repro.db.table import Table

__all__ = ["Filter"]


class Filter(Operator):
    """Evaluate a predicate expression and keep only the matching rows."""

    def __init__(self, child: Operator, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate

    def children(self) -> list[Operator]:
        return [self.child]

    def execute(self) -> Table:
        table = self.child.execute()
        if table.num_rows == 0:
            return table
        mask = truthy_mask(self.predicate.evaluate(table))
        if mask.all():
            # Nothing filtered out: pass the input through without copying
            # every column (tables are logically immutable, so sharing is safe).
            return table
        return table.filter(mask)

    def describe(self) -> str:
        return f"Filter({self.predicate})"
