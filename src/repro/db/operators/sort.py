"""Sort operator (ORDER BY)."""

from __future__ import annotations

from repro.db.operators.base import Operator
from repro.db.table import Table

__all__ = ["Sort"]


class Sort(Operator):
    """Stable multi-key sort; keys are ``(column_name, ascending)`` pairs."""

    def __init__(self, child: Operator, keys: list[tuple[str, bool]]) -> None:
        self.child = child
        self.keys = keys

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self) -> str:
        rendered = ", ".join(f"{name} {'ASC' if asc else 'DESC'}" for name, asc in self.keys)
        return f"Sort({rendered})"

    def execute(self) -> Table:
        table = self.child.execute()
        return table.sort_by(self.keys)
