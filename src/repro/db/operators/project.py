"""Projection operator: compute output columns from expressions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.expressions import Expression
from repro.db.operators.base import Operator
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table

__all__ = ["Projection", "Project"]


@dataclass(frozen=True)
class Projection:
    """One output column: an expression and its output name."""

    expression: Expression
    alias: str | None = None

    @property
    def name(self) -> str:
        return self.alias if self.alias is not None else self.expression.output_name()


class Project(Operator):
    """Evaluate a list of projections against the child's output."""

    def __init__(self, child: Operator, projections: list[Projection]) -> None:
        self.child = child
        self.projections = projections

    def children(self) -> list[Operator]:
        return [self.child]

    def execute(self) -> Table:
        table = self.child.execute()
        columns = {}
        defs = []
        for projection in self.projections:
            column = projection.expression.evaluate(table)
            name = projection.name
            columns[name] = column
            defs.append(ColumnDef(name, column.dtype))
        return Table(table.name, Schema(defs), columns)

    def describe(self) -> str:
        return "Project(" + ", ".join(p.name for p in self.projections) + ")"
