"""Limit / offset operator."""

from __future__ import annotations

from repro.db.operators.base import Operator
from repro.db.table import Table

__all__ = ["Limit"]


class Limit(Operator):
    """Return at most ``count`` rows, skipping the first ``offset`` rows."""

    def __init__(self, child: Operator, count: int, offset: int = 0) -> None:
        self.child = child
        self.count = count
        self.offset = offset

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit(count={self.count}, offset={self.offset})"

    def execute(self) -> Table:
        table = self.child.execute()
        start = min(self.offset, table.num_rows)
        stop = min(start + self.count, table.num_rows)
        return table.slice(start, stop)
