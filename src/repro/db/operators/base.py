"""Operator base class."""

from __future__ import annotations

import copy

from repro.db.table import Table

__all__ = ["Operator", "clone_operator_tree"]


class Operator:
    """A node in a physical query plan.

    Operators are pull-based at table granularity: calling :meth:`execute`
    recursively executes the children and returns the full result table.
    This is the simplest execution model that still lets the benchmarks
    measure per-query IO and CPU, which is all the paper's experiments need.
    """

    def execute(self) -> Table:
        """Execute this operator (and its subtree) and return the result."""
        raise NotImplementedError

    def children(self) -> list["Operator"]:
        """Child operators, for plan display and rewriting."""
        return []

    def explain(self, indent: int = 0) -> str:
        """Render the plan subtree as indented text."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description of this operator."""
        return type(self).__name__


def clone_operator_tree(node: Operator) -> Operator:
    """Shallow-clone an operator tree (fresh nodes, shared leaf bindings).

    Used when an execution needs private node instances — e.g. tracing,
    which shadows ``execute`` in each node's ``__dict__`` and must never do
    that to a cached plan another thread may be executing.  Child operators
    are discovered structurally: any attribute holding an ``Operator`` (or a
    non-empty list of them) is rebound to its clone.
    """
    clone = copy.copy(node)
    for attr, value in vars(clone).items():
        if isinstance(value, Operator):
            setattr(clone, attr, clone_operator_tree(value))
        elif isinstance(value, list) and value and all(isinstance(v, Operator) for v in value):
            setattr(clone, attr, [clone_operator_tree(v) for v in value])
    return clone
