"""Operator base class."""

from __future__ import annotations

from repro.db.table import Table

__all__ = ["Operator"]


class Operator:
    """A node in a physical query plan.

    Operators are pull-based at table granularity: calling :meth:`execute`
    recursively executes the children and returns the full result table.
    This is the simplest execution model that still lets the benchmarks
    measure per-query IO and CPU, which is all the paper's experiments need.
    """

    def execute(self) -> Table:
        """Execute this operator (and its subtree) and return the result."""
        raise NotImplementedError

    def children(self) -> list["Operator"]:
        """Child operators, for plan display and rewriting."""
        return []

    def explain(self, indent: int = 0) -> str:
        """Render the plan subtree as indented text."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description of this operator."""
        return type(self).__name__
