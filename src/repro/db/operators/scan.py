"""Leaf operators: base-table scans and pre-materialised inputs."""

from __future__ import annotations

from repro.db.io_model import IOModel
from repro.db.operators.base import Operator
from repro.db.table import Table

__all__ = ["TableScan", "MaterializedInput"]


class TableScan(Operator):
    """Scan a base table, charging the simulated IO model for the bytes read.

    ``projected_columns`` narrows the scan to the columns a query actually
    touches (columnar storage means unread columns cost no IO), which is what
    makes the zero-IO comparison honest: the raw-scan side is charged only
    for the columns it needs.
    """

    def __init__(
        self,
        table: Table,
        io_model: IOModel | None = None,
        projected_columns: list[str] | None = None,
    ) -> None:
        self.table = table
        self.io_model = io_model
        self.projected_columns = projected_columns

    def execute(self) -> Table:
        if self.io_model is not None:
            self.io_model.charge_scan(self.table, self.projected_columns)
        if self.projected_columns is not None:
            return self.table.select(self.projected_columns)
        return self.table

    def describe(self) -> str:
        cols = "*" if self.projected_columns is None else ", ".join(self.projected_columns)
        return f"TableScan({self.table.name}, columns=[{cols}])"


class MaterializedInput(Operator):
    """Wrap an already-materialised table (no IO charged).

    Used for intermediate results, model-generated tables (the zero-IO path)
    and test fixtures.
    """

    def __init__(self, table: Table) -> None:
        self.table = table

    def execute(self) -> Table:
        return self.table

    def describe(self) -> str:
        return f"MaterializedInput({self.table.name}, rows={self.table.num_rows})"
