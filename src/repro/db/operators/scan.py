"""Leaf operators: base-table scans and pre-materialised inputs."""

from __future__ import annotations

from repro.db.io_model import IOModel
from repro.db.operators.base import Operator
from repro.db.table import Table
from repro.errors import CatalogError

__all__ = ["TableScan", "MaterializedInput"]


class TableScan(Operator):
    """Scan a base table, charging the simulated IO model for the bytes read.

    ``projected_columns`` narrows the scan to the columns a query actually
    touches (columnar storage means unread columns cost no IO), which is what
    makes the zero-IO comparison honest: the raw-scan side is charged only
    for the columns it needs.

    Plans are cached and shared across executions (and threads), so the scan
    binds its table *per execution*: when a ``catalog`` was provided it
    re-resolves the table name through it — which, inside a
    ``catalog.reading(snapshot)`` context, transparently yields the pinned
    snapshot table — and always executes against a frozen ``pinned()`` copy,
    so a concurrent append can never swap the column mapping mid-scan.
    """

    def __init__(
        self,
        table: Table,
        io_model: IOModel | None = None,
        projected_columns: list[str] | None = None,
        catalog=None,
    ) -> None:
        self.table = table
        self.io_model = io_model
        self.projected_columns = projected_columns
        self.catalog = catalog

    def _bind_table(self) -> Table:
        """This execution's frozen view of the scanned table.

        Fast path: with no snapshot pinned on this thread, freeze the table
        captured at plan time directly — plan-cache validation already
        guarantees it is the current object, and ``pinned()`` is a reference
        copy.  Only a pinned thread pays the name re-resolution.
        """
        catalog = self.catalog
        if catalog is not None and getattr(catalog, "active_snapshot", None) is not None:
            try:
                return catalog.table(self.table.name).pinned()
            except CatalogError:
                # Dropped (or a shadow table the live catalog never owned):
                # fall back to the binding captured at plan time.
                pass
        return self.table.pinned()

    def execute(self) -> Table:
        table = self._bind_table()
        if self.io_model is not None:
            self.io_model.charge_scan(table, self.projected_columns)
        if self.projected_columns is not None:
            return table.select(self.projected_columns)
        return table

    def describe(self) -> str:
        cols = "*" if self.projected_columns is None else ", ".join(self.projected_columns)
        return f"TableScan({self.table.name}, columns=[{cols}])"


class MaterializedInput(Operator):
    """Wrap an already-materialised table (no IO charged).

    Used for intermediate results, model-generated tables (the zero-IO path)
    and test fixtures.
    """

    def __init__(self, table: Table) -> None:
        self.table = table

    def execute(self) -> Table:
        return self.table

    def describe(self) -> str:
        return f"MaterializedInput({self.table.name}, rows={self.table.num_rows})"
