"""Scalar expression trees and their vectorised evaluation.

Expressions are shared between the SQL front-end (the parser produces them)
and the programmatic query API (operators accept them directly).  Evaluation
is vectorised: an expression evaluates against a :class:`~repro.db.table.Table`
and yields a :class:`~repro.db.column.Column` of results, with SQL NULL
semantics (any NULL operand makes comparison/arithmetic results NULL, and
three-valued logic for AND/OR/NOT).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.db.column import Column
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ExecutionError

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "Between",
    "InList",
    "IsNull",
    "col",
    "lit",
]

_ARITHMETIC_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}

_COMPARISON_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_SCALAR_FUNCTIONS: dict[str, Callable[..., np.ndarray]] = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "ln": np.log,
    "log": np.log,
    "log10": np.log10,
    "power": np.power,
    "pow": np.power,
    "floor": np.floor,
    "ceil": np.ceil,
    "round": np.round,
    "sin": np.sin,
    "cos": np.cos,
}


class Expression:
    """Base class for scalar expressions."""

    def evaluate(self, table: Table) -> Column:
        """Evaluate this expression for every row of ``table``."""
        raise NotImplementedError

    def evaluate_scalar(self, row: dict[str, Any]) -> Any:
        """Evaluate this expression against a single row dict (slow path)."""
        single = Table.from_dict("_row", {k: [v] for k, v in row.items()})
        return self.evaluate(single)[0]

    def referenced_columns(self) -> set[str]:
        """Names of all columns referenced anywhere in this expression."""
        raise NotImplementedError

    def output_name(self) -> str:
        """Default output column name when used in a SELECT list."""
        return str(self)

    # Operator sugar so tests and examples can build expressions fluently.

    def __add__(self, other: Any) -> "BinaryOp":
        return BinaryOp("+", self, _wrap(other))

    def __sub__(self, other: Any) -> "BinaryOp":
        return BinaryOp("-", self, _wrap(other))

    def __mul__(self, other: Any) -> "BinaryOp":
        return BinaryOp("*", self, _wrap(other))

    def __truediv__(self, other: Any) -> "BinaryOp":
        return BinaryOp("/", self, _wrap(other))

    def __mod__(self, other: Any) -> "BinaryOp":
        return BinaryOp("%", self, _wrap(other))

    def __gt__(self, other: Any) -> "BinaryOp":
        return BinaryOp(">", self, _wrap(other))

    def __ge__(self, other: Any) -> "BinaryOp":
        return BinaryOp(">=", self, _wrap(other))

    def __lt__(self, other: Any) -> "BinaryOp":
        return BinaryOp("<", self, _wrap(other))

    def __le__(self, other: Any) -> "BinaryOp":
        return BinaryOp("<=", self, _wrap(other))

    def eq(self, other: Any) -> "BinaryOp":
        return BinaryOp("=", self, _wrap(other))

    def ne(self, other: Any) -> "BinaryOp":
        return BinaryOp("!=", self, _wrap(other))

    def and_(self, other: Any) -> "BinaryOp":
        return BinaryOp("and", self, _wrap(other))

    def or_(self, other: Any) -> "BinaryOp":
        return BinaryOp("or", self, _wrap(other))

    def is_null(self) -> "IsNull":
        return IsNull(self, negated=False)

    def between(self, low: Any, high: Any) -> "Between":
        return Between(self, _wrap(low), _wrap(high))

    def isin(self, values: list[Any]) -> "InList":
        return InList(self, [_wrap(v) for v in values])


def _wrap(value: Any) -> Expression:
    return value if isinstance(value, Expression) else Literal(value)


def col(name: str) -> "ColumnRef":
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> "Literal":
    """Shorthand constructor for a literal."""
    return Literal(value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a named column of the input table."""

    name: str

    def evaluate(self, table: Table) -> Column:
        return table.column(self.name)

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def output_name(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, table: Table) -> Column:
        n = table.num_rows
        if self.value is None:
            return Column.from_values(DataType.FLOAT64, [None] * n)
        dtype = DataType.infer(self.value)
        return Column.from_values(dtype, [self.value] * n)

    def referenced_columns(self) -> set[str]:
        return set()

    def output_name(self) -> str:
        return repr(self.value)

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary arithmetic, comparison or boolean operation."""

    op: str
    left: Expression
    right: Expression

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"

    def evaluate(self, table: Table) -> Column:
        op = self.op.lower()
        left = self.left.evaluate(table)
        right = self.right.evaluate(table)
        valid = left.validity & right.validity

        if op in _ARITHMETIC_OPS:
            return _evaluate_arithmetic(op, left, right, valid)
        if op in _COMPARISON_OPS:
            return _evaluate_comparison(op, left, right, valid)
        if op in ("and", "or"):
            return _evaluate_boolean(op, left, right)
        raise ExecutionError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary negation (``-x``) or boolean NOT."""

    op: str
    operand: Expression

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"

    def evaluate(self, table: Table) -> Column:
        operand = self.operand.evaluate(table)
        op = self.op.lower()
        if op == "-":
            if not operand.dtype.is_numeric:
                raise ExecutionError(f"cannot negate {operand.dtype.value} column")
            return Column(operand.dtype, -operand.values, operand.validity.copy())
        if op == "not":
            if operand.dtype is not DataType.BOOL:
                raise ExecutionError("NOT requires a boolean operand")
            return Column(DataType.BOOL, ~operand.values, operand.validity.copy())
        raise ExecutionError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function call such as ``sqrt(x)`` or ``power(nu, alpha)``."""

    name: str
    args: tuple[Expression, ...]

    def referenced_columns(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.referenced_columns()
        return out

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"

    def evaluate(self, table: Table) -> Column:
        fn = _SCALAR_FUNCTIONS.get(self.name.lower())
        if fn is None:
            raise ExecutionError(f"unknown scalar function {self.name!r}")
        arg_columns = [arg.evaluate(table) for arg in self.args]
        for column in arg_columns:
            if not column.dtype.is_numeric:
                raise ExecutionError(f"function {self.name!r} requires numeric arguments")
        valid = np.ones(table.num_rows, dtype=bool)
        for column in arg_columns:
            valid &= column.validity
        with np.errstate(all="ignore"):
            values = fn(*[c.values.astype(np.float64) for c in arg_columns])
        values = np.asarray(values, dtype=np.float64)
        valid = valid & np.isfinite(values)
        values = np.where(valid, values, np.nan)
        return Column(DataType.FLOAT64, values, valid)


@dataclass(frozen=True)
class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive on both ends)."""

    operand: Expression
    low: Expression
    high: Expression

    def referenced_columns(self) -> set[str]:
        return (
            self.operand.referenced_columns()
            | self.low.referenced_columns()
            | self.high.referenced_columns()
        )

    def __str__(self) -> str:
        return f"({self.operand} BETWEEN {self.low} AND {self.high})"

    def evaluate(self, table: Table) -> Column:
        lower = BinaryOp(">=", self.operand, self.low).evaluate(table)
        upper = BinaryOp("<=", self.operand, self.high).evaluate(table)
        return _evaluate_boolean("and", lower, upper)


@dataclass(frozen=True)
class InList(Expression):
    """``expr IN (v1, v2, ...)`` over literal values."""

    operand: Expression
    values: tuple[Expression, ...]

    def __init__(self, operand: Expression, values: list[Expression]) -> None:
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "values", tuple(values))

    def referenced_columns(self) -> set[str]:
        out = self.operand.referenced_columns()
        for value in self.values:
            out |= value.referenced_columns()
        return out

    def __str__(self) -> str:
        return f"({self.operand} IN ({', '.join(str(v) for v in self.values)}))"

    def evaluate(self, table: Table) -> Column:
        if not self.values:
            return Column.from_values(DataType.BOOL, [False] * table.num_rows)
        result: Column | None = None
        for value in self.values:
            term = BinaryOp("=", self.operand, value).evaluate(table)
            result = term if result is None else _evaluate_boolean("or", result, term)
        assert result is not None
        return result


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS NULL`` or ``expr IS NOT NULL``."""

    operand: Expression
    negated: bool = False

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"({self.operand} IS {'NOT ' if self.negated else ''}NULL)"

    def evaluate(self, table: Table) -> Column:
        operand = self.operand.evaluate(table)
        nulls = ~operand.validity
        values = ~nulls if self.negated else nulls
        return Column(DataType.BOOL, values, np.ones(len(values), dtype=bool))


# ---------------------------------------------------------------------------
# Evaluation helpers
# ---------------------------------------------------------------------------


def _numeric_values(column: Column) -> np.ndarray:
    if not column.dtype.is_numeric:
        raise ExecutionError(f"expected a numeric operand, got {column.dtype.value}")
    return column.values.astype(np.float64)


def _evaluate_arithmetic(op: str, left: Column, right: Column, valid: np.ndarray) -> Column:
    left_values = _numeric_values(left)
    right_values = _numeric_values(right)
    with np.errstate(all="ignore"):
        values = _ARITHMETIC_OPS[op](left_values, right_values)
    values = np.asarray(values, dtype=np.float64)
    finite = np.isfinite(values)
    valid = valid & finite
    values = np.where(valid, values, np.nan)
    if (
        left.dtype is DataType.INT64
        and right.dtype is DataType.INT64
        and op in ("+", "-", "*", "%")
    ):
        ints = np.where(valid, values, 0).astype(np.int64)
        from repro.db.types import null_value

        ints = np.where(valid, ints, null_value(DataType.INT64))
        return Column(DataType.INT64, ints, valid)
    return Column(DataType.FLOAT64, values, valid)


def _evaluate_comparison(op: str, left: Column, right: Column, valid: np.ndarray) -> Column:
    if left.dtype is DataType.STRING or right.dtype is DataType.STRING:
        if left.dtype is not right.dtype:
            raise ExecutionError("cannot compare string column with non-string operand")
        with np.errstate(all="ignore"):
            values = _COMPARISON_OPS[op](left.values, right.values)
    elif left.dtype is DataType.BOOL or right.dtype is DataType.BOOL:
        values = _COMPARISON_OPS[op](left.values.astype(np.int64), right.values.astype(np.int64))
    else:
        with np.errstate(all="ignore"):
            values = _COMPARISON_OPS[op](_numeric_values(left), _numeric_values(right))
    values = np.asarray(values, dtype=bool)
    values = np.where(valid, values, False)
    return Column(DataType.BOOL, values, valid)


def _evaluate_boolean(op: str, left: Column, right: Column) -> Column:
    if left.dtype is not DataType.BOOL or right.dtype is not DataType.BOOL:
        raise ExecutionError(f"{op.upper()} requires boolean operands")
    left_values = left.values & left.validity
    right_values = right.values & right.validity
    if op == "and":
        values = left_values & right_values
        # NULL AND FALSE -> FALSE; NULL AND TRUE -> NULL
        valid = (left.validity & right.validity) | (~left_values & left.validity) | (~right_values & right.validity)
    else:
        values = left_values | right_values
        # NULL OR TRUE -> TRUE; NULL OR FALSE -> NULL
        valid = (left.validity & right.validity) | left_values | right_values
    return Column(DataType.BOOL, values, valid)


def truthy_mask(column: Column) -> np.ndarray:
    """Convert a boolean result column to a row-selection mask (NULL = False)."""
    if column.dtype is not DataType.BOOL:
        raise ExecutionError("predicate did not evaluate to a boolean column")
    return np.asarray(column.values & column.validity, dtype=bool)
