"""Simulated storage IO cost model.

The paper's "zero-IO scans" argument (§4.1) is about replacing an IO-bound
table scan with CPU-only model evaluation.  This reproduction runs entirely
in memory, so the IO savings would be invisible without an explicit cost
model.  :class:`IOModel` attributes a page count to every table and charges
page reads to an :class:`IOAccountant` whenever an operator scans a base
table.  The accountant can optionally *simulate* the latency of those reads
(sleep-free: it accrues virtual time) so benchmarks can report both page
counts and estimated IO time.

The defaults model a commodity SATA SSD: 8 KiB pages, 500 MB/s sequential
bandwidth and 80 µs per random read.  The exact values only scale the
reported savings; the *shape* of the zero-IO result (model answering reads
no pages at all) does not depend on them.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from repro.db.table import Table

__all__ = ["IOParameters", "IOAccountant", "IOModel", "IOScope"]


@dataclass(frozen=True)
class IOParameters:
    """Device parameters for the simulated storage layer."""

    page_size_bytes: int = 8192
    sequential_bandwidth_bytes_per_s: float = 500e6
    random_read_latency_s: float = 80e-6

    def pages_for_bytes(self, num_bytes: int) -> int:
        """Number of pages needed to hold ``num_bytes``."""
        if num_bytes <= 0:
            return 0
        return int(math.ceil(num_bytes / self.page_size_bytes))

    def sequential_read_time(self, pages: int) -> float:
        """Virtual seconds to read ``pages`` sequentially."""
        return pages * self.page_size_bytes / self.sequential_bandwidth_bytes_per_s

    def random_read_time(self, pages: int) -> float:
        """Virtual seconds to read ``pages`` with random access."""
        return pages * (self.random_read_latency_s + self.page_size_bytes / self.sequential_bandwidth_bytes_per_s)


class IOScope:
    """Per-execution IO attribution: what one query (or stage) charged.

    A scope is opened with :meth:`IOAccountant.scope` around one execution
    (it is its own context manager — ``with accountant.scope() as s:``);
    every charge made *by the opening thread* while the scope is open is
    credited to it (and to any enclosing scopes on the same thread, so a
    nested execution's IO still shows up in its caller's total, exactly as
    the old before/after snapshot deltas did).  Charges from *other*
    threads are never credited, which is what fixes the interleaved-query
    misattribution the snapshot-delta approach suffered from.
    """

    __slots__ = (
        "pages_read",
        "bytes_read",
        "sequential_reads",
        "random_reads",
        "virtual_io_seconds",
        "_stack",
    )

    def __init__(self, stack: list | None = None) -> None:
        self.pages_read = 0
        self.bytes_read = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.virtual_io_seconds = 0.0
        self._stack = stack

    def __enter__(self) -> "IOScope":
        self._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Scopes nest strictly (context managers unwind LIFO), so popping is
        # enough — but guard against a mispaired exit all the same.
        stack = self._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - defensive
            try:
                stack.remove(self)
            except ValueError:
                pass

    def _add(self, pages: int, num_bytes: int, sequential: bool, seconds: float) -> None:
        self.pages_read += pages
        self.bytes_read += num_bytes
        if sequential:
            self.sequential_reads += 1
        else:
            self.random_reads += 1
        self.virtual_io_seconds += seconds

    def snapshot(self) -> dict[str, float]:
        """Counters in the same shape as :meth:`IOAccountant.snapshot`."""
        return {
            "pages_read": self.pages_read,
            "bytes_read": self.bytes_read,
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
            "virtual_io_seconds": self.virtual_io_seconds,
        }


@dataclass
class IOAccountant:
    """Accumulates simulated IO charged during query execution.

    Global totals are lock-protected (concurrent queries all charge the one
    accountant); per-execution attribution goes through thread-local
    :class:`IOScope` stacks, which need no locking.
    """

    parameters: IOParameters = field(default_factory=IOParameters)
    pages_read: int = 0
    bytes_read: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    virtual_io_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)
    _local: threading.local = field(default_factory=threading.local, repr=False, compare=False)

    def scope(self) -> IOScope:
        """A per-execution attribution scope for the calling thread.

        The returned :class:`IOScope` is a context manager; charges are only
        credited while it is entered.
        """
        scopes = getattr(self._local, "scopes", None)
        if scopes is None:
            scopes = self._local.scopes = []
        return IOScope(scopes)

    def _charge(self, pages: int, num_bytes: int, sequential: bool, seconds: float) -> None:
        with self._lock:
            self.pages_read += pages
            self.bytes_read += num_bytes
            if sequential:
                self.sequential_reads += 1
            else:
                self.random_reads += 1
            self.virtual_io_seconds += seconds
        scopes = getattr(self._local, "scopes", None)
        if scopes:
            for entry in scopes:
                entry._add(pages, num_bytes, sequential, seconds)

    def charge_sequential(self, num_bytes: int) -> None:
        """Charge a sequential read of ``num_bytes`` (e.g. a column scan)."""
        pages = self.parameters.pages_for_bytes(num_bytes)
        self._charge(pages, num_bytes, True, self.parameters.sequential_read_time(pages))

    def charge_random(self, num_bytes: int) -> None:
        """Charge a random read of ``num_bytes`` (e.g. an index lookup)."""
        pages = self.parameters.pages_for_bytes(num_bytes)
        self._charge(pages, num_bytes, False, self.parameters.random_read_time(pages))

    def reset(self) -> None:
        with self._lock:
            self.pages_read = 0
            self.bytes_read = 0
            self.sequential_reads = 0
            self.random_reads = 0
            self.virtual_io_seconds = 0.0

    def snapshot(self) -> dict[str, float]:
        """A plain-dict snapshot, convenient for benchmark reporting."""
        with self._lock:
            return {
                "pages_read": self.pages_read,
                "bytes_read": self.bytes_read,
                "sequential_reads": self.sequential_reads,
                "random_reads": self.random_reads,
                "virtual_io_seconds": self.virtual_io_seconds,
            }


class IOModel:
    """Attributes page counts to tables and charges scans to an accountant."""

    def __init__(self, parameters: IOParameters | None = None) -> None:
        self.parameters = parameters or IOParameters()
        self.accountant = IOAccountant(parameters=self.parameters)

    # -- sizing ---------------------------------------------------------------

    def table_bytes(self, table: Table) -> int:
        return table.byte_size()

    def table_pages(self, table: Table) -> int:
        return self.parameters.pages_for_bytes(table.byte_size())

    def column_bytes(self, table: Table, column_names: list[str] | None = None) -> int:
        """Bytes occupied by a subset of a table's columns (columnar layout)."""
        names = column_names if column_names is not None else table.schema.names
        return sum(table.column(name).byte_size() for name in names)

    # -- charging ---------------------------------------------------------------

    def charge_scan(self, table: Table, column_names: list[str] | None = None) -> int:
        """Charge a sequential columnar scan; returns the bytes charged."""
        num_bytes = self.column_bytes(table, column_names)
        self.accountant.charge_sequential(num_bytes)
        return num_bytes

    def charge_point_lookup(self, table: Table, column_names: list[str] | None = None) -> int:
        """Charge a random single-row lookup (one page per accessed column)."""
        names = column_names if column_names is not None else table.schema.names
        num_bytes = sum(table.schema.dtype_of(name).byte_width for name in names)
        # A point lookup still touches at least one page per column file.
        for _ in names:
            self.accountant.charge_random(self.parameters.page_size_bytes)
        return num_bytes

    def scope(self):
        """Open a per-execution IO attribution scope (see :class:`IOScope`)."""
        return self.accountant.scope()

    def reset(self) -> None:
        self.accountant.reset()

    def snapshot(self) -> dict[str, float]:
        return self.accountant.snapshot()
