"""Columnar storage: a single column of values plus a validity bitmap.

The engine stores every table column as a :class:`Column` — a packed NumPy
array together with a boolean validity mask (True = value present, False =
SQL NULL).  All physical operators exchange data as columns, which keeps the
hot paths vectorised and makes the byte accounting used by the compression
experiments straightforward.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.db.types import DataType, is_null, null_value, python_value
from repro.errors import TypeMismatchError

__all__ = ["Column"]


class Column:
    """A typed column of values with NULL tracking.

    Parameters
    ----------
    dtype:
        Declared type of the column.
    values:
        Packed NumPy array of values (``dtype.numpy_dtype``).
    validity:
        Boolean array of the same length; False marks NULL positions.
    """

    __slots__ = ("dtype", "values", "validity")

    def __init__(self, dtype: DataType, values: np.ndarray, validity: np.ndarray | None = None) -> None:
        self.dtype = dtype
        self.values = np.asarray(values, dtype=dtype.numpy_dtype)
        if validity is None:
            validity = np.ones(len(self.values), dtype=bool)
        self.validity = np.asarray(validity, dtype=bool)
        if len(self.validity) != len(self.values):
            raise TypeMismatchError(
                f"validity mask length {len(self.validity)} != values length {len(self.values)}"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_values(cls, dtype: DataType, values: Sequence[Any]) -> "Column":
        """Build a column from plain python values (``None`` becomes NULL)."""
        packed = []
        validity = np.ones(len(values), dtype=bool)
        sentinel = null_value(dtype)
        for i, value in enumerate(values):
            if value is None:
                packed.append(sentinel)
                validity[i] = False
            else:
                packed.append(dtype.coerce(value))
        array = np.array(packed, dtype=dtype.numpy_dtype) if packed else np.empty(0, dtype=dtype.numpy_dtype)
        return cls(dtype, array, validity)

    @classmethod
    def from_numpy(cls, dtype: DataType, array: np.ndarray) -> "Column":
        """Build a column directly from a NumPy array (NaN -> NULL for floats)."""
        array = np.asarray(array, dtype=dtype.numpy_dtype)
        if dtype is DataType.FLOAT64:
            validity = ~np.isnan(array)
        else:
            validity = np.ones(len(array), dtype=bool)
        return cls(dtype, array, validity)

    @classmethod
    def empty(cls, dtype: DataType) -> "Column":
        return cls(dtype, np.empty(0, dtype=dtype.numpy_dtype), np.empty(0, dtype=bool))

    @classmethod
    def infer(cls, values: Sequence[Any]) -> "Column":
        """Infer the dtype from ``values`` and build a column."""
        dtype = DataType.infer_common(list(values))
        return cls.from_values(dtype, values)

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> Any:
        return python_value(self.dtype, self.values[index], bool(self.validity[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.dtype is other.dtype and self.to_pylist() == other.to_pylist()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        preview = ", ".join(repr(v) for v in self.to_pylist()[:5])
        suffix = ", ..." if len(self) > 5 else ""
        return f"Column({self.dtype.value}, [{preview}{suffix}], n={len(self)})"

    # -- conversion ----------------------------------------------------------

    def to_pylist(self) -> list[Any]:
        """Return the column as a list of python values (None for NULL)."""
        return [self[i] for i in range(len(self))]

    def to_numpy(self) -> np.ndarray:
        """Return the packed value array.

        Float columns encode NULL as NaN; integer columns use the INT64 min
        sentinel.  Use :attr:`validity` to distinguish genuine values.
        """
        return self.values

    def nonnull_numpy(self) -> np.ndarray:
        """Return only the non-NULL values as a NumPy array."""
        return self.values[self.validity]

    # -- null accounting -----------------------------------------------------

    @property
    def null_count(self) -> int:
        return int((~self.validity).sum())

    @property
    def has_nulls(self) -> bool:
        return bool((~self.validity).any())

    # -- derivation ----------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by integer index (used by joins, sorts and filters)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Column(self.dtype, self.values[indices], self.validity[indices])

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep only rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return Column(self.dtype, self.values[mask], self.validity[mask])

    def slice(self, start: int, stop: int) -> "Column":
        return Column(self.dtype, self.values[start:stop], self.validity[start:stop])

    def concat(self, other: "Column") -> "Column":
        if other.dtype is not self.dtype:
            raise TypeMismatchError(
                f"cannot concatenate {self.dtype.value} column with {other.dtype.value} column"
            )
        return Column(
            self.dtype,
            np.concatenate([self.values, other.values]),
            np.concatenate([self.validity, other.validity]),
        )

    def append_value(self, value: Any) -> "Column":
        """Return a new column with ``value`` appended (None for NULL)."""
        if value is None:
            new_values = np.append(self.values, null_value(self.dtype))
            new_validity = np.append(self.validity, False)
        else:
            new_values = np.append(self.values, self.dtype.coerce(value))
            new_validity = np.append(self.validity, True)
        return Column(self.dtype, new_values.astype(self.dtype.numpy_dtype), new_validity)

    # -- storage accounting --------------------------------------------------

    def byte_size(self) -> int:
        """Nominal storage footprint in bytes (values only, fixed-width accounting)."""
        return len(self) * self.dtype.byte_width

    # -- statistics helpers --------------------------------------------------

    def distinct_values(self) -> list[Any]:
        """Distinct non-NULL values, sorted when the type is orderable."""
        values = {v for v in self.to_pylist() if v is not None}
        try:
            return sorted(values)
        except TypeError:  # pragma: no cover - mixed types cannot occur for typed columns
            return list(values)

    def min(self) -> Any:
        data = self.nonnull_numpy()
        if len(data) == 0:
            return None
        if self.dtype is DataType.STRING:
            return min(data)
        return python_value(self.dtype, data.min())

    def max(self) -> Any:
        data = self.nonnull_numpy()
        if len(data) == 0:
            return None
        if self.dtype is DataType.STRING:
            return max(data)
        return python_value(self.dtype, data.max())

    def is_value_null(self, index: int) -> bool:
        return not bool(self.validity[index]) or is_null(self.dtype, self.values[index])
