"""Columnar storage: a single column of values plus a validity bitmap.

The engine stores every table column as a :class:`Column` — a packed NumPy
array together with a boolean validity mask (True = value present, False =
SQL NULL).  All physical operators exchange data as columns, which keeps the
hot paths vectorised and makes the byte accounting used by the compression
experiments straightforward.

Columns are immutable snapshots over a growable backing buffer.  Appends
(:meth:`Column.concat`, :meth:`Column.append_value`) return a *new* column;
when the receiver is the newest snapshot of its buffer the addition is
written into spare capacity (amortised-doubling growth), otherwise the data
is copied.  Committed prefixes are never overwritten, so older snapshots
keep observing exactly the rows they had — while a streaming append chain
(``StreamIngestor`` flushing batch after batch) costs O(rows) amortised
instead of re-concatenating every column on every batch.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.db.types import DataType, is_null, null_value, python_value
from repro.errors import TypeMismatchError

__all__ = ["Column"]

#: Exact python types the vectorised ``from_values`` fast path accepts per
#: declared dtype.  Anything else (numpy scalars, bools in numeric columns,
#: str subclasses, ...) falls back to the per-value coercion path, which
#: enforces the full :meth:`DataType.coerce` contract.
_FAST_VALUE_TYPES: dict[DataType, tuple[type, ...]] = {
    DataType.INT64: (int,),
    DataType.FLOAT64: (float, int),
    DataType.STRING: (str,),
    DataType.BOOL: (bool,),
}

_MIN_CAPACITY = 8


class _Buffer:
    """Growable backing store shared by a chain of column snapshots.

    ``tip`` is the committed length: only the column whose length equals the
    tip may extend the buffer in place, so positions below any snapshot's
    length are never rewritten.
    """

    __slots__ = ("data", "valid", "tip")

    def __init__(self, data: np.ndarray, valid: np.ndarray, tip: int) -> None:
        self.data = data
        self.valid = valid
        self.tip = tip


class Column:
    """A typed column of values with NULL tracking.

    Parameters
    ----------
    dtype:
        Declared type of the column.
    values:
        Packed NumPy array of values (``dtype.numpy_dtype``).
    validity:
        Boolean array of the same length; False marks NULL positions.
    """

    __slots__ = ("dtype", "_buffer", "_length")

    def __init__(self, dtype: DataType, values: np.ndarray, validity: np.ndarray | None = None) -> None:
        self.dtype = dtype
        values = np.asarray(values, dtype=dtype.numpy_dtype)
        if validity is None:
            validity = np.ones(len(values), dtype=bool)
        else:
            validity = np.asarray(validity, dtype=bool)
        if len(validity) != len(values):
            raise TypeMismatchError(
                f"validity mask length {len(validity)} != values length {len(values)}"
            )
        self._buffer = _Buffer(values, validity, len(values))
        self._length = len(values)

    @classmethod
    def _share(cls, dtype: DataType, buffer: _Buffer, length: int) -> "Column":
        """Construct a snapshot over an existing buffer without copying."""
        column = object.__new__(cls)
        column.dtype = dtype
        column._buffer = buffer
        column._length = length
        return column

    # -- packed storage ------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The packed value array (a view of the backing buffer)."""
        buffer = self._buffer
        if self._length == len(buffer.data):
            return buffer.data
        return buffer.data[: self._length]

    @property
    def validity(self) -> np.ndarray:
        """Boolean mask, False at NULL positions (a view of the buffer)."""
        buffer = self._buffer
        if self._length == len(buffer.valid):
            return buffer.valid
        return buffer.valid[: self._length]

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_values(cls, dtype: DataType, values: Sequence[Any]) -> "Column":
        """Build a column from plain python values (``None`` becomes NULL)."""
        if not isinstance(values, (list, tuple)):
            values = list(values)
        n = len(values)
        if n == 0:
            return cls.empty(dtype)

        # Fast path: one cheap type scan, then a single vectorised conversion
        # (plus a sentinel fill when NULLs are present).  The scan admits only
        # exact types for which ``dtype.coerce`` is the identity, so the fast
        # and slow paths produce identical columns.
        allowed = _FAST_VALUE_TYPES[dtype]
        has_none = False
        fast = True
        for value in values:
            if value is None:
                has_none = True
            elif type(value) not in allowed:
                fast = False
                break
        if fast:
            try:
                return cls._from_values_fast(dtype, values, n, has_none)
            except (TypeError, ValueError, OverflowError):
                pass  # e.g. int overflowing int64 — re-diagnose per value.

        packed = []
        validity = np.ones(n, dtype=bool)
        sentinel = null_value(dtype)
        for i, value in enumerate(values):
            if value is None:
                packed.append(sentinel)
                validity[i] = False
            else:
                packed.append(dtype.coerce(value))
        array = np.array(packed, dtype=dtype.numpy_dtype)
        return cls(dtype, array, validity)

    @classmethod
    def _from_values_fast(
        cls, dtype: DataType, values: Sequence[Any], n: int, has_none: bool
    ) -> "Column":
        npdtype = dtype.numpy_dtype
        if not has_none:
            if dtype is DataType.STRING:
                array = np.empty(n, dtype=object)
                array[:] = values
            else:
                array = np.asarray(values, dtype=npdtype)
            return cls(dtype, array, np.ones(n, dtype=bool))
        validity = np.fromiter((v is not None for v in values), dtype=bool, count=n)
        boxed = np.empty(n, dtype=object)
        boxed[:] = values
        if dtype is DataType.STRING:
            return cls(dtype, boxed, validity)  # sentinel for STRING is None
        array = np.full(n, null_value(dtype), dtype=npdtype)
        array[validity] = boxed[validity].astype(npdtype)
        return cls(dtype, array, validity)

    @classmethod
    def from_numpy(cls, dtype: DataType, array: np.ndarray) -> "Column":
        """Build a column directly from a NumPy array (NaN -> NULL for floats)."""
        array = np.asarray(array, dtype=dtype.numpy_dtype)
        if dtype is DataType.FLOAT64:
            validity = ~np.isnan(array)
        else:
            validity = np.ones(len(array), dtype=bool)
        return cls(dtype, array, validity)

    @classmethod
    def empty(cls, dtype: DataType) -> "Column":
        return cls(dtype, np.empty(0, dtype=dtype.numpy_dtype), np.empty(0, dtype=bool))

    @classmethod
    def infer(cls, values: Sequence[Any]) -> "Column":
        """Infer the dtype from ``values`` and build a column."""
        dtype = DataType.infer_common(list(values))
        return cls.from_values(dtype, values)

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_pylist())

    def __getitem__(self, index: int) -> Any:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"column index {index} out of range for length {self._length}")
        return python_value(self.dtype, self._buffer.data[index], bool(self._buffer.valid[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.dtype is other.dtype and self.to_pylist() == other.to_pylist()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        preview = ", ".join(repr(v) for v in self.to_pylist()[:5])
        suffix = ", ..." if len(self) > 5 else ""
        return f"Column({self.dtype.value}, [{preview}{suffix}], n={len(self)})"

    # -- conversion ----------------------------------------------------------

    def to_pylist(self) -> list[Any]:
        """Return the column as a list of python values (None for NULL)."""
        values = self.values
        nulls = self.null_mask()
        if self.dtype is DataType.STRING:
            result = list(values)
        else:
            result = values.tolist()
        if nulls.any():
            for i in np.flatnonzero(nulls):
                result[i] = None
        return result

    def to_numpy(self) -> np.ndarray:
        """Return the packed value array.

        Float columns encode NULL as NaN; integer columns use the INT64 min
        sentinel.  Use :attr:`validity` to distinguish genuine values.
        """
        return self.values

    def nonnull_numpy(self) -> np.ndarray:
        """Return only the non-NULL values as a NumPy array."""
        return self.values[self.validity]

    # -- null accounting -----------------------------------------------------

    @property
    def null_count(self) -> int:
        return int((~self.validity).sum())

    @property
    def has_nulls(self) -> bool:
        return bool((~self.validity).any())

    def null_mask(self) -> np.ndarray:
        """Boolean mask of NULL positions, including in-array sentinels.

        The validity bitmap is the authoritative NULL record, but a NaN (or
        the INT64 sentinel) written through :meth:`from_numpy`-style paths
        also reads back as NULL; this mask unifies both, vectorised.
        """
        invalid = ~self.validity
        values = self.values
        if self.dtype is DataType.FLOAT64:
            return invalid | np.isnan(values)
        if self.dtype is DataType.INT64:
            return invalid | (values == null_value(DataType.INT64))
        if self.dtype is DataType.STRING:
            if len(values):
                invalid = invalid | np.fromiter(
                    (v is None for v in values), dtype=bool, count=len(values)
                )
            return invalid
        return invalid

    # -- derivation ----------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by integer index (used by joins, sorts and filters)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Column(self.dtype, self.values[indices], self.validity[indices])

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep only rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return Column(self.dtype, self.values[mask], self.validity[mask])

    def slice(self, start: int, stop: int) -> "Column":
        return Column(self.dtype, self.values[start:stop], self.validity[start:stop])

    def concat(self, other: "Column") -> "Column":
        if other.dtype is not self.dtype:
            raise TypeMismatchError(
                f"cannot concatenate {self.dtype.value} column with {other.dtype.value} column"
            )
        n = len(other)
        if n == 0:
            return Column._share(self.dtype, self._buffer, self._length)
        buffer = self._buffer
        total = self._length + n
        if self._length == buffer.tip and total <= len(buffer.data):
            # This column is the newest snapshot and the buffer has spare
            # capacity: commit the addition in place.
            buffer.data[self._length : total] = other.values
            buffer.valid[self._length : total] = other.validity
            buffer.tip = total
            return Column._share(self.dtype, buffer, total)
        # Reallocate with doubling headroom so a chain of appends stays
        # O(n) amortised even though each append returns a fresh snapshot.
        capacity = max(_MIN_CAPACITY, total, 2 * self._length)
        data = np.empty(capacity, dtype=self.dtype.numpy_dtype)
        valid = np.zeros(capacity, dtype=bool)
        data[: self._length] = self.values
        valid[: self._length] = self.validity
        data[self._length : total] = other.values
        valid[self._length : total] = other.validity
        new_buffer = _Buffer(data, valid, total)
        return Column._share(self.dtype, new_buffer, total)

    def append_value(self, value: Any) -> "Column":
        """Return a new column with ``value`` appended (None for NULL)."""
        if value is None:
            addition = Column(
                self.dtype,
                np.array([null_value(self.dtype)], dtype=self.dtype.numpy_dtype),
                np.zeros(1, dtype=bool),
            )
        else:
            addition = Column(
                self.dtype,
                np.array([self.dtype.coerce(value)], dtype=self.dtype.numpy_dtype),
                np.ones(1, dtype=bool),
            )
        return self.concat(addition)

    # -- storage accounting --------------------------------------------------

    def byte_size(self) -> int:
        """Nominal storage footprint in bytes (values only, fixed-width accounting)."""
        return len(self) * self.dtype.byte_width

    # -- statistics helpers --------------------------------------------------

    def distinct_values(self) -> list[Any]:
        """Distinct non-NULL values, sorted when the type is orderable."""
        values = {v for v in self.to_pylist() if v is not None}
        try:
            return sorted(values)
        except TypeError:  # pragma: no cover - mixed types cannot occur for typed columns
            return list(values)

    def min(self) -> Any:
        data = self.nonnull_numpy()
        if len(data) == 0:
            return None
        if self.dtype is DataType.STRING:
            return min(data)
        return python_value(self.dtype, data.min())

    def max(self) -> Any:
        data = self.nonnull_numpy()
        if len(data) == 0:
            return None
        if self.dtype is DataType.STRING:
            return max(data)
        return python_value(self.dtype, data.max())

    def is_value_null(self, index: int) -> bool:
        return not bool(self.validity[index]) or is_null(self.dtype, self.values[index])
