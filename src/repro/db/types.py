"""Column data types for the relational substrate.

The engine is columnar: every column is stored as a NumPy array whose dtype
is determined by its declared :class:`DataType`.  The type system is small on
purpose — the paper's workloads only need integers, floats, strings and
booleans — but it is explicit about null handling and byte accounting because
the compression and zero-IO experiments reason about storage size.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro.errors import TypeMismatchError

__all__ = ["DataType", "null_value", "is_null", "python_value"]


class DataType(enum.Enum):
    """Supported column data types.

    Each member knows its NumPy dtype, a sentinel used to represent NULL in
    the packed array, and its on-disk width in bytes (used by the simulated
    IO model and by the compression benchmarks).
    """

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    BOOL = "bool"

    # -- dtype mapping ------------------------------------------------------

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used for the packed column array."""
        if self is DataType.INT64:
            return np.dtype(np.int64)
        if self is DataType.FLOAT64:
            return np.dtype(np.float64)
        if self is DataType.BOOL:
            return np.dtype(np.bool_)
        return np.dtype(object)

    @property
    def byte_width(self) -> int:
        """Nominal storage width of one value in bytes.

        Strings are accounted at a nominal 16 bytes (pointer + short payload)
        which matches how the paper counts the LOFAR table at "ca. 11MB" for
        1.45M rows x 3 columns of 8-byte values: fixed-width accounting keeps
        the compression-ratio arithmetic transparent.
        """
        if self is DataType.STRING:
            return 16
        if self is DataType.BOOL:
            return 1
        return 8

    @property
    def is_numeric(self) -> bool:
        """True for types on which arithmetic and model fitting are defined."""
        return self in (DataType.INT64, DataType.FLOAT64)

    # -- inference ----------------------------------------------------------

    @classmethod
    def infer(cls, value: Any) -> "DataType":
        """Infer the narrowest :class:`DataType` able to hold ``value``."""
        if isinstance(value, bool) or isinstance(value, np.bool_):
            return cls.BOOL
        if isinstance(value, (int, np.integer)):
            return cls.INT64
        if isinstance(value, (float, np.floating)):
            return cls.FLOAT64
        if isinstance(value, str):
            return cls.STRING
        raise TypeMismatchError(f"cannot infer a column type for {value!r} ({type(value).__name__})")

    @classmethod
    def infer_common(cls, values: list[Any]) -> "DataType":
        """Infer a common type for a list of python values (ignoring NULLs)."""
        seen: set[DataType] = set()
        for value in values:
            if value is None:
                continue
            seen.add(cls.infer(value))
        if not seen:
            return cls.FLOAT64
        if seen == {cls.INT64}:
            return cls.INT64
        if seen <= {cls.INT64, cls.FLOAT64}:
            return cls.FLOAT64
        if seen == {cls.BOOL}:
            return cls.BOOL
        if seen == {cls.STRING}:
            return cls.STRING
        raise TypeMismatchError(f"values mix incompatible types: {sorted(t.value for t in seen)}")

    # -- coercion -----------------------------------------------------------

    def coerce(self, value: Any) -> Any:
        """Coerce a python value to this type, raising on lossy/invalid input."""
        if value is None:
            return None
        try:
            if self is DataType.INT64:
                if isinstance(value, (bool, np.bool_)):
                    raise TypeMismatchError(f"cannot store boolean {value!r} in INT64 column")
                if isinstance(value, (float, np.floating)) and not float(value).is_integer():
                    raise TypeMismatchError(f"cannot losslessly store {value!r} in INT64 column")
                return int(value)
            if self is DataType.FLOAT64:
                if isinstance(value, (bool, np.bool_)):
                    raise TypeMismatchError(f"cannot store boolean {value!r} in FLOAT64 column")
                return float(value)
            if self is DataType.BOOL:
                if isinstance(value, (bool, np.bool_)):
                    return bool(value)
                raise TypeMismatchError(f"cannot store {value!r} in BOOL column")
            if self is DataType.STRING:
                if isinstance(value, str):
                    return value
                raise TypeMismatchError(f"cannot store {value!r} in STRING column")
        except (ValueError, OverflowError) as exc:
            raise TypeMismatchError(f"cannot coerce {value!r} to {self.value}") from exc
        raise TypeMismatchError(f"unknown data type {self!r}")


# ---------------------------------------------------------------------------
# Null handling
# ---------------------------------------------------------------------------

_INT_NULL = np.int64(np.iinfo(np.int64).min)


def null_value(dtype: DataType) -> Any:
    """The in-array sentinel used to represent SQL NULL for ``dtype``."""
    if dtype is DataType.INT64:
        return _INT_NULL
    if dtype is DataType.FLOAT64:
        return np.nan
    if dtype is DataType.BOOL:
        return False  # BOOL columns track nulls via the validity mask only.
    return None


def is_null(dtype: DataType, packed: Any) -> bool:
    """True if the packed (in-array) value represents NULL for ``dtype``."""
    if packed is None:
        return True
    if dtype is DataType.INT64:
        return bool(packed == _INT_NULL)
    if dtype is DataType.FLOAT64:
        try:
            return bool(np.isnan(packed))
        except TypeError:
            return False
    return False


def python_value(dtype: DataType, packed: Any, valid: bool = True) -> Any:
    """Convert a packed array value back to a plain python value (or None)."""
    if not valid or is_null(dtype, packed):
        return None
    if dtype is DataType.INT64:
        return int(packed)
    if dtype is DataType.FLOAT64:
        return float(packed)
    if dtype is DataType.BOOL:
        return bool(packed)
    return packed
