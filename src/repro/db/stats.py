"""Per-column statistics.

The engine keeps lightweight statistics for every base-table column:
min/max, null count, distinct-value estimate and, for low-cardinality
columns, the full domain.  These statistics feed three consumers:

* the query planner (selectivity guesses for filter ordering),
* the model harvester (deciding whether a column is *enumerable* for the
  parameter-space enumeration of §4.2 of the paper), and
* the synopsis baselines (histogram bucket boundaries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.db.column import Column
from repro.db.table import Table
from repro.db.types import DataType

__all__ = [
    "ColumnStats",
    "TableStats",
    "compute_column_stats",
    "compute_table_stats",
    "merge_table_stats",
]

#: Columns with at most this many distinct values are considered enumerable
#: and have their full domain materialised in the statistics.
ENUMERABLE_DISTINCT_LIMIT = 4096


@dataclass
class ColumnStats:
    """Summary statistics for one column."""

    name: str
    dtype: DataType
    row_count: int
    null_count: int
    distinct_count: int
    min_value: Any = None
    max_value: Any = None
    mean: float | None = None
    std: float | None = None
    #: Full sorted domain for low-cardinality columns, else None.
    domain: list[Any] | None = None
    #: Row count per domain value (aligned with ``domain``), else None.
    #: Lets consumers weight by the actual value frequencies instead of
    #: assuming a uniform spread over the domain.
    domain_counts: list[int] | None = None

    @property
    def is_enumerable(self) -> bool:
        """True when the column's full domain is known (few distinct values).

        This is the machine notion of the paper's "enumerable column": a
        column (such as the LOFAR observation frequency, which only takes
        values in {0.12, 0.15, 0.16, 0.18}) whose values can be regenerated
        without touching the stored data.
        """
        return self.domain is not None

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    def selectivity_equals(self, value: Any) -> float:
        """Estimated selectivity of ``column = value`` under uniformity."""
        if self.row_count == 0 or self.distinct_count == 0:
            return 0.0
        if self.domain is not None and value not in self.domain:
            return 0.0
        return 1.0 / self.distinct_count

    def selectivity_range(self, low: Any | None, high: Any | None) -> float:
        """Estimated selectivity of a range predicate, assuming uniformity."""
        if self.row_count == 0:
            return 0.0
        if not self.dtype.is_numeric or self.min_value is None or self.max_value is None:
            return 0.3  # classic textbook default for unsupported predicates
        lo = float(self.min_value) if low is None else float(low)
        hi = float(self.max_value) if high is None else float(high)
        span = float(self.max_value) - float(self.min_value)
        if span <= 0:
            return 1.0 if lo <= float(self.min_value) <= hi else 0.0
        overlap = max(0.0, min(hi, float(self.max_value)) - max(lo, float(self.min_value)))
        return min(1.0, overlap / span)

    def merge(self, other: "ColumnStats") -> "ColumnStats":
        """Merge statistics of two *disjoint* row sets of the same column.

        The merge is associative and commutative, so per-partition (or
        per-batch) statistics can be combined in any grouping and reproduce
        what :func:`compute_column_stats` would report over the union —
        exactly for row/null counts, min/max, mean, domains and domain
        counts; ``std`` via the pooled second moment (population std, as
        computed); ``distinct_count`` exactly whenever both sides carry
        their full domain (or are empty), otherwise as a max lower bound.
        """
        if self.name != other.name or self.dtype is not other.dtype:
            raise ValueError(
                f"cannot merge stats of {self.name!r}:{self.dtype.value} "
                f"with {other.name!r}:{other.dtype.value}"
            )
        n1 = self.row_count - self.null_count
        n2 = other.row_count - other.null_count

        def _combine(a: Any, b: Any, pick: Any) -> Any:
            if a is None:
                return b
            if b is None:
                return a
            return pick(a, b)

        mean: float | None = None
        std: float | None = None
        if n1 == 0:
            mean, std = other.mean, other.std
        elif n2 == 0:
            mean, std = self.mean, self.std
        elif self.mean is not None and other.mean is not None:
            total = n1 + n2
            mean = (n1 * self.mean + n2 * other.mean) / total
            if self.std is not None and other.std is not None:
                second_moment = (
                    n1 * (self.std * self.std + self.mean * self.mean)
                    + n2 * (other.std * other.std + other.mean * other.mean)
                ) / total
                std = math.sqrt(max(0.0, second_moment - mean * mean))

        # A side's value multiset is fully known when it carries its domain
        # (or holds no non-null data at all); only then is the merged domain
        # — and hence the merged distinct count — exact.
        domain: list[Any] | None = None
        domain_counts: list[int] | None = None
        distinct_count = max(self.distinct_count, other.distinct_count)
        if (self.domain is not None or n1 == 0) and (other.domain is not None or n2 == 0):
            counts: dict[Any, int] = {}
            for side in (self, other):
                if side.domain is None:
                    continue
                side_counts = (
                    side.domain_counts
                    if side.domain_counts is not None
                    else [0] * len(side.domain)
                )
                for value, count in zip(side.domain, side_counts):
                    counts[value] = counts.get(value, 0) + int(count)
            distinct_count = len(counts)
            if 0 < distinct_count <= ENUMERABLE_DISTINCT_LIMIT:
                domain = sorted(counts)
                domain_counts = [counts[value] for value in domain]

        return ColumnStats(
            name=self.name,
            dtype=self.dtype,
            row_count=self.row_count + other.row_count,
            null_count=self.null_count + other.null_count,
            distinct_count=distinct_count,
            min_value=_combine(self.min_value, other.min_value, min),
            max_value=_combine(self.max_value, other.max_value, max),
            mean=mean,
            std=std,
            domain=domain,
            domain_counts=domain_counts,
        )


@dataclass
class TableStats:
    """Statistics for a whole table."""

    table_name: str
    row_count: int
    byte_size: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        return self.columns[name]


def compute_column_stats(name: str, column: Column) -> ColumnStats:
    """Compute :class:`ColumnStats` for a column by scanning it once."""
    row_count = len(column)
    null_count = column.null_count
    data = column.nonnull_numpy()

    if column.dtype is DataType.STRING:
        values, value_counts = np.unique(data, return_counts=True) if len(data) else ([], [])
        distinct_count = len(values)
        domain = None
        domain_counts = None
        if 0 < distinct_count <= ENUMERABLE_DISTINCT_LIMIT:
            domain = [str(v) for v in values]
            domain_counts = [int(c) for c in value_counts]
        return ColumnStats(
            name=name,
            dtype=column.dtype,
            row_count=row_count,
            null_count=null_count,
            distinct_count=distinct_count,
            min_value=domain[0] if domain else (min(data.tolist()) if len(data) else None),
            max_value=domain[-1] if domain else (max(data.tolist()) if len(data) else None),
            domain=domain,
            domain_counts=domain_counts,
        )

    if len(data) == 0:
        return ColumnStats(
            name=name,
            dtype=column.dtype,
            row_count=row_count,
            null_count=null_count,
            distinct_count=0,
        )

    unique, unique_counts = np.unique(data, return_counts=True)
    distinct_count = len(unique)
    domain = None
    domain_counts = None
    if distinct_count <= ENUMERABLE_DISTINCT_LIMIT:
        if column.dtype is DataType.INT64:
            domain = [int(v) for v in unique]
        elif column.dtype is DataType.BOOL:
            domain = [bool(v) for v in unique]
        else:
            domain = [float(v) for v in unique]
        domain_counts = [int(c) for c in unique_counts]

    mean = None
    std = None
    min_value: Any = None
    max_value: Any = None
    if column.dtype.is_numeric:
        mean = float(np.mean(data))
        std = float(np.std(data))
        min_value = column.min()
        max_value = column.max()
    elif column.dtype is DataType.BOOL:
        min_value = bool(unique.min())
        max_value = bool(unique.max())

    return ColumnStats(
        name=name,
        dtype=column.dtype,
        row_count=row_count,
        null_count=null_count,
        distinct_count=distinct_count,
        min_value=min_value,
        max_value=max_value,
        mean=mean,
        std=std,
        domain=domain,
        domain_counts=domain_counts,
    )


def compute_table_stats(table: Table) -> TableStats:
    """Compute statistics for every column of ``table``."""
    stats = TableStats(table_name=table.name, row_count=table.num_rows, byte_size=table.byte_size())
    for col_name in table.schema.names:
        stats.columns[col_name] = compute_column_stats(col_name, table.column(col_name))
    return stats


def merge_table_stats(base: TableStats, delta: TableStats) -> TableStats:
    """Merge whole-table statistics of two disjoint row sets.

    Column-wise :meth:`ColumnStats.merge`; both sides must describe the
    same column set.  Used to fold per-partition (or per-ingest-batch)
    statistics into table statistics without rescanning the whole table.
    """
    if set(base.columns) != set(delta.columns):
        raise ValueError(
            f"cannot merge table stats with different columns: "
            f"{sorted(base.columns)} vs {sorted(delta.columns)}"
        )
    merged = TableStats(
        table_name=base.table_name,
        row_count=base.row_count + delta.row_count,
        byte_size=base.byte_size + delta.byte_size,
    )
    for name, column_stats in base.columns.items():
        merged.columns[name] = column_stats.merge(delta.columns[name])
    return merged
