"""Table schemas: ordered, typed column definitions.

A :class:`Schema` is an immutable description of a table's columns.  It is
shared by base tables, intermediate operator results and query results, so
everything in the engine that produces rows carries one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.db.types import DataType
from repro.errors import SchemaError

__all__ = ["ColumnDef", "Schema"]


@dataclass(frozen=True)
class ColumnDef:
    """A single column definition: name, type and nullability."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"column name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.dtype, DataType):
            raise SchemaError(f"column {self.name!r}: dtype must be a DataType, got {self.dtype!r}")

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.dtype.value.upper()}{null}"


class Schema:
    """An ordered collection of :class:`ColumnDef` with unique names."""

    def __init__(self, columns: Iterable[ColumnDef]) -> None:
        self._columns: tuple[ColumnDef, ...] = tuple(columns)
        names = [c.name for c in self._columns]
        if len(names) != len(set(names)):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names in schema: {duplicates}")
        self._index = {c.name: i for i, c in enumerate(self._columns)}

    # -- constructors -------------------------------------------------------

    @classmethod
    def of(cls, **columns: DataType) -> "Schema":
        """Build a schema from keyword arguments: ``Schema.of(a=DataType.INT64)``."""
        return cls(ColumnDef(name, dtype) for name, dtype in columns.items())

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, DataType]]) -> "Schema":
        """Build a schema from ``(name, dtype)`` pairs."""
        return cls(ColumnDef(name, dtype) for name, dtype in pairs)

    # -- access -------------------------------------------------------------

    @property
    def columns(self) -> tuple[ColumnDef, ...]:
        return self._columns

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[ColumnDef]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def column(self, name: str) -> ColumnDef:
        """Return the definition of column ``name`` (raises SchemaError if absent)."""
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise SchemaError(f"no column named {name!r}; available: {self.names}") from None

    def index_of(self, name: str) -> int:
        """Return the ordinal position of column ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}; available: {self.names}") from None

    def dtype_of(self, name: str) -> DataType:
        return self.column(name).dtype

    # -- derivation ---------------------------------------------------------

    def select(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema(self.column(name) for name in names)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """A new schema with columns renamed according to ``mapping``."""
        return Schema(
            ColumnDef(mapping.get(c.name, c.name), c.dtype, c.nullable) for c in self._columns
        )

    def concat(self, other: "Schema") -> "Schema":
        """A new schema with this schema's columns followed by ``other``'s."""
        return Schema(list(self._columns) + list(other.columns))

    def row_byte_width(self) -> int:
        """Nominal width of one row in bytes (used by the IO model)."""
        return sum(c.dtype.byte_width for c in self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(str(c) for c in self._columns)
        return f"Schema({cols})"
