"""System catalog: the registry of base tables and their statistics.

The catalog owns every base :class:`~repro.db.table.Table`, keeps their
:class:`~repro.db.stats.TableStats` fresh, and exposes lookups used by the
planner, the model harvester and the storage optimiser.

Concurrency model: all mutations (DDL, ``mark_dirty`` version bumps) are
serialized under one re-entrant *commit lock*; writers such as
``Database.insert_rows`` hold it across an append **and** its version bump
so the pair commits atomically (batch granularity).  Readers never block —
they either read live state (plain attribute reads of immutable objects)
or pin a :class:`~repro.db.snapshot.CatalogSnapshot` via :meth:`reading`,
after which every lookup on that thread resolves through the pin until the
context exits.  The pin is thread-local, so concurrent queries on other
threads are unaffected.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.db.schema import Schema
from repro.db.snapshot import CatalogSnapshot, PinStack
from repro.db.stats import TableStats, compute_table_stats, merge_table_stats
from repro.db.table import Table
from repro.errors import CatalogError

__all__ = ["Catalog"]


class Catalog:
    """A registry mapping table names to tables and their statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._stats_dirty: set[str] = set()
        #: Per-table metadata committed alongside the tables (the archive
        #: tier keeps its stats overlay and frozen segment list here).
        #: Lives in the catalog — not the Database façade — so
        #: :meth:`snapshot` captures it in the same commit as the tables it
        #: describes and pinned readers see matching archive state.
        self._table_meta: dict[str, dict[str, Any]] = {}
        self._version = 0
        # Serializes every commit (DDL + version bump).  Re-entrant so a
        # writer can hold it across a multi-step commit (append + mark_dirty)
        # that internally takes it again.
        self._commit_lock = threading.RLock()
        # Per-thread stack of pinned snapshots (innermost pin wins).
        self._local = PinStack()

    # -- snapshot pinning ------------------------------------------------------

    @property
    def commit_lock(self) -> threading.RLock:
        """The lock serializing commits; writers hold it across a batch."""
        return self._commit_lock

    def _pin(self) -> CatalogSnapshot | None:
        pins = self._local.pins
        return pins[-1] if pins else None

    @property
    def active_snapshot(self) -> CatalogSnapshot | None:
        """The snapshot the calling thread currently reads through, if any."""
        return self._pin()

    def snapshot(self) -> CatalogSnapshot:
        """Pin a consistent ``(version, tables, stats)`` view at a commit
        boundary.

        Taken under the commit lock, so the version and every pinned table
        belong to the same committed state — a concurrent writer mid-batch
        can never leak a table whose version bump has not landed yet.
        Stats already fresh in the live cache are carried over so the
        snapshot does not recompute them.
        """
        with self._commit_lock:
            tables = {name: table.pinned() for name, table in self._tables.items()}
            stats = {
                name: self._stats[name]
                for name in self._tables
                if name in self._stats and name not in self._stats_dirty
            }
            return CatalogSnapshot(self._version, tables, stats, self._table_meta)

    @contextmanager
    def reading(self, snapshot: CatalogSnapshot) -> Iterator[CatalogSnapshot]:
        """Resolve every catalog read on this thread through ``snapshot``.

        Nests: an inner ``reading()`` (a differential query issued while a
        snapshot is already pinned) shadows the outer pin until it exits.
        """
        pins = self._local.pins
        pins.append(snapshot)
        try:
            yield snapshot
        finally:
            pins.pop()

    @property
    def version(self) -> int:
        """Monotonically increasing counter, bumped on every DDL or data change.

        Consumers (the SQL plan cache, harvest schedulers) compare a stored
        version against the current one to detect that anything in the
        catalog — schemas or table contents — may have changed.  Inside a
        :meth:`reading` context this reports the *pinned* version, so caches
        keyed on it stay consistent with the data the query will scan.
        """
        pins = self._local.pins
        if pins:
            return pins[-1].version
        return self._version

    @property
    def live_version(self) -> int:
        """The committed version, ignoring any pin on the calling thread.

        Snapshot freshness checks must use this: comparing a candidate
        snapshot against a *pinned* version would always report "fresh"
        from inside a reading context.
        """
        return self._version

    def restore_version(self, version: int) -> None:
        """Fast-forward the version counter (recovery from a durable store).

        Keeps version numbers monotone across a restart so anything a
        caller persisted alongside a version (manifests, audit trails)
        stays comparable; never rewinds.
        """
        with self._commit_lock:
            self._version = max(self._version, int(version))

    # -- registration ----------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create and register an empty table."""
        with self._commit_lock:
            if name in self._tables:
                raise CatalogError(f"table {name!r} already exists")
            table = Table.empty(name, schema)
            self._tables[name] = table
            self._stats_dirty.add(name)
            self._version += 1
            return table

    def register_table(self, table: Table, replace: bool = False) -> Table:
        """Register an existing table object under its own name."""
        with self._commit_lock:
            if table.name in self._tables and not replace:
                raise CatalogError(f"table {table.name!r} already exists")
            if replace:
                # A replaced table invalidates its partition map: the old
                # per-shard min/max stats no longer describe the rows, and
                # serving them would let pruning drop live rows.  (Appends
                # keep the map valid — the tail past ``built_rows`` is never
                # pruned — so ``replace_table`` does not clear it.)
                entry = self._table_meta.get(table.name)
                if entry is not None:
                    entry.pop("partitions", None)
            self._tables[table.name] = table
            self._stats_dirty.add(table.name)
            self._version += 1
            return table

    def drop_table(self, name: str) -> None:
        with self._commit_lock:
            if name not in self._tables:
                raise CatalogError(f"cannot drop unknown table {name!r}")
            del self._tables[name]
            self._stats.pop(name, None)
            self._stats_dirty.discard(name)
            self._table_meta.pop(name, None)
            self._version += 1

    def replace_table(self, table: Table) -> None:
        """Replace the stored table (e.g. after appends return a new object)."""
        with self._commit_lock:
            if table.name not in self._tables:
                raise CatalogError(f"cannot replace unknown table {table.name!r}")
            self._tables[table.name] = table
            self._stats_dirty.add(table.name)
            self._version += 1

    # -- lookup -------------------------------------------------------------------

    def table(self, name: str) -> Table:
        pin = self._pin()
        if pin is not None:
            return pin.table(name)
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}; known tables: {sorted(self._tables)}") from None

    def live_table(self, name: str) -> Table:
        """The live (mutable) table, bypassing any pinned snapshot.

        DML must use this: resolving an INSERT's target through a pin would
        append to a frozen copy and silently lose the write.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}; known tables: {sorted(self._tables)}") from None

    def has_table(self, name: str) -> bool:
        pin = self._pin()
        if pin is not None:
            return pin.has_table(name)
        return name in self._tables

    def table_names(self) -> list[str]:
        pin = self._pin()
        if pin is not None:
            return pin.table_names()
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __iter__(self) -> Iterator[Table]:
        pin = self._pin()
        if pin is not None:
            return iter(pin)
        return iter(list(self._tables.values()))

    def __len__(self) -> int:
        pin = self._pin()
        if pin is not None:
            return len(pin)
        return len(self._tables)

    # -- statistics -----------------------------------------------------------------

    def mark_dirty(self, name: str) -> None:
        """Mark a table's statistics as stale (call after in-place appends)."""
        with self._commit_lock:
            if name not in self._tables:
                raise CatalogError(f"unknown table {name!r}")
            self._stats_dirty.add(name)
            self._version += 1

    def stats(self, name: str) -> TableStats:
        """Return (and lazily recompute) statistics for ``name``.

        Inside a :meth:`reading` context the statistics come from the pinned
        tables, so estimates and data always describe the same rows.  Live
        recomputes run on a pinned copy of the table outside the commit lock
        (stats can be expensive), then publish under it.
        """
        pin = self._pin()
        if pin is not None:
            return pin.stats(name)
        with self._commit_lock:
            if name not in self._tables:
                raise CatalogError(f"unknown table {name!r}")
            overlay = self._table_meta.get(name, {}).get("stats_overlay")
            if name not in self._stats_dirty and name in self._stats:
                base = self._stats[name]
                return overlay(base) if overlay is not None else base
            frozen = self._tables[name].pinned()
            version = self._version
        stats = compute_table_stats(frozen)
        with self._commit_lock:
            # Only publish if no commit landed while computing; a stale
            # publish would pair new data with old stats.
            if name in self._tables and self._version == version:
                self._stats[name] = stats
                self._stats_dirty.discard(name)
        return overlay(stats) if overlay is not None else stats

    def stats_clean(self, name: str) -> bool:
        """True when the cached live statistics for ``name`` are fresh.

        Writers sample this *before* an append (under the commit lock) to
        learn whether the cached stats describe exactly the pre-append rows
        — the precondition for :meth:`merge_stats_delta`.
        """
        with self._commit_lock:
            return name in self._stats and name not in self._stats_dirty

    def merge_stats_delta(self, name: str, delta: TableStats) -> bool:
        """Fold per-batch statistics into the cached stats of ``name``.

        ``delta`` must describe exactly the rows appended since the cached
        statistics were computed; the row-count equation
        ``cached.row_count + delta.row_count == live.num_rows`` guards that
        invariant.  On success the merged statistics are published as fresh
        (no whole-table rescan) and True is returned; any mismatch returns
        False and leaves lazy recomputation to the next :meth:`stats` call.
        Callers must sample :meth:`stats_clean` before their append — a base
        that was already stale may satisfy the row-count equation by
        coincidence.
        """
        with self._commit_lock:
            table = self._tables.get(name)
            base = self._stats.get(name)
            if table is None or base is None:
                return False
            if base.row_count + delta.row_count != table.num_rows:
                return False
            try:
                merged = merge_table_stats(base, delta)
            except ValueError:
                return False
            merged.byte_size = table.byte_size()
            self._stats[name] = merged
            self._stats_dirty.discard(name)
            return True

    # -- per-table commit metadata ------------------------------------------------

    def set_table_meta(self, name: str, key: str, value: Any) -> None:
        """Attach metadata to a table, committed with the catalog state.

        Taken under the commit lock so the metadata lands (or clears) in
        the same commit as the table change it accompanies — a snapshot can
        never pair a pre-archive table with post-archive metadata or vice
        versa.  Values should be immutable; snapshots alias them.

        Metadata can also change *without* a table change (publishing a
        partition map over an untouched table), so this is a versioned
        commit of its own — otherwise memoized snapshots and cached plans
        would keep serving the old metadata.
        """
        with self._commit_lock:
            self._table_meta.setdefault(name, {})[key] = value
            self._version += 1

    def clear_table_meta(self, name: str, key: str) -> None:
        with self._commit_lock:
            entry = self._table_meta.get(name)
            if entry is not None:
                entry.pop(key, None)
                if not entry:
                    del self._table_meta[name]
                self._version += 1

    def table_meta(self, name: str, key: str, default: Any = None) -> Any:
        """Pin-aware metadata lookup (the pinned commit's value, if pinned)."""
        pin = self._pin()
        if pin is not None:
            return pin.table_meta(name, key, default)
        entry = self._table_meta.get(name)
        if entry is None:
            return default
        return entry.get(key, default)

    def set_stats_overlay(self, name: str, overlay: Callable[[TableStats], TableStats]) -> None:
        """Serve ``stats(name)`` through ``overlay`` (archive-tier merging)."""
        self.set_table_meta(name, "stats_overlay", overlay)

    def clear_stats_overlay(self, name: str) -> None:
        self.clear_table_meta(name, "stats_overlay")

    def total_bytes(self) -> int:
        """Total nominal storage footprint of all registered tables."""
        pin = self._pin()
        if pin is not None:
            return pin.total_bytes()
        return sum(table.byte_size() for table in list(self._tables.values()))

    def describe(self) -> str:
        """A human-readable summary of the catalog contents."""
        lines = []
        for name in self.table_names():
            table = self.table(name)
            columns = ", ".join(f"{c.name}:{c.dtype.value}" for c in table.schema)
            lines.append(f"{name} ({table.num_rows} rows, {table.byte_size()} bytes): {columns}")
        return "\n".join(lines) if lines else "(empty catalog)"
