"""System catalog: the registry of base tables and their statistics.

The catalog owns every base :class:`~repro.db.table.Table`, keeps their
:class:`~repro.db.stats.TableStats` fresh, and exposes lookups used by the
planner, the model harvester and the storage optimiser.
"""

from __future__ import annotations

from typing import Iterator

from repro.db.schema import Schema
from repro.db.stats import TableStats, compute_table_stats
from repro.db.table import Table
from repro.errors import CatalogError

__all__ = ["Catalog"]


class Catalog:
    """A registry mapping table names to tables and their statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._stats_dirty: set[str] = set()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonically increasing counter, bumped on every DDL or data change.

        Consumers (the SQL plan cache, harvest schedulers) compare a stored
        version against the current one to detect that anything in the
        catalog — schemas or table contents — may have changed.
        """
        return self._version

    def restore_version(self, version: int) -> None:
        """Fast-forward the version counter (recovery from a durable store).

        Keeps version numbers monotone across a restart so anything a
        caller persisted alongside a version (manifests, audit trails)
        stays comparable; never rewinds.
        """
        self._version = max(self._version, int(version))

    # -- registration ----------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create and register an empty table."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table.empty(name, schema)
        self._tables[name] = table
        self._stats_dirty.add(name)
        self._version += 1
        return table

    def register_table(self, table: Table, replace: bool = False) -> Table:
        """Register an existing table object under its own name."""
        if table.name in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        self._stats_dirty.add(table.name)
        self._version += 1
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[name]
        self._stats.pop(name, None)
        self._stats_dirty.discard(name)
        self._version += 1

    def replace_table(self, table: Table) -> None:
        """Replace the stored table (e.g. after appends return a new object)."""
        if table.name not in self._tables:
            raise CatalogError(f"cannot replace unknown table {table.name!r}")
        self._tables[table.name] = table
        self._stats_dirty.add(table.name)
        self._version += 1

    # -- lookup -------------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}; known tables: {sorted(self._tables)}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    # -- statistics -----------------------------------------------------------------

    def mark_dirty(self, name: str) -> None:
        """Mark a table's statistics as stale (call after in-place appends)."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        self._stats_dirty.add(name)
        self._version += 1

    def stats(self, name: str) -> TableStats:
        """Return (and lazily recompute) statistics for ``name``."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        if name in self._stats_dirty or name not in self._stats:
            self._stats[name] = compute_table_stats(self._tables[name])
            self._stats_dirty.discard(name)
        return self._stats[name]

    def total_bytes(self) -> int:
        """Total nominal storage footprint of all registered tables."""
        return sum(table.byte_size() for table in self._tables.values())

    def describe(self) -> str:
        """A human-readable summary of the catalog contents."""
        lines = []
        for name in self.table_names():
            table = self._tables[name]
            columns = ", ".join(f"{c.name}:{c.dtype.value}" for c in table.schema)
            lines.append(f"{name} ({table.num_rows} rows, {table.byte_size()} bytes): {columns}")
        return "\n".join(lines) if lines else "(empty catalog)"
