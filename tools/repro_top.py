#!/usr/bin/env python3
"""repro_top: a live terminal dashboard over ``LawsDatabase.ops_report()``.

A ``top``-style view of a running (or demo) instance: query throughput by
route, SLO burn rates with latency percentiles, cost-calibration
provenance, the flight recorder's self-telemetry accounting, and component
health — redrawn in place with ANSI escapes.

Modes:

* ``--demo`` (default when run standalone): builds an in-process demo
  database, drives synthetic query traffic between frames, and renders the
  live report — an honest end-to-end exercise of the ops surface.
* ``--report FILE``: renders a saved ``ops_report()`` JSON document once
  (what the CI artifact upload produces) — no database needed.

Non-interactive use: ``--frames N`` stops after N redraws, ``--once``
renders a single frame without clearing the screen (safe in pipelines and
CI logs), ``--interval`` sets the refresh period.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RESET = "\x1b[0m"


def _style(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.2f}s"


def render(report: dict[str, Any], color: bool = True) -> str:
    """Render one ops report as a fixed-layout text frame."""
    lines: list[str] = []
    queries = report.get("queries", {})
    lines.append(_style("repro — self-observing warehouse", _BOLD, color))
    lines.append(
        f"queries {queries.get('total', 0):.0f}  "
        f"errors {queries.get('errors', 0):.0f}  "
        f"fallbacks {queries.get('fallbacks', 0):.0f}  "
        f"degraded {queries.get('degraded', 0):.0f}  "
        f"verified {queries.get('verified', 0):.0f}  "
        f"slow {queries.get('slow', 0)}"
    )
    by_route = queries.get("by_route", {})
    if by_route:
        routes = "  ".join(
            f"{route or '(none)'}={count:.0f}"
            for route, count in sorted(by_route.items(), key=lambda kv: -kv[1])
        )
        lines.append(_style(f"  routes: {routes}", _DIM, color))

    slo = report.get("slo", {})
    percentiles = slo.get("latency_percentiles", {})
    lines.append("")
    lines.append(
        _style("SLOs", _BOLD, color)
        + f"  p50 {_fmt_seconds(percentiles.get('p50'))}"
        + f"  p99 {_fmt_seconds(percentiles.get('p99'))}"
    )
    for name, entry in sorted(slo.get("objectives", {}).items()):
        alerting = entry.get("alerting", False)
        marker = _style("BURN", _RED, color) if alerting else _style("ok", _GREEN, color)
        windows = entry.get("windows", {})
        burns = "  ".join(
            f"{label} {window.get('burn_rate', 0.0):.1f}x/"
            f"{window.get('burn_threshold', 0.0):g} "
            f"({window.get('bad', 0)}/{window.get('events', 0)} bad)"
            for label, window in windows.items()
        )
        lines.append(
            f"  {name:<18} {marker:<14} objective {entry.get('objective', 0.0):g}  {burns}"
        )

    calibration = report.get("calibration", {})
    lines.append("")
    lines.append(
        _style("Cost model", _BOLD, color)
        + f"  {calibration.get('source', '?')}"
        + f"  recalibrations={calibration.get('recalibrations', 0)}"
        + f"  traced={calibration.get('observed_traces', 0)}"
    )
    for field, estimate in sorted(calibration.get("estimates", {}).items()):
        observed = estimate.get("ewma_seconds_per_row")
        planned = estimate.get("planned_seconds_per_row")
        if observed is None or not planned:
            continue
        ratio = observed / planned
        code = _YELLOW if (ratio > 1.25 or ratio < 0.8) else _DIM
        lines.append(
            _style(
                f"  {field:<28} observed/planned {ratio:5.2f}x "
                f"({estimate.get('samples', 0)} sample(s))",
                code,
                color,
            )
        )

    flight = report.get("flight", {})
    if flight:
        lines.append("")
        lines.append(
            _style("Flight recorder", _BOLD, color)
            + f"  recorded={flight.get('recorded_queries', 0)}"
            + f"  pending={flight.get('pending_queries', 0)}"
            + f"  flushes={flight.get('flushes', 0)}"
            + f"  rows={flight.get('flushed_rows', 0)}"
            + (
                "  watching-drift"
                if flight.get("watching_latency_drift")
                else "  (no baseline yet)"
            )
        )

    health = report.get("health", {})
    components = health.get("components", health)
    degraded = []
    if isinstance(components, dict):
        for name, entry in components.items():
            state = entry.get("state", entry) if isinstance(entry, dict) else entry
            if isinstance(state, str) and state not in ("healthy", "HEALTHY"):
                degraded.append((name, state))
    lines.append("")
    if degraded:
        lines.append(_style("Health", _BOLD, color) + "  " + _style("DEGRADED", _RED, color))
        for name, state in sorted(degraded):
            lines.append(_style(f"  {name}: {state}", _RED, color))
    else:
        lines.append(_style("Health", _BOLD, color) + "  " + _style("all healthy", _GREEN, color))

    events = report.get("events", {})
    if events:
        top = sorted(events.items(), key=lambda kv: -kv[1])[:8]
        lines.append("")
        lines.append(
            _style("Events", _BOLD, color)
            + "  "
            + "  ".join(f"{kind}={count}" for kind, count in top)
        )
    return "\n".join(lines)


def _build_demo_db():
    from repro import AccuracyContract, LawsDatabase

    db = LawsDatabase(verify_sample_fraction=0.25, verify_seed=7)
    n = 2000
    db.load_dict(
        "sensors",
        {
            "t": [float(i % 500) for i in range(n)],
            "g": [i % 4 for i in range(n)],
            "reading": [3.0 * (i % 500) + 10.0 * (i % 4) for i in range(n)],
        },
    )
    db.fit("sensors", "reading ~ linear(t)", group_by="g")
    contract = AccuracyContract(max_relative_error=0.1)
    return db, contract


def _drive_demo(db, contract, round_index: int) -> None:
    from repro import AccuracyContract

    db.query("SELECT g, avg(reading) AS m FROM sensors GROUP BY g", contract)
    db.query("SELECT avg(reading) AS m FROM sensors", contract)
    db.query("SELECT count(*) AS n FROM sensors", AccuracyContract(mode="exact"))
    if round_index % 3 == 2:
        db.ingest(
            "sensors",
            [(float(round_index % 500), round_index % 4, 3.0 * (round_index % 500))],
            flush=True,
        )
    db.flush_telemetry()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", type=Path, help="render a saved ops_report() JSON once")
    parser.add_argument("--demo", action="store_true", help="drive an in-process demo database")
    parser.add_argument("--interval", type=float, default=1.0, help="refresh period (seconds)")
    parser.add_argument("--frames", type=int, default=0, help="stop after N frames (0 = forever)")
    parser.add_argument("--once", action="store_true", help="single frame, no screen clearing")
    parser.add_argument("--no-color", action="store_true", help="disable ANSI colors")
    args = parser.parse_args(argv)
    color = not args.no_color and sys.stdout.isatty()

    if args.report is not None:
        report = json.loads(args.report.read_text())
        print(render(report, color=color))
        return 0

    # Demo mode is the default interactive behaviour: there is no external
    # server to attach to — the database lives in-process.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    db, contract = _build_demo_db()
    frame = 0
    try:
        while True:
            _drive_demo(db, contract, frame)
            text = render(db.ops_report(), color=color)
            if args.once:
                print(text)
                return 0
            sys.stdout.write(_CLEAR + text + "\n")
            sys.stdout.flush()
            frame += 1
            if args.frames and frame >= args.frames:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
