#!/usr/bin/env python
"""Lint: flag new module-level mutable state in concurrency-sensitive packages.

The concurrency model (README "Concurrency model") relies on shared state
living in *instances* guarded by the catalog commit lock or collector
locks — a module-level dict/list/set (or a lock hiding one) is invisible
to snapshots, shared across every database instance in the process, and a
classic source of cross-thread (and cross-test) leakage.  This checker
walks the AST of the guarded packages and fails on any module-level
binding of a mutable container or synchronization primitive that is not
on the explicit allowlist below.

Allowlisted entries are read-only lookup tables (never mutated after
import) or deliberate process-wide primitives; add to the list only with
a justification in the PR.

Usage: python tools/check_module_state.py [root ...]
Exits non-zero on violations or stale allowlist entries.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Packages whose module scope must stay free of mutable state.
DEFAULT_ROOTS = ("src/repro/db", "src/repro/obs", "src/repro/parallel")

#: Worker-side modules that must not import the observability hub at module
#: scope: workers report nothing themselves (spans/metrics/journal are the
#: coordinator's job), and a forked worker importing the obs hub would drag
#: its mutable singletons across the fork boundary.
OBS_FREE_MODULES = (
    "src/repro/parallel/kernels.py",
    "src/repro/parallel/pool.py",
)

#: relative path -> names that are allowed despite looking mutable.
ALLOWLIST: dict[str, set[str]] = {
    # Read-only dtype -> extractor dispatch table.
    "src/repro/db/column.py": {"_FAST_VALUE_TYPES"},
    # Read-only operator / function dispatch tables.
    "src/repro/db/expressions.py": {
        "_ARITHMETIC_OPS",
        "_COMPARISON_OPS",
        "_SCALAR_FUNCTIONS",
    },
    # Read-only aggregate-name set.
    "src/repro/db/operators/aggregate.py": {"SUPPORTED_AGGREGATES"},
    # Read-only keyword set / type-name table for the SQL front end.
    "src/repro/db/sql/lexer.py": {"KEYWORDS"},
    "src/repro/db/sql/parser.py": {"_TYPE_NAMES"},
    # Process-wide append lock: serializes Table.append_rows column swaps
    # across all instances by design (see table.py).
    "src/repro/db/table.py": {"_append_lock"},
    # Fork-inherited task registry for the process worker backend: tasks
    # are parked here *before* the pool forks so children get the closures
    # copy-on-write; entries are lock-guarded and emptied in a finally.
    "src/repro/parallel/pool.py": {"_TASK_REGISTRY", "_registry_lock"},
    # Read-only metric-name -> HELP-text table for Prometheus exposition.
    "src/repro/obs/metrics.py": {"_METRIC_HELP"},
}

#: Names whose module scope is conventional and never mutated.
IGNORED_NAMES = {"__all__"}

#: Constructor calls that produce mutable containers or primitives that
#: imply shared mutable state behind them.
MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
    "ChainMap",
    "local",
    "Lock",
    "RLock",
    "Event",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Queue",
    "LifoQueue",
    "PriorityQueue",
}

MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_mutable_value(value: ast.expr | None) -> bool:
    if value is None:
        return False
    if isinstance(value, MUTABLE_DISPLAYS):
        return True
    if isinstance(value, ast.Call):
        return _call_name(value) in MUTABLE_CALLS
    return False


def scan_source(source: str, filename: str = "<string>") -> list[tuple[int, str]]:
    """Return ``(lineno, name)`` for each module-level mutable binding."""
    tree = ast.parse(source, filename=filename)
    found: list[tuple[int, str]] = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names = [node.target.id]
            value = node.value
        else:
            continue
        if not _is_mutable_value(value):
            continue
        for name in names:
            if name not in IGNORED_NAMES:
                found.append((node.lineno, name))
    return found


def scan_obs_imports(source: str, filename: str = "<string>") -> list[tuple[int, str]]:
    """Return ``(lineno, module)`` for module-scope imports of ``repro.obs``."""
    tree = ast.parse(source, filename=filename)
    found: list[tuple[int, str]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.obs" or alias.name.startswith("repro.obs."):
                    found.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro.obs" or module.startswith("repro.obs."):
                found.append((node.lineno, module))
    return found


def check(roots: list[str], base: Path) -> list[str]:
    """Return violation messages for every guarded file under ``roots``."""
    problems: list[str] = []
    seen_allowed: dict[str, set[str]] = {}
    for root in roots:
        root_path = base / root
        if not root_path.is_dir():
            problems.append(f"{root}: not a directory (checker misconfigured?)")
            continue
        for path in sorted(root_path.rglob("*.py")):
            rel = path.relative_to(base).as_posix()
            allowed = ALLOWLIST.get(rel, set())
            for lineno, name in scan_source(path.read_text(), filename=rel):
                if name in allowed:
                    seen_allowed.setdefault(rel, set()).add(name)
                    continue
                problems.append(
                    f"{rel}:{lineno}: module-level mutable state {name!r} — move it "
                    f"into an instance (snapshots and locks cannot see module "
                    f"globals) or allowlist it in tools/check_module_state.py "
                    f"with a justification"
                )
    for rel in OBS_FREE_MODULES:
        # Only enforced for modules under the scanned roots, so the checker
        # stays usable against other trees (and in its own unit tests).
        if not any(rel.startswith(root.rstrip("/") + "/") for root in roots):
            continue
        path = base / rel
        if not path.is_file():
            problems.append(f"{rel}: listed in OBS_FREE_MODULES but missing")
            continue
        for lineno, module in scan_obs_imports(path.read_text(), filename=rel):
            problems.append(
                f"{rel}:{lineno}: module-scope import of {module!r} — worker "
                f"modules must stay observability-free; have the coordinator "
                f"inject journal/metrics as instance attributes instead"
            )
    for rel, names in ALLOWLIST.items():
        stale = names - seen_allowed.get(rel, set())
        for name in sorted(stale):
            problems.append(
                f"{rel}: allowlist entry {name!r} no longer matches anything — "
                f"remove it from tools/check_module_state.py"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    roots = args or list(DEFAULT_ROOTS)
    base = Path(__file__).resolve().parent.parent
    problems = check(roots, base)
    if problems:
        print(f"module-state check FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"module-state check OK: {', '.join(roots)} free of unlisted module-level mutable state")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
