"""Hot-path micro-benchmarks for the vectorized execution core.

Measures the five hot paths the vectorization PR targets — scan+filter,
grouped aggregation, hash join, streaming ingest and repeated (plan-cached)
queries — and emits ``BENCH_hotpaths.json`` with rows/sec plus the speedup
against a faithfully reconstructed *seed* implementation (the row-at-a-time
code this PR replaced: per-element ``python_value`` column materialisation,
dict-of-python-values grouping/hashing, per-batch column re-concatenation,
and re-parse/re-plan on every query).

Usage::

    python benchmarks/bench_hotpaths.py [--rows 100000] [--output BENCH_hotpaths.json]

The emitted JSON is the committed perf baseline; CI re-runs this script and
fails when any hot path regresses more than 2x against it (see
``benchmarks/check_hotpath_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.db.column import Column  # noqa: E402
from repro.db.database import Database  # noqa: E402
from repro.db.operators.aggregate import compute_aggregate  # noqa: E402
from repro.db.types import python_value  # noqa: E402
from repro.streaming.ingest import StreamIngestor  # noqa: E402

ROUNDS = 3


def _best(fn, rounds: int = ROUNDS) -> float:
    """Best-of-N wall time of ``fn()`` (the least-noise estimator)."""
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def _seed_to_pylist(column) -> list:
    """The seed's per-element column materialisation."""
    values, validity, dtype = column.values, column.validity, column.dtype
    return [python_value(dtype, values[i], bool(validity[i])) for i in range(len(column))]


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------


def _build_db(rows: int, seed: int = 42) -> Database:
    rng = np.random.default_rng(seed)
    db = Database()
    db.load_dict(
        "t",
        {
            "g": [int(v) for v in rng.integers(0, 100, rows)],
            "x": [float(v) for v in rng.normal(10.0, 3.0, rows)],
        },
    )
    db.load_dict(
        "probe",
        {
            "k": [int(v) for v in rng.integers(0, rows // 2, rows)],
            "lv": [float(v) for v in rng.normal(size=rows)],
        },
    )
    build_rows = rows // 5
    db.load_dict(
        "build",
        {
            "k2": [int(v) for v in rng.integers(0, rows // 2, build_rows)],
            "rv": [float(v) for v in rng.normal(size=build_rows)],
        },
    )
    return db


# ---------------------------------------------------------------------------
# Hot paths
# ---------------------------------------------------------------------------


def bench_scan_filter(db: Database, rows: int) -> dict:
    sql = "SELECT x FROM t WHERE x > 10.0"
    result = db.query(sql)
    seconds = _best(lambda: db.query(sql))

    table = db.table("t")

    def seed_scan_filter():
        kept = []
        for value in _seed_to_pylist(table.column("x")):
            if value is not None and value > 10.0:
                kept.append(value)
        return kept

    assert len(seed_scan_filter()) == result.num_rows
    reference_seconds = _best(seed_scan_filter)
    return {
        "sql": sql,
        "rows_in": rows,
        "rows_out": result.num_rows,
        "seconds": seconds,
        "rows_per_second": rows / seconds,
        "reference": "seed row-loop scan+filter (per-element python_value)",
        "reference_seconds": reference_seconds,
        "speedup_vs_seed": reference_seconds / seconds,
    }


def bench_group_by(db: Database, rows: int) -> dict:
    sql = (
        "SELECT g, count(*) AS n, sum(x) AS s, avg(x) AS m, "
        "min(x) AS lo, max(x) AS hi, stddev(x) AS sd FROM t GROUP BY g"
    )
    result = db.query(sql)
    seconds = _best(lambda: db.query(sql))

    table = db.table("t")

    def seed_group_by():
        groups: dict = {}
        keys = _seed_to_pylist(table.column("g"))
        for i in range(table.num_rows):
            groups.setdefault(keys[i], []).append(i)
        x = table.column("x")
        out = {"g": [], "n": [], "s": [], "m": [], "lo": [], "hi": [], "sd": []}
        for key, indices in groups.items():
            subset = x.take(np.array(indices, dtype=np.int64))
            vals = subset.nonnull_numpy().astype(np.float64)
            out["g"].append(key)
            out["n"].append(len(indices))
            for name, fn in (("s", "sum"), ("m", "avg"), ("lo", "min"), ("hi", "max"), ("sd", "stddev")):
                out[name].append(compute_aggregate(fn, vals))
        return out

    assert len(seed_group_by()["g"]) == result.num_rows
    reference_seconds = _best(seed_group_by)
    return {
        "sql": sql,
        "rows_in": rows,
        "groups": result.num_rows,
        "seconds": seconds,
        "rows_per_second": rows / seconds,
        "reference": "seed dict-loop grouped aggregate (python-value keys, per-group take)",
        "reference_seconds": reference_seconds,
        "speedup_vs_seed": reference_seconds / seconds,
    }


def bench_join(db: Database, rows: int) -> dict:
    sql = "SELECT count(*) AS n FROM probe JOIN build ON k = k2"
    matches = int(db.sql(sql).scalar())
    seconds = _best(lambda: db.query(sql))

    probe, build = db.table("probe"), db.table("build")

    def seed_join():
        hashed: dict = {}
        for i, value in enumerate(_seed_to_pylist(build.column("k2"))):
            if value is None:
                continue
            hashed.setdefault(value, []).append(i)
        left_indices, right_indices = [], []
        for i, value in enumerate(_seed_to_pylist(probe.column("k"))):
            if value is None:
                continue
            for match in hashed.get(value, ()):
                left_indices.append(i)
                right_indices.append(match)
        probe.take(np.array(left_indices, dtype=np.int64))
        build.take(np.array(right_indices, dtype=np.int64))
        return len(left_indices)

    assert seed_join() == matches
    reference_seconds = _best(seed_join)
    return {
        "sql": sql,
        "probe_rows": rows,
        "build_rows": build.num_rows,
        "matches": matches,
        "seconds": seconds,
        "rows_per_second": rows / seconds,
        "reference": "seed per-row build/probe loops (python-value keys)",
        "reference_seconds": reference_seconds,
        "speedup_vs_seed": reference_seconds / seconds,
    }


def bench_ingest(rows: int, batch_size: int = 512, seed: int = 7) -> dict:
    rng = np.random.default_rng(seed)

    def make_rows(n):
        return list(zip(rng.normal(size=n).tolist(), rng.normal(size=n).tolist()))

    def run_ingest(row_tuples):
        db = Database()
        db.load_dict("s", {"a": [0.0], "b": [0.0]})
        ingestor = StreamIngestor(db, batch_size=batch_size)
        ingestor.submit("s", row_tuples)
        ingestor.flush("s")

    half = make_rows(rows // 2)
    full = make_rows(rows)
    t_half = _best(lambda: run_ingest(half))
    t_full = _best(lambda: run_ingest(full))

    def seed_ingest(row_tuples):
        """Seed append path: per-batch coerce loop + full re-concatenation."""
        from repro.db.types import DataType

        arrays = {
            "a": np.empty(0, dtype=np.float64),
            "b": np.empty(0, dtype=np.float64),
        }
        for start in range(0, len(row_tuples), batch_size):
            chunk = row_tuples[start : start + batch_size]
            for index, name in enumerate(("a", "b")):
                packed = [DataType.FLOAT64.coerce(row[index]) for row in chunk]
                arrays[name] = np.concatenate([arrays[name], np.array(packed, dtype=np.float64)])
        return arrays

    reference_seconds = _best(lambda: seed_ingest(full))
    return {
        "rows": rows,
        "batch_size": batch_size,
        "seconds": t_full,
        "rows_per_second": rows / t_full,
        "seconds_half_size": t_half,
        "scaling_time_ratio_2x_rows": t_full / t_half,
        "scaling_note": "O(n) amortised appends: doubling the input should at most ~double the time",
        "reference": "seed per-batch coerce loop + full column re-concatenation (O(n^2))",
        "reference_seconds": reference_seconds,
        "speedup_vs_seed": reference_seconds / t_full,
    }


def bench_repeated_query(repeats: int = 100, seed: int = 3) -> dict:
    rng = np.random.default_rng(seed)
    db = Database()
    db.load_dict(
        "small",
        {
            "g": [int(v) for v in rng.integers(0, 10, 2_000)],
            "x": [float(v) for v in rng.normal(size=2_000)],
        },
    )
    sql = "SELECT g, avg(x) AS m, count(*) AS n FROM small WHERE x > -1.0 GROUP BY g ORDER BY g"
    db.query(sql)

    def cached():
        for _ in range(repeats):
            db.query(sql)

    def uncached():
        """The seed path: every execution re-lexes, re-parses and re-plans."""
        for _ in range(repeats):
            db.clear_plan_cache()
            db.query(sql)

    seconds = _best(cached)
    reference_seconds = _best(uncached)
    info = db.plan_cache_info()
    return {
        "sql": sql,
        "repeats": repeats,
        "seconds": seconds,
        "queries_per_second": repeats / seconds,
        "rows_per_second": repeats * 2_000 / seconds,
        "plan_cache": {"hits": info["hits"], "misses": info["misses"]},
        "reference": "plan cache disabled (re-parse + re-plan per query, as in the seed)",
        "reference_seconds": reference_seconds,
        "speedup_vs_seed": reference_seconds / seconds,
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run(rows: int) -> dict:
    db = _build_db(rows)
    report = {
        "benchmark": "bench_hotpaths",
        "generated_by": "benchmarks/bench_hotpaths.py",
        "schema_version": 1,
        "rows": rows,
        "rounds": ROUNDS,
        "hot_paths": {
            "scan_filter": bench_scan_filter(db, rows),
            "group_by": bench_group_by(db, rows),
            "join": bench_join(db, rows),
            "ingest": bench_ingest(rows),
            "repeated_query": bench_repeated_query(),
        },
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000, help="base row count (default 100k)")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    report = run(args.rows)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.output}")
    print(f"{'hot path':<16} {'rows/sec':>14} {'speedup vs seed':>16}")
    for name, entry in report["hot_paths"].items():
        rate = entry.get("rows_per_second", 0.0)
        print(f"{name:<16} {rate:>14,.0f} {entry['speedup_vs_seed']:>15.1f}x")
    ratio = report["hot_paths"]["ingest"]["scaling_time_ratio_2x_rows"]
    print(f"ingest scaling: 2x rows -> {ratio:.2f}x time (O(n) target ~2.0)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
