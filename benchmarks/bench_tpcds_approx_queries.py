"""§6 proposed evaluation: TPC-DS-style benchmark queries answered approximately.

The paper's concluding remarks propose creating models of the regularity in
TPC-DS data and using "the complex benchmark queries ... as tasks for
approximate query answering".  This benchmark runs a small query suite over
the TPC-DS-lite star schema three ways — exactly, from harvested models, and
from a 1% uniform sample — and reports relative error and pages read.
"""

from __future__ import annotations

import pytest

from repro.baselines import sampling
from repro.bench import ExperimentResult, relative_error

QUERIES = (
    ("q1 total revenue", "SELECT sum(sales_price) AS v FROM store_sales", "sum"),
    ("q2 average sale price", "SELECT avg(sales_price) AS v FROM store_sales", "avg"),
    ("q3 price ceiling", "SELECT max(sales_price) AS v FROM store_sales", "max"),
    ("q4 price floor", "SELECT min(sales_price) AS v FROM store_sales", "min"),
)


@pytest.mark.benchmark(group="tpcds")
def test_tpcds_queries_model_vs_sampling(benchmark, tpcds_bench_db):
    db = tpcds_bench_db
    sales = db.table("store_sales")
    sampler = sampling.UniformSampler(sales, fraction=0.01, seed=11)

    def run():
        rows = []
        for name, sql, function in QUERIES:
            exact = db.sql(sql)
            approx = db.approximate_sql(sql)
            sample_estimate = sampler.estimate(function, "sales_price")
            rows.append((name, function, exact, approx, sample_estimate))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)

    result = ExperimentResult(
        name="§6 TPC-DS-lite approximate query suite",
        metadata={
            "fact_rows": sales.num_rows,
            "sample_fraction": 0.01,
            "model": "sales_price ~ linear(list_price), harvested in-database",
        },
    )
    model_errors = {}
    sample_errors = {}
    for name, function, exact, approx, sample_estimate in rows:
        exact_value = exact.scalar()
        model_errors[function] = relative_error(approx.scalar(), exact_value)
        sample_errors[function] = relative_error(sample_estimate.value, exact_value)
        result.add_row(
            query=name,
            exact=exact_value,
            model=approx.scalar(),
            model_error=model_errors[function],
            model_pages=approx.io["pages_read"],
            sample=sample_estimate.value,
            sample_error=sample_errors[function],
            exact_pages=exact.io["pages_read"],
        )
    result.print()

    # Shapes: model answers read no pages, exact answers do; the linearity-based
    # AVG/SUM answers are tight (and at least competitive with a 1% sample).
    for _, _, exact, approx, _ in rows:
        assert approx.io["pages_read"] == 0
        assert exact.io["pages_read"] > 0
    assert model_errors["avg"] < 0.05
    assert model_errors["sum"] < 0.05
    assert model_errors["avg"] <= sample_errors["avg"] + 0.02


@pytest.mark.benchmark(group="tpcds")
def test_tpcds_per_store_profit_query(benchmark, tpcds_bench_db):
    """A grouped benchmark query that the current engine answers exactly
    (documents the fallback boundary the paper's challenges section predicts)."""
    db = tpcds_bench_db
    sql = "SELECT store_id, avg(net_profit) AS v FROM store_sales GROUP BY store_id ORDER BY store_id"

    answer = benchmark(lambda: db.approximate_sql(sql))

    result = ExperimentResult(name="§6 grouped query: routing decision")
    result.add_row(query="avg(net_profit) per store", route=answer.route, reason=answer.reason[:60])
    result.print()

    assert answer.route == "exact-fallback"
    assert answer.table.num_rows == db.table("store").num_rows
