"""Cold-start benchmark for the durable storage & model warehouse layer.

Measures the three durability hot paths and emits ``BENCH_coldstart.json``
(the committed baseline CI gates via ``check_hotpath_regression.py``):

``cold_start``
    ``LawsDatabase.open(path)`` over a checkpointed store (snapshot load +
    WAL replay + warehouse rehydration) vs. the *full raw reload* a system
    without a warehouse must do — reload every raw row and refit every
    model from scratch.
``checkpoint``
    Columnar-segment checkpoint throughput vs. a naive row-at-a-time JSON
    dump of the same tables.
``wal_replay``
    Batched WAL replay throughput vs. seed-style row-at-a-time appends of
    the same rows.

Usage::

    python benchmarks/bench_cold_start.py [--rows 50000] [--output BENCH_coldstart.json]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import LawsDatabase  # noqa: E402

NUM_SOURCES = 12
FREQUENCIES = [0.12, 0.15, 0.16, 0.18]
WAL_BATCH = 512
ROUNDS = 3


def _best(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def _dataset(rows: int, seed: int = 17) -> dict[str, list]:
    rng = np.random.default_rng(seed)
    source = rng.integers(0, NUM_SOURCES, size=rows)
    frequency = rng.choice(FREQUENCIES, size=rows)
    intensity = (2.0 + 0.4 * source) * frequency**-0.7 * (
        1.0 + 0.02 * rng.standard_normal(rows)
    )
    return {
        "source": [int(v) for v in source],
        "frequency": [float(v) for v in frequency],
        "intensity": [float(v) for v in intensity],
    }


def _stream_rows(rows: int, seed: int = 29) -> list[tuple]:
    data = _dataset(rows, seed=seed)
    return list(zip(data["source"], data["frequency"], data["intensity"]))


def _build_store(root: Path, data: dict[str, list], wal_rows: list[tuple]) -> float:
    """Create a checkpointed store with a WAL tail; returns checkpoint seconds."""
    db = LawsDatabase.open(root, ingest_batch_size=WAL_BATCH)
    db.load_dict("measurements", data)
    db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
    started = perf_counter()
    db.checkpoint()
    checkpoint_seconds = perf_counter() - started
    if wal_rows:
        db.ingest("measurements", wal_rows, flush=True)
    db.durable.wal.close()  # crash-style exit: the WAL tail stays
    return checkpoint_seconds


def bench_cold_start(rows: int, wal_rows: int) -> dict:
    data = _dataset(rows)
    stream = _stream_rows(wal_rows)
    root = Path(tempfile.mkdtemp(prefix="bench_coldstart_")) / "db"
    try:
        _build_store(root, data, stream)
        total_rows = rows + wal_rows

        def cold_open():
            db = LawsDatabase.open(root)
            assert db.table("measurements").num_rows == total_rows
            assert db.last_recovery.models_restored == 1
            db.close()

        cold_seconds = _best(cold_open)

        def full_raw_reload():
            db = LawsDatabase()
            db.load_dict("measurements", data)
            db.insert_rows("measurements", stream)
            report = db.fit(
                "measurements", "intensity ~ powerlaw(frequency)", group_by="source"
            )
            assert report.accepted

        reload_seconds = _best(full_raw_reload, rounds=1)
        return {
            "rows": total_rows,
            "wal_rows": wal_rows,
            "seconds": cold_seconds,
            "rows_per_second": total_rows / cold_seconds,
            "reference": "full raw reload + model refit (no warehouse)",
            "reference_seconds": reload_seconds,
            "speedup_vs_seed": reload_seconds / cold_seconds,
        }
    finally:
        shutil.rmtree(root.parent, ignore_errors=True)


def bench_checkpoint(rows: int) -> dict:
    data = _dataset(rows)
    root = Path(tempfile.mkdtemp(prefix="bench_checkpoint_")) / "db"
    try:
        db = LawsDatabase.open(root)
        db.load_dict("measurements", data)
        db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
        checkpoint_seconds = _best(db.checkpoint)

        table = db.table("measurements")
        naive_path = root.parent / "naive.jsonl"

        def naive_row_dump():
            with open(naive_path, "w") as handle:
                for row in table.iter_rows():  # seed idiom: row-at-a-time
                    handle.write(json.dumps(row) + "\n")

        naive_seconds = _best(naive_row_dump)
        db.close()
        return {
            "rows": rows,
            "seconds": checkpoint_seconds,
            "rows_per_second": rows / checkpoint_seconds,
            "reference": "row-at-a-time JSON table dump",
            "reference_seconds": naive_seconds,
            "speedup_vs_seed": naive_seconds / checkpoint_seconds,
        }
    finally:
        shutil.rmtree(root.parent, ignore_errors=True)


def bench_wal_replay(wal_rows: int) -> dict:
    data = _dataset(2048)
    stream = _stream_rows(wal_rows)
    root = Path(tempfile.mkdtemp(prefix="bench_walreplay_")) / "db"
    try:
        _build_store(root, data, stream)

        def replay_open():
            db = LawsDatabase.open(root)
            assert db.last_recovery.wal_rows_replayed == wal_rows
            db.close()

        replay_seconds = _best(replay_open)

        def seed_row_appends():
            db = LawsDatabase()
            db.load_dict("measurements", data)
            for row in stream:  # seed idiom: one append per arriving row
                db.database.insert_rows("measurements", [row])

        seed_seconds = _best(seed_row_appends, rounds=1)
        return {
            "rows": wal_rows,
            "seconds": replay_seconds,
            "rows_per_second": wal_rows / replay_seconds,
            "reference": "row-at-a-time appends of the same stream",
            "reference_seconds": seed_seconds,
            "speedup_vs_seed": seed_seconds / replay_seconds,
        }
    finally:
        shutil.rmtree(root.parent, ignore_errors=True)


def run(rows: int, wal_rows: int) -> dict:
    return {
        "benchmark": "bench_cold_start",
        "generated_by": "benchmarks/bench_cold_start.py",
        "schema_version": 1,
        "rows": rows,
        "rounds": ROUNDS,
        "hot_paths": {
            "cold_start": bench_cold_start(rows, wal_rows),
            "checkpoint": bench_checkpoint(rows),
            "wal_replay": bench_wal_replay(wal_rows),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=50000)
    parser.add_argument("--wal-rows", type=int, default=20480)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_coldstart.json",
    )
    args = parser.parse_args()
    report = run(args.rows, args.wal_rows)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for name, entry in report["hot_paths"].items():
        print(
            f"{name:<12} {entry['rows_per_second']:>14,.0f} rows/s   "
            f"{entry['speedup_vs_seed']:>8.1f}x vs {entry['reference']}"
        )
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
