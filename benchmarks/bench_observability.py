"""Observability overhead benchmarks.

Three measurements, all in-run (robust to machine differences, like the
other bench suites):

* ``exact_hotpath_instrumented`` — the plain ``Database.sql`` grouped
  aggregation hot path (the ``BENCH_hotpaths`` group-by shape) with the
  executor's tracer hook in place but no tracer attached, against the same
  suite with the hook bypassed.  ``overhead_fraction`` is the cost the
  instrumentation adds when observability is off — the acceptance budget
  is ≤3% (gated at 5% by ``check_hotpath_regression.py``).
* ``laws_query_obs_off`` — the full ``LawsDatabase.query`` suite with
  observability disabled, against exact execution of the same suite (the
  steady-state serving path the planner bench also gates).
* ``laws_query_obs_on`` — the same suite with full telemetry live (span
  trees, per-operator tracing, metrics, compliance accounting), reported
  as ``instrumented_overhead_fraction`` over the obs-off run.  Tracing is
  opt-in, so this is informational, not gated at the 5% budget.
* ``flight_calibration_obs_off`` — the obs-off suite with the disabled
  flight-recorder / calibration / SLO hooks in the planner's accounting
  path, against the same suite with those components unwired entirely
  (the pre-flight-recorder obs-off path).  The hooks are enabled-flag
  checks when observability is off, so ``overhead_fraction`` is the
  telemetry subsystem's cost on the hot path nobody opted into —
  acceptance is ≤3%, gated here.

Also writes ``BENCH_obs_metrics.snapshot.json`` — the metrics snapshot of
the obs-on run — and, with ``--ops-report-output``, the obs-on run's full
``ops_report()`` document; CI uploads both as artifacts.

Usage::

    python benchmarks/bench_observability.py [--rows 50000] [--output BENCH_obs.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AccuracyContract, LawsDatabase  # noqa: E402
from repro.db import Database  # noqa: E402
from repro.db.sql.executor import SQLExecutor  # noqa: E402

ROUNDS = 5

#: Same planner-visible shapes as benchmarks/bench_planner.py.
SUITE = [
    "SELECT g, avg(y) AS m, count(*) AS n FROM t GROUP BY g ORDER BY g",
    "SELECT avg(y) AS m FROM t WHERE x BETWEEN 1 AND 2",
    "SELECT y FROM t WHERE g = 3 AND x = 1",
    "SELECT y FROM t WHERE g = 2 ORDER BY y",
    "SELECT count(*) AS n FROM t WHERE x >= 1",
    "SELECT g, min(y) AS lo, max(y) AS hi FROM t GROUP BY g",
]

#: The BENCH_hotpaths group-by shape, run through the plain Database.
EXACT_SUITE = [
    "SELECT g, avg(y) AS m, count(*) AS n FROM t GROUP BY g ORDER BY g",
    "SELECT g, min(y) AS lo, max(y) AS hi FROM t GROUP BY g",
]


def _data(rows: int, seed: int = 42) -> dict:
    rng = np.random.default_rng(seed)
    g = rng.integers(0, 8, rows)
    x = rng.integers(0, 4, rows).astype(np.float64)
    y = 1.0 + 2.0 * g + 0.7 * x + rng.normal(0.0, 0.1, rows)
    return {
        "g": [int(v) for v in g],
        "x": [float(v) for v in x],
        "y": [float(v) for v in y],
    }


def _build_laws_db(rows: int, observability: bool) -> LawsDatabase:
    db = LawsDatabase(verify_sample_fraction=0.0, observability=observability)
    db.load_dict("t", _data(rows))
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted, "bench model must be accepted"
    return db


def _best(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def _bench_exact_hotpath(rows: int) -> dict:
    """Instrumentation-off overhead on the plain-Database hot path."""
    db = Database()
    db.load_dict("t", _data(rows))

    def _suite():
        for sql in EXACT_SUITE:
            db.sql(sql)

    def _bypass_run_root(self, planned):
        return planned.root.execute()

    # Interleave the two modes: a single pass is ~ms-scale, so measuring
    # them back-to-back in alternating rounds keeps cache/frequency noise
    # common-mode instead of landing on one side of the ratio.
    original = SQLExecutor._run_root
    instrumented_seconds = float("inf")
    bypassed_seconds = float("inf")
    _suite()  # warm the plan cache
    try:
        for _ in range(ROUNDS * 3):
            started = perf_counter()
            _suite()
            instrumented_seconds = min(instrumented_seconds, perf_counter() - started)
            SQLExecutor._run_root = _bypass_run_root
            started = perf_counter()
            _suite()
            bypassed_seconds = min(bypassed_seconds, perf_counter() - started)
            SQLExecutor._run_root = original
    finally:
        SQLExecutor._run_root = original

    queries = len(EXACT_SUITE)
    overhead = instrumented_seconds / bypassed_seconds - 1.0 if bypassed_seconds > 0 else 0.0
    return {
        "description": "plain Database group-by hot path with the executor tracer hook in place (no tracer attached)",
        "queries": queries,
        "seconds": instrumented_seconds,
        "queries_per_second": queries / instrumented_seconds,
        "reference": "same suite with the tracer hook bypassed (pre-instrumentation path)",
        "reference_seconds": bypassed_seconds,
        "speedup_vs_seed": bypassed_seconds / instrumented_seconds,
        "overhead_fraction": max(0.0, overhead),
        "overhead_note": "instrumentation-off cost on BENCH_hotpaths paths (acceptance: 0.03, gate: 0.05)",
    }


def _bench_laws_query(rows: int) -> tuple[dict, dict, str, dict]:
    contract = AccuracyContract(max_relative_error=0.25)

    db_off = _build_laws_db(rows, observability=False)

    def _suite_off():
        for sql in SUITE:
            db_off.query(sql, contract)

    for sql in SUITE:
        db_off.database.sql(sql)
    exact_seconds = _best(lambda: [db_off.database.sql(sql) for sql in SUITE])
    _suite_off()
    off_seconds = _best(_suite_off)

    db_on = _build_laws_db(rows, observability=True)

    def _suite_on():
        for sql in SUITE:
            db_on.query(sql, contract)

    _suite_on()
    on_seconds = _best(_suite_on)

    queries = len(SUITE)
    off_entry = {
        "description": "LawsDatabase.query suite, observability disabled (steady-state serving path)",
        "queries": queries,
        "seconds": off_seconds,
        "queries_per_second": queries / off_seconds,
        "reference": "exact execution of the same suite through Database.sql",
        "reference_seconds": exact_seconds,
        "speedup_vs_seed": exact_seconds / off_seconds,
    }
    on_entry = {
        "description": "LawsDatabase.query suite with full telemetry live (traces, metrics, compliance)",
        "queries": queries,
        "seconds": on_seconds,
        "queries_per_second": queries / on_seconds,
        "reference": "the same suite with observability disabled",
        "reference_seconds": off_seconds,
        "speedup_vs_seed": off_seconds / on_seconds,
        "instrumented_overhead_fraction": on_seconds / off_seconds - 1.0,
        "overhead_note": "opt-in tracing cost over the obs-off path (informational)",
    }
    # Flush self-telemetry so the ops-report artifact shows the flight
    # recorder's warehouse populated, not just pending counters.
    db_on.flush_telemetry()
    return off_entry, on_entry, db_on.metrics_json(), db_on.ops_report()


def _bench_flight_calibration(rows: int) -> dict:
    """Cost of the (disabled) telemetry hooks on the obs-off serving path."""
    contract = AccuracyContract(max_relative_error=0.25)
    db = _build_laws_db(rows, observability=False)

    def _suite():
        for sql in SUITE:
            db.query(sql, contract)

    _suite()  # warm plan caches
    hooked = db.obs.calibration, db.obs.slo, db.obs.flight
    hooked_seconds = float("inf")
    unwired_seconds = float("inf")
    # Interleaved rounds, same rationale as _bench_exact_hotpath: keep
    # cache/frequency noise common-mode across the two sides of the ratio.
    try:
        for _ in range(ROUNDS * 3):
            db.obs.calibration, db.obs.slo, db.obs.flight = hooked
            started = perf_counter()
            _suite()
            hooked_seconds = min(hooked_seconds, perf_counter() - started)
            db.obs.calibration = db.obs.slo = db.obs.flight = None
            started = perf_counter()
            _suite()
            unwired_seconds = min(unwired_seconds, perf_counter() - started)
    finally:
        db.obs.calibration, db.obs.slo, db.obs.flight = hooked

    queries = len(SUITE)
    overhead = hooked_seconds / unwired_seconds - 1.0 if unwired_seconds > 0 else 0.0
    return {
        "description": "obs-off LawsDatabase.query suite with disabled flight/calibration/SLO hooks in the accounting path",
        "queries": queries,
        "seconds": hooked_seconds,
        "queries_per_second": queries / hooked_seconds,
        "reference": "same suite with flight/calibration/SLO unwired entirely",
        "reference_seconds": unwired_seconds,
        "speedup_vs_seed": unwired_seconds / hooked_seconds,
        "overhead_fraction": max(0.0, overhead),
        "overhead_note": "flight-recorder + calibration cost on the obs-off hot path (acceptance: 0.03, gated)",
    }


def run(rows: int) -> tuple[dict, str, dict]:
    exact_entry = _bench_exact_hotpath(rows)
    off_entry, on_entry, metrics_snapshot, ops_report = _bench_laws_query(rows)
    flight_entry = _bench_flight_calibration(rows)
    report = {
        "benchmark": "bench_observability",
        "generated_by": "benchmarks/bench_observability.py",
        "schema_version": 1,
        "rows": rows,
        "rounds": ROUNDS,
        "hot_paths": {
            "exact_hotpath_instrumented": exact_entry,
            "laws_query_obs_off": off_entry,
            "laws_query_obs_on": on_entry,
            "flight_calibration_obs_off": flight_entry,
        },
    }
    return report, metrics_snapshot, ops_report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=50_000)
    parser.add_argument("--output", type=Path, default=Path("BENCH_obs.json"))
    parser.add_argument(
        "--metrics-output", type=Path, default=Path("BENCH_obs_metrics.snapshot.json")
    )
    parser.add_argument(
        "--ops-report-output",
        type=Path,
        default=None,
        help="also write the obs-on run's ops_report() JSON (CI artifact)",
    )
    args = parser.parse_args()
    report, metrics_snapshot, ops_report = run(args.rows)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    args.metrics_output.write_text(metrics_snapshot + "\n")
    if args.ops_report_output is not None:
        args.ops_report_output.write_text(json.dumps(ops_report, indent=2) + "\n")

    exact = report["hot_paths"]["exact_hotpath_instrumented"]
    on = report["hot_paths"]["laws_query_obs_on"]
    flight = report["hot_paths"]["flight_calibration_obs_off"]
    print(
        f"instrumentation-off overhead: {exact['overhead_fraction']:.2%} "
        f"(acceptance 3%); flight+calibration obs-off overhead: "
        f"{flight['overhead_fraction']:.2%} (acceptance 3%); telemetry-on cost: "
        f"{on['instrumented_overhead_fraction']:+.2%} over obs-off"
    )
    failed = False
    if exact["overhead_fraction"] > 0.03:
        print("FAIL: instrumentation-off overhead exceeds 3% on the exact hot path")
        failed = True
    if flight["overhead_fraction"] > 0.03:
        print("FAIL: flight/calibration hooks exceed 3% on the obs-off serving path")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
