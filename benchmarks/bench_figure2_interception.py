"""Figure 2: the model interception workflow and its overhead.

The paper's Figure 2 shows five steps: (1) the user fits against a strawman,
(2) the fit is offloaded to the database, (3) the goodness of fit comes back
while the model is stored, (4) a later query arrives and (5) is answered
from the model with error bounds.  This benchmark times the intercepted fit
against a plain (non-captured) fit — interception must be essentially free —
and then answers the step-4/5 query from the captured model.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro import LawsDatabase
from repro.bench import ExperimentResult
from repro.core.quality import QualityPolicy
from repro.fitting import PowerLaw, fit_grouped


@pytest.mark.benchmark(group="figure2")
def test_figure2_interception_overhead(benchmark, lofar_bench_dataset):
    dataset = lofar_bench_dataset
    table = dataset.to_table("measurements")

    # Plain fit: what a statistical environment would do with exported data.
    started = perf_counter()
    plain = fit_grouped(table, PowerLaw(), ["frequency"], "intensity", ["source"])
    plain_seconds = perf_counter() - started

    def intercepted():
        db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.7))
        db.register_table(dataset.to_table("measurements"))
        report = db.strawman("measurements").fit("intensity ~ powerlaw(frequency)", group_by="source")
        return db, report

    db, report = benchmark.pedantic(intercepted, iterations=1, rounds=1)
    intercepted_seconds = benchmark.stats.stats.mean

    # Steps 4-5: the later query answered from the captured model with error bounds.
    answer = db.approximate_sql(
        "SELECT intensity FROM measurements WHERE source = 1 AND frequency = 0.15"
    )

    result = ExperimentResult(
        name="Figure 2: interception overhead and model-answered query",
        metadata={"sources": dataset.num_sources, "measurements": dataset.num_rows},
    )
    result.add_row(step="plain grouped fit (no capture)", seconds=plain_seconds, outcome=f"{len(plain.fitted)} fits")
    result.add_row(
        step="intercepted fit (capture + quality judgement)",
        seconds=intercepted_seconds,
        outcome=f"R2={report.r_squared:.3f}, accepted={report.accepted}",
    )
    result.add_row(
        step="step 4-5 point query from model",
        seconds=answer.elapsed_seconds,
        outcome=f"{answer.scalar():.4f} ± {1.96 * answer.column_errors['intensity']:.4f}, pages={answer.io['pages_read']:.0f}",
    )
    result.print()

    # Shape: interception costs little more than the fit itself (well under 3x),
    # and the captured model answers the query without touching the data.
    assert intercepted_seconds < 3.0 * plain_seconds + 1.0
    assert answer.route == "point"
    assert answer.io["pages_read"] == 0
    assert np.isfinite(answer.scalar())
