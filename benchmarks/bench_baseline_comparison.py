"""Baseline comparison: harvested models vs. the AQP alternatives the paper cites.

For a fixed query (per-band mean intensity over the LOFAR table) and a fixed
storage budget ceiling, compare:

* the captured per-source power-law model,
* BlinkDB-style uniform sampling (1% and 10%),
* an equi-depth histogram synopsis,
* a MauveDB-style gridded regression view, and
* a FunctionDB-style piecewise-polynomial table.

Reported per method: auxiliary-structure bytes, relative error of the
answer, and whether base-table IO is needed at query time.  The expected
shape: the harvested model is at least as accurate as sampling/synopses at a
comparable (or smaller) storage budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import functiondb, histogram, mauvedb, sampling
from repro.bench import ExperimentResult, relative_error


@pytest.mark.benchmark(group="baselines")
def test_baseline_comparison_mean_intensity(benchmark, lofar_bench_db, lofar_bench_model):
    db = lofar_bench_db
    model = lofar_bench_model
    table = db.table("measurements")
    band = 0.15
    exact = db.sql(f"SELECT avg(intensity) FROM measurements WHERE frequency = {band}").scalar()

    def run():
        answers = {}

        approx = db.approximate_sql(f"SELECT avg(intensity) AS m FROM measurements WHERE frequency = {band}")
        answers["captured model"] = (approx.scalar(), model.stored_byte_size(), False)

        for fraction in (0.01, 0.10):
            sampler = sampling.UniformSampler(table, fraction=fraction, seed=13)
            mask = np.isclose(sampler.sample.column("frequency").to_numpy(), band)
            estimate = sampler.estimate("avg", "intensity", predicate_mask=mask)
            answers[f"uniform sample {fraction:.0%}"] = (estimate.value, sampler.sample_bytes(), False)

        # Histogram synopsis over the intensity column restricted to the band
        # (one histogram per band is what a synopsis-based system would keep).
        band_rows = np.isclose(table.column("frequency").to_numpy(), band)
        band_column = table.column("intensity").filter(band_rows)
        hist = histogram.build_equi_depth(band_column, 64, "intensity")
        answers["equi-depth histogram (per band)"] = (hist.estimate("avg"), hist.byte_size() * 4, False)

        view = mauvedb.build_regression_view(table, "frequency", "intensity", group_column="source",
                                             grid_points=4, degree=1)
        view_table = view.to_table()
        freqs = np.array(view_table.column("frequency").to_pylist())
        values = np.array(view_table.column("intensity").to_pylist())
        nearest = np.unique(freqs)[np.argmin(np.abs(np.unique(freqs) - band))]
        answers["MauveDB gridded view"] = (float(np.mean(values[freqs == nearest])), view.byte_size(), False)

        function_table = functiondb.build_function_table(table, "frequency", "intensity",
                                                          group_column="source", num_segments=2, degree=1)
        per_source = [function_table.point(band, key) for key in function_table.functions]
        answers["FunctionDB piecewise"] = (float(np.mean(per_source)), function_table.byte_size(), False)
        return answers

    answers = benchmark.pedantic(run, iterations=1, rounds=1)

    result = ExperimentResult(
        name="Baseline comparison: avg(intensity) at 0.15 GHz",
        metadata={"exact": round(exact, 5), "raw_table_bytes": table.byte_size()},
    )
    errors = {}
    for method, (value, aux_bytes, needs_io) in answers.items():
        errors[method] = relative_error(value, exact)
        result.add_row(
            method=method,
            answer=value,
            relative_error=errors[method],
            auxiliary_bytes=aux_bytes,
            base_table_io_at_query_time=needs_io,
        )
    result.print()

    # Shapes: the captured model answers within a few percent and is at least
    # as accurate as the 1% sample; its storage stays a small fraction of raw.
    assert errors["captured model"] < 0.05
    assert errors["captured model"] <= errors["uniform sample 1%"] + 0.02
    assert answers["captured model"][1] < 0.15 * table.byte_size()
