"""Compare fresh benchmark runs against their committed baselines.

Usage::

    python benchmarks/check_hotpath_regression.py BASELINE.json CURRENT.json [BASELINE2.json CURRENT2.json ...]

e.g.::

    python benchmarks/check_hotpath_regression.py \\
        BENCH_hotpaths.json BENCH_hotpaths.current.json \\
        BENCH_planner.json BENCH_planner.current.json

Exits non-zero when any hot path regressed more than
``HOTPATH_REGRESSION_FACTOR`` (default 2.0) against the committed baseline,
or when an entry carrying ``overhead_fraction`` (the unified planner's
routing overhead relative to exact execution) exceeds
``PLANNER_OVERHEAD_BUDGET`` (default 0.05).

The gated metric is ``speedup_vs_seed`` — each hot path's throughput
relative to the seed's row-at-a-time implementation *measured in the same
run on the same machine* — so the check is immune to CI runners being
slower or noisier than the machine that produced the committed numbers,
while still catching real regressions (a vectorized path silently falling
back to python-loop speed collapses its speedup).  Absolute rows/sec are
printed for trend visibility; set ``HOTPATH_STRICT_ABSOLUTE=1`` to also
gate on them (useful on dedicated, comparable hardware).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

RATE_KEYS = ("rows_per_second", "queries_per_second")


def _rate(entry: dict) -> float:
    for key in RATE_KEYS:
        if key in entry:
            return float(entry[key])
    raise KeyError(f"hot-path entry has none of {RATE_KEYS}: {sorted(entry)}")


def main(argv: list[str]) -> int:
    if len(argv) < 3 or len(argv) % 2 != 1:
        print(__doc__)
        return 2
    failures: list[str] = []
    for i in range(1, len(argv), 2):
        failures.extend(_check_pair(Path(argv[i]), Path(argv[i + 1])))
    if failures:
        print("\nFAIL: benchmark regression detected")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no hot path regressed beyond the allowed factor")
    return 0


def _check_pair(baseline_path: Path, current_path: Path) -> list[str]:
    factor = float(os.environ.get("HOTPATH_REGRESSION_FACTOR", "2.0"))
    strict_absolute = os.environ.get("HOTPATH_STRICT_ABSOLUTE", "") == "1"
    overhead_budget = float(os.environ.get("PLANNER_OVERHEAD_BUDGET", "0.05"))

    print(f"\n== {baseline_path} vs {current_path} ==")
    baseline = json.loads(baseline_path.read_text())["hot_paths"]
    current = json.loads(current_path.read_text())["hot_paths"]

    missing = sorted(set(baseline) - set(current))
    if missing:
        return [f"hot paths missing from current run: {missing}"]

    failures = []
    header = f"{'hot path':<16} {'base speedup':>13} {'cur speedup':>12} {'base rate/s':>14} {'cur rate/s':>14}"
    print(header)
    for name, base_entry in sorted(baseline.items()):
        base_speedup = float(base_entry["speedup_vs_seed"])
        cur_speedup = float(current[name]["speedup_vs_seed"])
        base_rate = _rate(base_entry)
        cur_rate = _rate(current[name])
        print(
            f"{name:<16} {base_speedup:>12.1f}x {cur_speedup:>11.1f}x "
            f"{base_rate:>14,.0f} {cur_rate:>14,.0f}"
        )
        if cur_speedup * factor < base_speedup:
            failures.append(
                f"{name}: speedup-vs-seed fell from {base_speedup:.1f}x to "
                f"{cur_speedup:.1f}x (> {factor:g}x regression)"
            )
        if strict_absolute and cur_rate * factor < base_rate:
            failures.append(
                f"{name}: {cur_rate:,.0f}/s is >{factor:g}x below baseline {base_rate:,.0f}/s"
            )
        overhead = current[name].get("overhead_fraction")
        if overhead is not None and float(overhead) > overhead_budget:
            failures.append(
                f"{name}: routing overhead is {float(overhead):.2%} of exact execution "
                f"time (budget {overhead_budget:.0%})"
            )

    ingest = current.get("ingest", {})
    scaling = float(ingest.get("scaling_time_ratio_2x_rows", 0.0))
    if scaling > 3.0:
        failures.append(
            f"ingest scaling: doubling rows took {scaling:.2f}x time (O(n) bound is ~2x, limit 3x)"
        )
    return failures


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
