"""§4.2 analytic solutions for linear models.

For the TPC-DS-lite pricing laws (linear models harvested from the fact
table), MIN/MAX/AVG/SUM of the modelled column are answered in closed form
from the fitted parameters and the catalog statistics — no tuple generation,
no IO.  The benchmark reports the accuracy of each aggregate against exact
execution and the error bound attached to the answer.
"""

from __future__ import annotations

import pytest

from repro.bench import ExperimentResult, relative_error

AGGREGATES = ("avg", "sum", "min", "max")


@pytest.mark.benchmark(group="analytic-aggregates")
def test_analytic_aggregates_accuracy(benchmark, tpcds_bench_db):
    db = tpcds_bench_db

    def run():
        answers = {}
        for function in AGGREGATES:
            sql = f"SELECT {function}(sales_price) AS v FROM store_sales"
            answers[function] = (db.approximate_sql(sql), db.sql(sql).scalar())
        return answers

    answers = benchmark.pedantic(run, iterations=1, rounds=1)

    result = ExperimentResult(
        name="§4.2 analytic aggregates from the sales_price ~ list_price model",
        metadata={"rows": db.table("store_sales").num_rows},
    )
    for function, (approx, exact) in answers.items():
        result.add_row(
            aggregate=function,
            route=approx.route,
            model_value=approx.scalar(),
            exact_value=exact,
            relative_error=relative_error(approx.scalar(), exact),
            error_bound=1.96 * approx.column_errors.get("v", 0.0),
            pages_read=approx.io["pages_read"],
        )
    result.print()

    for function, (approx, exact) in answers.items():
        assert approx.route == "analytic-aggregate"
        assert approx.io["pages_read"] == 0
        tolerance = 0.05 if function in ("avg", "sum") else 0.35  # extremes depend on noise tails
        assert relative_error(approx.scalar(), exact) < tolerance

    # AVG and SUM exploit linearity exactly, so they must be the tightest.
    avg_error = relative_error(answers["avg"][0].scalar(), answers["avg"][1])
    max_error = relative_error(answers["max"][0].scalar(), answers["max"][1])
    assert avg_error <= max_error + 1e-9
