"""§2 example queries: the paper's two SQL queries answered from the model.

Query 1 (point): ``SELECT intensity FROM measurements WHERE source = 42 AND
wavelength = 0.14`` — a parameter lookup plus one model evaluation.
Query 2 (selection): ``SELECT source, intensity FROM measurements WHERE
wavelength = 0.14 AND intensity > 3.0`` — evaluate the model for all sources
at the given band and filter on the predicted value.

The benchmark reports accuracy against exact execution and the pages each
route reads (the model routes must read none).
"""

from __future__ import annotations

import pytest

from repro.bench import ExperimentResult, relative_error


@pytest.mark.benchmark(group="section2")
def test_point_query(benchmark, lofar_bench_db):
    db = lofar_bench_db
    sql = "SELECT intensity FROM measurements WHERE source = 42 AND frequency = 0.15"

    answer = benchmark(lambda: db.approximate_sql(sql))
    exact = db.sql(
        "SELECT avg(intensity) FROM measurements WHERE source = 42 AND frequency = 0.15"
    ).scalar()

    result = ExperimentResult(
        name="§2 query 1: point query",
        metadata={"paper": "answered solely from the stored (p, alpha) parameters"},
    )
    result.add_row(
        route=answer.route,
        model_value=answer.scalar(),
        exact_mean=exact,
        relative_error=relative_error(answer.scalar(), exact),
        pages_read=answer.io["pages_read"],
        error_bound=1.96 * answer.column_errors["intensity"],
    )
    result.print()

    assert answer.route == "point"
    assert answer.io["pages_read"] == 0
    assert relative_error(answer.scalar(), exact) < 0.15


@pytest.mark.benchmark(group="section2")
def test_selection_query(benchmark, lofar_bench_db):
    db = lofar_bench_db
    # Threshold chosen as the upper-quartile intensity so the answer is non-trivial.
    threshold = db.sql(
        "SELECT avg(intensity) FROM measurements WHERE frequency = 0.15"
    ).scalar() * 1.5
    sql = (
        "SELECT source, intensity FROM measurements "
        f"WHERE frequency = 0.15 AND intensity > {threshold:.6f}"
    )

    answer = benchmark(lambda: db.approximate_sql(sql))

    exact_sources = set(
        db.sql(
            "SELECT source, avg(intensity) AS m FROM measurements WHERE frequency = 0.15 "
            f"GROUP BY source HAVING avg(intensity) > {threshold:.6f}"
        ).table.column("source").to_pylist()
    )
    model_sources = set(answer.table.column("source").to_pylist())
    recall = len(model_sources & exact_sources) / len(exact_sources) if exact_sources else 1.0
    precision = len(model_sources & exact_sources) / len(model_sources) if model_sources else 1.0

    result = ExperimentResult(
        name="§2 query 2: selection over predicted intensities",
        metadata={"threshold": round(threshold, 4)},
    )
    result.add_row(
        route=answer.route,
        virtual_rows=answer.virtual_rows_generated,
        returned_sources=len(model_sources),
        truly_bright_sources=len(exact_sources),
        precision=precision,
        recall=recall,
        pages_read=answer.io["pages_read"],
    )
    result.print()

    assert answer.route == "virtual-table"
    assert answer.io["pages_read"] == 0
    if exact_sources:
        assert recall > 0.8 and precision > 0.8
