"""Grouped & range-predicate routes: simulated IO and accuracy vs exact.

The acceptance bar for the grouped/range routes: on synthetic workloads with
known laws, ``SELECT g, AVG(y) ... GROUP BY g`` and
``SELECT SUM(y) ... WHERE x BETWEEN a AND b`` must be answered from captured
models (no exact fallback) with per-group/per-range error estimates
attached, at ≥10× fewer simulated page reads than exact execution and ≤5%
mean relative error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LawsDatabase
from repro.bench import ExperimentResult

GROUPS = 24
X_DOMAIN = [float(v) for v in range(8)]
REPS = 40  # rows per (group, x) cell -> 24 * 8 * 40 = 7680 rows
NOISE = 0.4


@pytest.fixture(scope="module")
def groupby_db():
    rng = np.random.default_rng(77)
    g_col, x_col, y_col = [], [], []
    for g in range(GROUPS):
        intercept, slope = 5.0 + 0.6 * g, 0.3 + 0.05 * g
        for x in X_DOMAIN:
            for _ in range(REPS):
                g_col.append(g)
                x_col.append(x)
                y_col.append(intercept + slope * x + rng.normal(0.0, NOISE))
    db = LawsDatabase()
    db.load_dict("readings", {"g": g_col, "x": x_col, "y": y_col})
    report = db.fit("readings", "y ~ linear(x)", group_by="g")
    assert report.accepted
    return db


def _workload(rng):
    queries = []
    for _ in range(12):
        queries.append("SELECT g, avg(y) AS m FROM readings GROUP BY g ORDER BY g")
        a = float(rng.uniform(0.0, 4.0))
        b = float(rng.uniform(a, 7.0))
        queries.append(f"SELECT sum(y) AS s FROM readings WHERE x BETWEEN {a:.3f} AND {b:.3f}")
        lo = int(rng.integers(0, GROUPS // 2))
        hi = int(rng.integers(lo, GROUPS))
        queries.append(
            f"SELECT g, sum(y) AS s, count(y) AS n FROM readings "
            f"WHERE x >= {a:.3f} AND g BETWEEN {lo} AND {hi} GROUP BY g ORDER BY g"
        )
    return queries


@pytest.mark.benchmark(group="groupby-approx")
def test_grouped_and_range_routes_beat_exact_io(benchmark, groupby_db):
    db = groupby_db
    rng = np.random.default_rng(123)
    queries = _workload(rng)

    def run():
        return [db.compare_sql(sql) for sql in queries]

    comparisons = benchmark.pedantic(run, iterations=1, rounds=1)

    approx_pages = sum(c["approx_pages_read"] for c in comparisons)
    exact_pages = sum(c["exact_pages_read"] for c in comparisons)
    errors = [c["max_relative_error"] for c in comparisons if c["max_relative_error"] is not None]
    mean_error = float(np.mean(errors))
    routes = {c["route"] for c in comparisons}

    result = ExperimentResult(
        name="grouped & range routes vs exact execution",
        metadata={
            "queries": len(queries),
            "rows": db.table("readings").num_rows,
            "routes": sorted(routes),
        },
    )
    result.add_row(
        approx_pages=approx_pages,
        exact_pages=exact_pages,
        io_reduction=f"{exact_pages / max(approx_pages, 1):.0f}x",
        mean_max_relative_error=f"{mean_error:.4f}",
    )
    result.print()

    # Every query must be served from models, not exact fallback.
    assert routes <= {"grouped-model", "grouped-hybrid", "range-aggregate"}
    # Per-group / per-range error estimates are attached.
    for comparison in comparisons:
        approx = comparison["approximate"]
        if approx.route.startswith("grouped"):
            assert approx.group_errors or approx.table.num_rows == 0
        else:
            non_null = [v for v in approx.rows()[0] if v is not None]
            assert not non_null or any(error > 0 for error in approx.column_errors.values())
    # ≥10x fewer simulated IOs at ≤5% relative error.
    assert exact_pages >= 10 * max(approx_pages, 1)
    assert approx_pages == 0
    assert mean_error <= 0.05
