"""Table 1: the LOFAR observation table replaced by a per-source parameter table.

The paper replaces ~1.45M observation rows (~11 MB) of 35,692 sources with a
parameter table (spectral index, proportionality constant, residual SE) of
~640 KB — about 5% of the raw size.  This benchmark regenerates the same
numbers at the configured scale: the per-source fit, the parameter table,
its size relative to the raw data, and the time the in-database capture
takes.
"""

from __future__ import annotations

import pytest

from repro import LawsDatabase
from repro.bench import ExperimentResult
from repro.core.quality import QualityPolicy


def _capture(dataset):
    db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.7))
    db.register_table(dataset.to_table("measurements"))
    report = db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
    return db, report


@pytest.mark.benchmark(group="table1")
def test_table1_model_capture(benchmark, lofar_bench_dataset):
    dataset = lofar_bench_dataset
    db, report = benchmark.pedantic(
        lambda: _capture(dataset), iterations=1, rounds=1
    )

    raw_bytes = db.table("measurements").byte_size()
    parameter_table = report.parameter_table()
    parameter_bytes = parameter_table.byte_size()
    ratio = parameter_bytes / raw_bytes

    result = ExperimentResult(
        name="Table 1: observations vs. model parameters",
        metadata={
            "sources": dataset.num_sources,
            "measurements": dataset.num_rows,
            "paper": "1,452,824 rows / 35,692 sources; 11 MB -> 640 KB (~5%)",
        },
    )
    result.add_row(
        representation="raw observations",
        rows=dataset.num_rows,
        bytes=raw_bytes,
        fraction_of_raw=1.0,
    )
    result.add_row(
        representation="model parameter table",
        rows=parameter_table.num_rows,
        bytes=parameter_bytes,
        fraction_of_raw=ratio,
    )
    result.print()

    # Shape assertions (the paper's ~5%; ours depends on rows-per-source, so
    # accept anything clearly under 15%).
    assert report.accepted
    assert parameter_table.num_rows <= dataset.num_sources
    assert ratio < 0.15
    # The parameter table carries exactly the columns of the paper's Table 1.
    assert {"p", "alpha", "residual_se"} <= set(parameter_table.schema.names)


@pytest.mark.benchmark(group="table1")
def test_table1_growth_keeps_parameters_constant(benchmark, scale):
    """§2: ten times more observations per source make the model more precise,
    not larger."""
    from repro.datasets import lofar

    sources = max(int(200 * scale * 10), 40)
    small = lofar.generate(num_sources=sources, observations_per_source=10, seed=3)
    large = lofar.generate(num_sources=sources, observations_per_source=50, seed=3)

    def run():
        out = {}
        for name, dataset in (("10 obs/source", small), ("50 obs/source", large)):
            db, report = _capture(dataset)
            out[name] = (dataset, db, report)
        return out

    captured = benchmark.pedantic(run, iterations=1, rounds=1)

    result = ExperimentResult(name="Table 1 follow-up: storage vs. data growth")
    sizes = {}
    for name, (dataset, db, report) in captured.items():
        sizes[name] = report.model.stored_byte_size()
        result.add_row(
            configuration=name,
            raw_bytes=db.table("measurements").byte_size(),
            parameter_bytes=sizes[name],
            weighted_r2=report.r_squared,
        )
    result.print()
    assert sizes["50 obs/source"] == sizes["10 obs/source"]
