"""Partitioned parallel-execution benchmarks.

Measures the two partition-parallel hot paths (scan+filter and grouped
aggregation) plus partition pruning, and emits ``BENCH_parallel.json``.

Per-task kernel times are measured by running the engine's *real* partition
task closures through an instrumented pool; wall-clock for W workers is then
modeled as the LPT (longest-processing-time) critical path over those task
times plus the measured coordinator overhead (prune + dispatch + merge +
upper operators) and the measured per-task pool overhead.  CI containers
are single-CPU, so measured multi-worker wall time says nothing about the
schedule the engine produces — the emitted entries carry ``"modeled": true``
and ``host_cpus`` so nobody mistakes them for measured elapsed time.  On a
multi-core host the entries additionally carry
``measured_seconds_by_workers`` / ``measured_speedup_by_workers`` — real
wall clock with an actual pool of each size — but the regression-gate keys
stay on the modeled figures so CI baselines are host-independent.  The
pruning page-IO reduction, by contrast, is measured directly from the IO
model's page accounting.

Usage::

    python benchmarks/bench_parallel.py [--rows 1000000] [--output BENCH_parallel.json]

The emitted JSON is the committed perf baseline; CI re-runs this script and
fails when ``speedup_vs_seed`` of any hot path regresses more than 2x
(see ``benchmarks/check_hotpath_regression.py``).  The ``parallel`` block
is the calibration payload understood by
``OperatorCosts.from_bench_payload`` (task-dispatch overheads for the
planner's fan-out threshold).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import LawsDatabase  # noqa: E402
from repro.parallel.pool import WorkerPool, _fork_available  # noqa: E402

ROUNDS = 3
PARTITIONS = 8
PRUNE_PARTITIONS = 16
WORKER_COUNTS = (1, 2, 4)


def _best(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


class TimingPool(WorkerPool):
    """Runs the engine's real partition tasks serially, recording each one."""

    def __init__(self) -> None:
        super().__init__(max_workers=1)
        self.task_seconds: list[float] = []

    def run_tasks(self, tasks, workers=None, backend=None):  # noqa: ARG002
        results = []
        for task in tasks:
            started = perf_counter()
            results.append(task())
            self.task_seconds.append(perf_counter() - started)
        return results


def lpt_makespan(task_seconds: list[float], workers: int) -> float:
    """Critical path of a greedy longest-first schedule on ``workers``."""
    loads = [0.0] * max(1, workers)
    for seconds in sorted(task_seconds, reverse=True):
        loads[loads.index(min(loads))] += seconds
    return max(loads)


def _build_db(rows: int, seed: int = 42) -> LawsDatabase:
    rng = np.random.default_rng(seed)
    db = LawsDatabase(observability=False)
    db.load_dict(
        "t",
        {
            "k": rng.integers(0, 100, rows).tolist(),
            "x": rng.normal(10.0, 3.0, rows).tolist(),
            "y": np.sort(rng.integers(0, 1000, rows)).tolist(),
        },
    )
    return db


def _measure_task_overheads() -> tuple[float, float | None]:
    """Measured per-task dispatch cost of each pool backend."""
    tasks = [lambda: None for _ in range(64)]
    pool = WorkerPool(max_workers=4)
    thread_overhead = _best(lambda: pool.run_tasks(tasks)) / len(tasks)
    process_overhead = None
    if _fork_available():
        small = [lambda: None for _ in range(8)]
        proc_pool = WorkerPool(max_workers=2, backend="process")
        process_overhead = _best(lambda: proc_pool.run_tasks(small), rounds=2) / len(small)
    return thread_overhead, process_overhead


def _bench_hot_path(db: LawsDatabase, sql: str, rows: int, task_overhead: float) -> dict:
    engine = db.parallel
    real_pool = engine.pool

    engine.enabled = False
    serial_seconds = _best(lambda: db.database.sql(sql).rows())
    engine.enabled = True

    # Best-of-N over the whole partitioned run; keep the task breakdown of
    # the best round so coordinator overhead and makespan stay consistent.
    best = None
    try:
        for _ in range(ROUNDS):
            timing = TimingPool()
            engine.pool = timing
            started = perf_counter()
            db.database.sql(sql).rows()
            wall = perf_counter() - started
            if not timing.task_seconds:
                raise RuntimeError(f"engine did not fan out for: {sql}")
            if best is None or wall < best[0]:
                best = (wall, list(timing.task_seconds))
    finally:
        engine.pool = real_pool

    serial_partitioned_seconds, task_seconds = best
    coordinator_seconds = max(0.0, serial_partitioned_seconds - sum(task_seconds))

    modeled = {}
    for workers in WORKER_COUNTS:
        makespan = lpt_makespan(task_seconds, workers)
        dispatch = task_overhead * math.ceil(len(task_seconds) / workers)
        modeled[str(workers)] = coordinator_seconds + makespan + dispatch
    modeled_best = modeled[str(max(WORKER_COUNTS))]

    # On a multi-core host, also measure *real* wall clock per worker count
    # by swapping in an actual pool of that size.  These are informational
    # alongside the modeled numbers — the regression gate keys (``seconds``,
    # ``speedup_vs_seed``) stay on the modeled figures so single-CPU CI
    # containers produce stable baselines.
    measured: dict[str, float] = {}
    host_cpus = os.cpu_count() or 1
    if host_cpus > 1:
        try:
            for workers in WORKER_COUNTS:
                engine.pool = WorkerPool(max_workers=workers)
                measured[str(workers)] = _best(lambda: db.database.sql(sql).rows())
        finally:
            engine.pool = real_pool

    entry = {
        "sql": sql,
        "rows_in": rows,
        "partitions": len(task_seconds),
        "modeled": True,
        "host_cpus": os.cpu_count(),
        "reference": "non-partitioned vectorized execution (engine disabled)",
        "reference_seconds": serial_seconds,
        "serial_partitioned_seconds": serial_partitioned_seconds,
        "task_seconds": task_seconds,
        "coordinator_seconds": coordinator_seconds,
        "modeled_seconds_by_workers": modeled,
        "seconds": modeled_best,
        "rows_per_second": rows / modeled_best,
        "speedup_vs_seed": serial_seconds / modeled_best,
    }
    if measured:
        entry["measured_seconds_by_workers"] = measured
        entry["measured_speedup_by_workers"] = {
            workers: serial_seconds / seconds for workers, seconds in measured.items()
        }
    return entry


def _bench_pruning(db: LawsDatabase, rows: int) -> dict:
    sql = "SELECT count(*) AS n, sum(x) AS s FROM t WHERE y BETWEEN 100 AND 140"
    io_model = db.database.io_model

    db.parallel.enabled = False
    with io_model.scope() as unpruned:
        db.database.sql(sql).rows()
    unpruned_pages = unpruned.snapshot()["pages_read"]

    db.parallel.enabled = True
    pruned_seconds = _best(lambda: db.database.sql(sql).rows())
    with io_model.scope() as pruned:
        db.database.sql(sql).rows()
    pruned_pages = pruned.snapshot()["pages_read"]

    return {
        "sql": sql,
        "rows_in": rows,
        "partitions": PRUNE_PARTITIONS,
        "pages_full_scan": unpruned_pages,
        "pages_after_pruning": pruned_pages,
        "seconds": pruned_seconds,
        "rows_per_second": rows / pruned_seconds,
        "reference": "full-table page reads without partition pruning",
        # The gated "speedup" for this entry is the page-IO reduction
        # factor — it is measured (simulated page accounting), not modeled.
        "speedup_vs_seed": unpruned_pages / pruned_pages,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=1_000_000)
    parser.add_argument("--output", type=Path, default=Path("BENCH_parallel.json"))
    args = parser.parse_args(argv)

    thread_overhead, process_overhead = _measure_task_overheads()

    db = _build_db(args.rows)
    db.partition_table("t", partitions=PARTITIONS)
    hot_paths = {
        "parallel_scan_filter": _bench_hot_path(
            db,
            "SELECT count(*) AS n, sum(x) AS s FROM t WHERE x > 10.0",
            args.rows,
            thread_overhead,
        ),
        "parallel_group_by": _bench_hot_path(
            db,
            "SELECT k, count(*) AS n, sum(x) AS s, avg(x) AS m, stddev(x) AS sd "
            "FROM t GROUP BY k",
            args.rows,
            thread_overhead,
        ),
    }

    prune_db = _build_db(args.rows, seed=7)
    prune_db.partition_table("t", partitions=PRUNE_PARTITIONS)
    hot_paths["partition_pruning"] = _bench_pruning(prune_db, args.rows)

    payload = {
        "benchmark": "bench_parallel",
        "generated_by": "benchmarks/bench_parallel.py",
        "schema_version": 1,
        "rows": args.rows,
        "rounds": ROUNDS,
        "host_cpus": os.cpu_count(),
        "hot_paths": hot_paths,
        "parallel": {
            "task_overhead_seconds": thread_overhead,
            **(
                {"process_task_overhead_seconds": process_overhead}
                if process_overhead is not None
                else {}
            ),
            "max_workers": max(WORKER_COUNTS),
        },
    }
    args.output.write_text(json.dumps(payload, indent=1) + "\n")

    for name, entry in hot_paths.items():
        print(
            f"{name:<22} speedup_vs_seed={entry['speedup_vs_seed']:.1f}x "
            f"rate={entry['rows_per_second']:,.0f} rows/s"
            + (" (modeled)" if entry.get("modeled") else " (measured)")
        )
        for workers, speedup in entry.get("measured_speedup_by_workers", {}).items():
            print(f"{'':<22} measured {workers} worker(s): {speedup:.2f}x wall-clock")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
