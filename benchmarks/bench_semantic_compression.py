"""§4.1 "true" semantic compression vs. the baselines.

Compares, on the LOFAR table:

* model-only storage (the paper's Table 1 figure, lossy),
* model + lossless residuals,
* model + residuals quantised to a small tolerance,
* zlib on the raw columns (the baseline SPARTAN barely beats), and
* the SPARTAN-style predictive compressor.

The expected shape: model-only is a few percent of raw; quantised
model+residuals beats zlib on the modelled column; lossless reconstruction
round-trips exactly.
"""

from __future__ import annotations

import pytest

from repro.baselines import gzip_baseline, spartan
from repro.bench import ExperimentResult
from repro.core.storage.semantic_compression import ModelCompressor


@pytest.mark.benchmark(group="compression")
def test_semantic_compression_vs_baselines(benchmark, lofar_bench_db, lofar_bench_model):
    db = lofar_bench_db
    model = lofar_bench_model
    table = db.table("measurements")
    quantisation = 0.001  # 1 mJy tolerance, far below the noise level

    def run():
        lossless = ModelCompressor(0.0).compress(table, model)
        quantised = ModelCompressor(quantisation).compress(table, model)
        zlib_result = gzip_baseline.compress_table(table)
        spartan_result = spartan.compress_table(table, error_tolerance=0.05)
        return lossless, quantised, zlib_result, spartan_result

    lossless, quantised, zlib_result, spartan_result = benchmark.pedantic(run, iterations=1, rounds=1)

    raw = table.byte_size()
    intensity_raw_bytes = table.column("intensity").byte_size()
    intensity_zlib_bytes = zlib_result.per_column_bytes["intensity"]
    model_plus_lossless = lossless.stats.parameter_bytes + lossless.stats.residual_bytes
    model_plus_quantised = quantised.stats.parameter_bytes + quantised.stats.residual_bytes

    result = ExperimentResult(
        name="§4.1 semantic compression",
        metadata={
            "rows": table.num_rows,
            "raw_bytes": raw,
            "quantisation_step": quantisation,
            "note": "the modelled column is what semantic compression targets; the key/input "
                    "columns are needed by every scheme and compress the same way for all of them",
        },
    )
    result.add_row(method="modelled column (intensity), raw", bytes=intensity_raw_bytes,
                   fraction_of_column=1.0, lossless=True)
    result.add_row(method="intensity via zlib", bytes=intensity_zlib_bytes,
                   fraction_of_column=intensity_zlib_bytes / intensity_raw_bytes, lossless=True)
    result.add_row(method="intensity via model + residuals (lossless)", bytes=model_plus_lossless,
                   fraction_of_column=model_plus_lossless / intensity_raw_bytes, lossless=True)
    result.add_row(method=f"intensity via model + residuals (quantised {quantisation})",
                   bytes=model_plus_quantised,
                   fraction_of_column=model_plus_quantised / intensity_raw_bytes, lossless=False)
    result.add_row(method="model only (lossy, Table 1)", bytes=lossless.stats.model_only_bytes,
                   fraction_of_column=lossless.stats.model_only_bytes / intensity_raw_bytes, lossless=False)
    result.add_row(method="whole table via zlib", bytes=zlib_result.compressed_bytes,
                   fraction_of_column=zlib_result.ratio, lossless=True)
    result.add_row(method="whole table via SPARTAN-style predictive", bytes=spartan_result.stored_bytes,
                   fraction_of_column=spartan_result.ratio, lossless=False)
    result.print()

    # Shapes the paper implies.
    assert lossless.stats.model_only_ratio < 0.15            # Table 1: a few percent of the table
    assert ModelCompressor(0.0).verify_roundtrip(table, lossless)   # lossless really is lossless
    assert model_plus_quantised < model_plus_lossless
    # On the modelled column, model-based storage beats generic zlib by a wide margin
    # (zlib cannot compress the noisy float column; the model explains most of it).
    assert model_plus_quantised < intensity_zlib_bytes
    assert model_plus_quantised < 0.5 * intensity_raw_bytes


@pytest.mark.benchmark(group="compression")
def test_compression_quantisation_sweep(benchmark, lofar_bench_db, lofar_bench_model):
    """Ablation: storage vs. reconstruction tolerance."""
    db = lofar_bench_db
    model = lofar_bench_model
    table = db.table("measurements")
    steps = [0.0, 0.0005, 0.001, 0.005, 0.02]

    def run():
        return {step: ModelCompressor(step).compress(table, model) for step in steps}

    compressed = benchmark.pedantic(run, iterations=1, rounds=1)

    result = ExperimentResult(name="Compression ablation: residual quantisation step")
    previous = None
    for step in steps:
        stats = compressed[step].stats
        result.add_row(quantisation_step=step, stored_bytes=stats.lossless_bytes, fraction_of_raw=stats.lossless_ratio)
        if previous is not None:
            assert stats.lossless_bytes <= previous + 1  # monotone: coarser step, smaller storage
        previous = stats.lossless_bytes
    result.print()
