"""§4.2 parameter-space enumeration and legal parameter combinations.

Enumerating the (source, frequency) space regenerates tuples for
combinations that never occurred in the raw data, violating relational
semantics.  The benchmark removes a known fraction of combinations from the
raw table, regenerates tuples from the model with and without the Bloom
filter of legal combinations, and reports the invented-tuple rate and the
filter's storage cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LawsDatabase
from repro.bench import ExperimentResult
from repro.core.approx.enumeration import build_enumeration_plan, generate_virtual_table
from repro.core.approx.legal import LegalCombinationFilter
from repro.core.quality import QualityPolicy
from repro.datasets import lofar


@pytest.mark.benchmark(group="enumeration")
def test_enumeration_with_and_without_legal_filter(benchmark, scale):
    num_sources = max(int(35_692 * scale * 0.2), 100)
    dataset = lofar.generate(num_sources=num_sources, observations_per_source=30, seed=9, anomaly_fraction=0.0)
    table = dataset.to_table("measurements")

    # Remove every observation at 0.18 GHz for half of the sources: those
    # (source, 0.18) combinations become illegal.
    rng = np.random.default_rng(1)
    removed_sources = set(rng.choice(np.arange(1, num_sources + 1), size=num_sources // 2, replace=False).tolist())
    sources = np.array(table.column("source").to_pylist())
    freqs = np.array(table.column("frequency").to_pylist())
    keep = ~(np.isin(sources, list(removed_sources)) & np.isclose(freqs, 0.18))
    reduced = table.filter(keep)

    db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.7))
    db.register_table(reduced)
    db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
    model = db.best_model("measurements", "intensity")
    stats = db.database.stats("measurements")

    def run():
        plan = build_enumeration_plan(model, stats)
        virtual = generate_virtual_table(model, plan)
        legal = LegalCombinationFilter.from_table(reduced, ("source", "frequency"), round_decimals=3)
        filtered = legal.filter_table(virtual)
        return virtual, filtered, legal

    virtual, filtered, legal = benchmark.pedantic(run, iterations=1, rounds=1)

    true_combos = {
        (int(s), round(float(f), 3))
        for s, f in zip(reduced.column("source").to_pylist(), reduced.column("frequency").to_pylist())
    }

    def invented_fraction(generated):
        combos = list(zip(generated.column("source").to_pylist(), generated.column("frequency").to_pylist()))
        invented = sum(1 for s, f in combos if (int(s), round(float(f), 3)) not in true_combos)
        return invented / len(combos) if combos else 0.0

    result = ExperimentResult(
        name="§4.2 parameter enumeration and legal combinations",
        metadata={
            "sources": num_sources,
            "illegal_combinations_injected": len(removed_sources),
            "bloom_filter_bytes": legal.byte_size(),
        },
    )
    result.add_row(method="enumeration only", rows=virtual.num_rows, invented_tuple_fraction=invented_fraction(virtual))
    result.add_row(method="enumeration + Bloom legality filter", rows=filtered.num_rows,
                   invented_tuple_fraction=invented_fraction(filtered))
    result.print()

    # Shape: without the filter the invented-tuple rate reflects the removed
    # combinations; the Bloom filter reduces it to (near) its false-positive rate.
    assert invented_fraction(virtual) > 0.05
    assert invented_fraction(filtered) < 0.02
    assert legal.byte_size() < reduced.byte_size() / 20
