"""Streaming ingestion & online maintenance benchmark.

Two questions the streaming subsystem must answer quantitatively:

1. What does the batched append path sustain, in rows/s, compared with
   one-row-at-a-time inserts?
2. After a mid-stream regime change, how wrong are approximate answers when
   the stale model keeps serving (maintenance off) versus after the
   change-point-driven refit (maintenance on)?
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, LawsDatabase
from repro.bench import ExperimentResult, relative_error
from repro.streaming import StreamIngestor


def _stream_rows(scale: float, seed: int = 17):
    """A linear sensor law with a level shift halfway through the stream."""
    n = max(int(200_000 * scale), 4_000)
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    value = 5.0 + 0.01 * t + rng.normal(0, 0.25, n)
    value[n // 2 :] += 12.0  # the regime change
    return t, value, n


@pytest.mark.benchmark(group="streaming")
def test_streaming_ingest_throughput(benchmark, scale):
    t, value, n = _stream_rows(scale)
    rows = list(zip(t, value))

    from time import perf_counter

    def ingest_run():
        db = Database()
        db.load_dict("stream", {"t": [0.0], "value": [0.0]})
        ingestor = StreamIngestor(db, batch_size=4096)
        # End-to-end wall clock (normalisation + buffering + appends), so the
        # comparison with the row-at-a-time loop below is apples-to-apples.
        started = perf_counter()
        ingestor.submit("stream", rows)
        ingestor.flush("stream")
        wall = perf_counter() - started
        return ingestor.stats("stream"), n / wall

    stats, batched_rows_per_second = benchmark.pedantic(ingest_run, iterations=1, rounds=3)

    # Baseline: the pre-existing row-at-a-time insert path.
    db = Database()
    db.load_dict("stream", {"t": [0.0], "value": [0.0]})
    single = min(n, 2_000)  # a slice is enough to price the per-row path
    started = perf_counter()
    for row in rows[:single]:
        db.insert_rows("stream", [row])
    single_rows_per_second = single / (perf_counter() - started)

    result = ExperimentResult(name="streaming ingest throughput")
    result.add_row(
        method="StreamIngestor (4096-row batches)",
        rows=stats.rows_ingested,
        rows_per_second=batched_rows_per_second,
        append_only_rows_per_second=stats.rows_per_second,
        batches=stats.batches_flushed,
    )
    result.add_row(
        method="insert_rows one-at-a-time",
        rows=single,
        rows_per_second=single_rows_per_second,
        append_only_rows_per_second=single_rows_per_second,
        batches=single,
    )
    result.print()

    assert stats.rows_ingested == n
    assert batched_rows_per_second > single_rows_per_second


@pytest.mark.benchmark(group="streaming")
def test_maintenance_accuracy_before_and_after_drift(benchmark, scale):
    """Approximate-answer error across a regime change, maintenance on vs. off."""
    t, value, n = _stream_rows(scale)
    half = n // 2
    sql = "SELECT avg(value) AS m FROM stream"

    def build(maintained: bool):
        db = LawsDatabase(ingest_batch_size=4096)
        db.load_dict("stream", {"t": t[:half], "value": value[:half]})
        report = db.fit("stream", "value ~ linear(t)")
        assert report.accepted
        if maintained:
            db.watch("stream", "value", order_column="t")
        db.ingest("stream", list(zip(t[half:], value[half:])), flush=True)
        if maintained:
            db.maintain()
        return db

    maintained = benchmark.pedantic(lambda: build(True), iterations=1, rounds=1)
    unmaintained = build(False)

    exact = maintained.sql(sql).table.row(0)[0]
    stale_answer = unmaintained.approximate_sql(sql)
    fresh_answer = maintained.approximate_sql(sql)
    stale_err = relative_error(stale_answer.scalar(), exact)
    fresh_err = relative_error(fresh_answer.scalar(), exact)

    result = ExperimentResult(name="avg(value) over full range after regime change")
    result.add_row(
        method="maintenance off (stale model serves)",
        value=stale_answer.scalar(),
        exact=exact,
        relative_error=stale_err,
        models=len(unmaintained.captured_models("stream")),
    )
    result.add_row(
        method="maintenance on (change-point refit)",
        value=fresh_answer.scalar(),
        exact=exact,
        relative_error=fresh_err,
        models=len(maintained.captured_models("stream")),
    )
    result.print()

    assert not stale_answer.is_exact and not fresh_answer.is_exact
    assert fresh_err < stale_err / 10
