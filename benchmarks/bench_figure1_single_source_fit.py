"""Figure 1: raw data vs. fitted power law for a single LOFAR source.

The paper shows one source's noisy flux observations over the four frequency
bands with the fitted ``I = p * nu**alpha`` curve and reports a spectral
index of about -0.69 (thermal emission).  This benchmark fits a single
source, reports the fitted parameters versus the generating ones, and emits
the fitted curve over nu in [0.10, 0.20] — the series a plot of Figure 1
would draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import ExperimentResult
from repro.fitting import PowerLaw, fit_model


@pytest.mark.benchmark(group="figure1")
def test_figure1_single_source_fit(benchmark, lofar_bench_dataset):
    dataset = lofar_bench_dataset
    # Pick a thermal-like (non-anomalous) source, as the paper's figure does.
    source_id = next(sid for sid, truth in dataset.truths.items() if not truth.is_anomalous)
    truth = dataset.truth_for(source_id)
    mask = dataset.source_ids == source_id
    frequencies = dataset.frequencies[mask]
    intensities = dataset.intensities[mask]

    fit = benchmark(
        lambda: fit_model(PowerLaw(), {"frequency": frequencies}, intensities, output_name="intensity")
    )

    result = ExperimentResult(
        name="Figure 1: single-source power-law fit",
        metadata={
            "source": source_id,
            "observations": int(mask.sum()),
            "paper": "spectral index ~ -0.69 for the example (thermal) source",
        },
    )
    result.add_row(quantity="spectral index alpha", fitted=fit.param_dict["alpha"], generating=truth.alpha)
    result.add_row(quantity="proportionality p", fitted=fit.param_dict["p"], generating=truth.p)
    result.add_row(quantity="residual SE", fitted=fit.residual_standard_error, generating=None)
    result.add_row(quantity="R^2", fitted=fit.r_squared, generating=None)
    result.print()

    curve = ExperimentResult(name="Figure 1 series: fitted curve I(nu)")
    for nu in np.linspace(0.10, 0.20, 11):
        curve.add_row(frequency_ghz=float(nu), intensity_jy=float(fit.predict({"frequency": np.array([nu])})[0]))
    curve.print()

    # Shape: the fitted index matches the generating one, is negative (thermal),
    # and the fit is good.
    assert fit.param_dict["alpha"] == pytest.approx(truth.alpha, abs=0.15)
    assert fit.param_dict["alpha"] < 0
    assert fit.r_squared > 0.7
    # The curve decays with frequency, as in the figure.
    values = [row["intensity_jy"] for row in curve.rows]
    assert values[0] > values[-1]
