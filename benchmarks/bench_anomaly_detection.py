"""§4.2 data anomalies: sources that do not fit the model are the interesting ones.

The synthetic LOFAR generator injects anomalous sources (flat spectra,
spectral turn-overs, pure interference).  The benchmark fits the power law
per source, ranks sources by residual misfit, and reports precision/recall of
the MAD-threshold detector plus the precision of the top-k ranking — the
paper's claim is that anomalies "can now be spotted much easier by observing
the goodness-of-fit for the model".
"""

from __future__ import annotations

import pytest

from repro import LawsDatabase
from repro.bench import ExperimentResult
from repro.core.approx.anomalies import detect_anomalies, rank_groups_by_misfit
from repro.core.quality import QualityPolicy
from repro.datasets import lofar


@pytest.mark.benchmark(group="anomalies")
def test_anomaly_detection_precision_recall(benchmark, scale):
    num_sources = max(int(35_692 * scale * 0.25), 150)
    dataset = lofar.generate(
        num_sources=num_sources, observations_per_source=40, seed=2015, anomaly_fraction=0.05
    )
    db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.6))
    db.register_table(dataset.to_table("measurements"))
    db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
    model = db.best_model("measurements", "intensity")
    true_anomalies = dataset.anomalous_sources()

    report = benchmark(lambda: detect_anomalies(model, mad_multiplier=3.0))

    flagged = {key[0] for key in report.anomalous_keys}
    hits = len(flagged & true_anomalies)
    precision = hits / len(flagged) if flagged else 0.0
    recall = hits / len(true_anomalies) if true_anomalies else 1.0

    ranked = rank_groups_by_misfit(model)
    top_k = {key[0] for key, _ in ((anomaly.key, anomaly.score) for anomaly in ranked[: len(true_anomalies)])}
    precision_at_k = len(top_k & true_anomalies) / len(true_anomalies)

    result = ExperimentResult(
        name="§4.2 anomaly detection via residual misfit",
        metadata={
            "sources": num_sources,
            "injected_anomalies": len(true_anomalies),
            "detector": "score > median + 3 * MAD (relative RSE)",
        },
    )
    result.add_row(metric="flagged sources", value=len(flagged))
    result.add_row(metric="precision", value=precision)
    result.add_row(metric="recall", value=recall)
    result.add_row(metric=f"precision@{len(true_anomalies)} (ranking)", value=precision_at_k)
    result.print()

    # Shape: residual ranking concentrates the injected anomalies near the top.
    assert recall >= 0.6
    assert precision_at_k >= 0.5
