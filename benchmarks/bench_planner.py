"""Routing-overhead benchmarks for the unified accuracy-aware planner.

The planner sits in front of every query, so its cost must be noise:
the acceptance bar is **planning overhead ≤ 5% of exact execution time**
over the bench suite (warm plan cache — the steady-state serving path).
The bench also measures routing-decision throughput and the plan cache's
speedup over cold planning, and emits ``BENCH_planner.json`` in the same
shape as ``BENCH_hotpaths.json`` so
``benchmarks/check_hotpath_regression.py`` gates both files.

Usage::

    python benchmarks/bench_planner.py [--rows 50000] [--output BENCH_planner.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AccuracyContract, LawsDatabase  # noqa: E402

ROUNDS = 5

#: The bench suite: one query per planner-visible shape (grouped model
#: serving, range aggregation, point lookup, enumeration, and two
#: exact-only shapes the sketch must cheaply decline).
SUITE = [
    "SELECT g, avg(y) AS m, count(*) AS n FROM t GROUP BY g ORDER BY g",
    "SELECT avg(y) AS m FROM t WHERE x BETWEEN 1 AND 2",
    "SELECT y FROM t WHERE g = 3 AND x = 1",
    "SELECT y FROM t WHERE g = 2 ORDER BY y",
    "SELECT count(*) AS n FROM t WHERE x >= 1",
    "SELECT g, min(y) AS lo, max(y) AS hi FROM t GROUP BY g",
]


def _build_db(rows: int, seed: int = 42) -> LawsDatabase:
    rng = np.random.default_rng(seed)
    # Observability off: this bench gates the *uninstrumented* planning
    # path; benchmarks/bench_observability.py owns the instrumented one.
    db = LawsDatabase(verify_sample_fraction=0.0, observability=False)
    g = rng.integers(0, 8, rows)
    x = rng.integers(0, 4, rows).astype(np.float64)
    y = 1.0 + 2.0 * g + 0.7 * x + rng.normal(0.0, 0.1, rows)
    db.load_dict(
        "t",
        {"g": [int(v) for v in g], "x": [float(v) for v in x], "y": [float(v) for v in y]},
    )
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted, "bench model must be accepted"
    return db


def _best(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def run(rows: int) -> dict:
    db = _build_db(rows)
    contract = AccuracyContract(max_relative_error=0.25)
    planner = db.planner

    # Exact execution time of the suite (plan-cached steady state).
    for sql in SUITE:
        db.database.sql(sql)
    exact_seconds = _best(lambda: [db.database.sql(sql) for sql in SUITE])

    # Warm planning: the steady-state overhead every query pays.
    for sql in SUITE:
        planner.plan(sql, contract)
    warm_seconds = _best(lambda: [planner.plan(sql, contract) for sql in SUITE])

    # Cold planning: cache cleared before every pass (the reference the
    # plan cache is judged against, like the seed re-parse/re-plan path).
    def _cold_pass():
        planner._plan_cache.clear()
        for sql in SUITE:
            planner.plan(sql, contract)

    cold_seconds = _best(_cold_pass)

    overhead_fraction = warm_seconds / exact_seconds if exact_seconds > 0 else float("inf")
    queries = len(SUITE)
    report = {
        "benchmark": "bench_planner",
        "generated_by": "benchmarks/bench_planner.py",
        "schema_version": 1,
        "rows": rows,
        "rounds": ROUNDS,
        "suite_queries": queries,
        "hot_paths": {
            "planner_routing": {
                "description": "warm (plan-cached) unified-planner routing decision",
                "queries": queries,
                "seconds": warm_seconds,
                "queries_per_second": queries / warm_seconds,
                "reference": "cold planning (plan cache cleared per pass)",
                "reference_seconds": cold_seconds,
                "speedup_vs_seed": cold_seconds / warm_seconds,
                "exact_suite_seconds": exact_seconds,
                "overhead_fraction": overhead_fraction,
                "overhead_note": "warm planning time / exact execution time over the suite (budget: 0.05)",
            },
            "planner_cold_routing": {
                "description": "cold routing decision (sketch + cost + choice, no cache)",
                "queries": queries,
                "seconds": cold_seconds,
                "queries_per_second": queries / cold_seconds,
                "reference": "exact execution of the same suite",
                "reference_seconds": exact_seconds,
                "speedup_vs_seed": exact_seconds / cold_seconds,
            },
        },
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=50_000)
    parser.add_argument("--output", type=Path, default=Path("BENCH_planner.json"))
    args = parser.parse_args()
    report = run(args.rows)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    entry = report["hot_paths"]["planner_routing"]
    print(
        f"planner routing: {entry['queries_per_second']:,.0f} decisions/s warm, "
        f"overhead {entry['overhead_fraction']:.2%} of exact "
        f"(budget 5%), cache speedup {entry['speedup_vs_seed']:.1f}x"
    )
    if entry["overhead_fraction"] > 0.05:
        print("FAIL: planner overhead exceeds 5% of exact execution time")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
