"""§4.1 zero-IO scans: turning an IO-bound scan into a CPU-bound model evaluation.

The benchmark compares a scan-shaped aggregate over the LOFAR table executed
(a) against the raw data, charging the simulated IO model, and (b) from the
captured model's regenerated tuples, which read nothing.  The reported
quantities — pages read, simulated IO time, wall-clock time — are exactly the
trade the paper describes.
"""

from __future__ import annotations

import pytest

from repro.bench import ExperimentResult, relative_error


@pytest.mark.benchmark(group="zero-io")
def test_zero_io_scan_comparison(benchmark, lofar_bench_db):
    db = lofar_bench_db

    comparison = benchmark.pedantic(
        lambda: db.compare_scan("measurements", "intensity"), iterations=1, rounds=3
    )

    result = ExperimentResult(name="§4.1 zero-IO scans: raw scan vs. model scan")
    result.add_row(
        method="raw table scan",
        rows=comparison.raw_rows,
        pages_read=comparison.raw_pages_read,
        simulated_io_ms=comparison.raw_virtual_io_seconds * 1e3,
        wall_ms=comparison.raw_wall_seconds * 1e3,
    )
    result.add_row(
        method="model-generated scan",
        rows=comparison.model_rows,
        pages_read=comparison.model_pages_read,
        simulated_io_ms=comparison.model_virtual_io_seconds * 1e3,
        wall_ms=comparison.model_wall_seconds * 1e3,
    )
    result.print()

    assert comparison.model_pages_read == 0
    assert comparison.raw_pages_read > 0
    assert comparison.io_time_saved > 0


@pytest.mark.benchmark(group="zero-io")
def test_zero_io_aggregate_query(benchmark, lofar_bench_db):
    """A full aggregate query: accuracy and IO of the model route vs. exact."""
    db = lofar_bench_db
    sql = "SELECT avg(intensity) AS m FROM measurements WHERE frequency = 0.12"

    comparison = benchmark(lambda: db.compare_sql(sql))
    approx = comparison["approximate"]
    exact = comparison["exact"]

    result = ExperimentResult(name="§4.1 zero-IO aggregate: avg(intensity) at 0.12 GHz")
    result.add_row(
        method="captured model",
        value=approx.scalar(),
        pages_read=approx.io["pages_read"],
        wall_ms=approx.elapsed_seconds * 1e3,
        relative_error=relative_error(approx.scalar(), exact.scalar()),
    )
    result.add_row(
        method="exact scan",
        value=exact.scalar(),
        pages_read=exact.io["pages_read"],
        wall_ms=exact.elapsed_seconds * 1e3,
        relative_error=0.0,
    )
    result.print()

    assert approx.io["pages_read"] == 0
    assert exact.io["pages_read"] > 0
    assert comparison["max_relative_error"] < 0.10
