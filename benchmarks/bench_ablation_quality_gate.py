"""Ablation: the model-quality gate (§3's "judge the quality of the model").

What happens if the database uses captured models for approximate answering
regardless of their quality?  The benchmark fits a deliberately bad model
(a constant per source) and a good model (the power law) on the same data,
then sweeps the R² acceptance threshold and reports which model the engine
ends up using and the resulting answer error.  The expected shape: once the
gate admits the bad model as "best available", answer error jumps — the gate
is what keeps approximate answers trustworthy.
"""

from __future__ import annotations

import pytest

from repro import LawsDatabase
from repro.bench import ExperimentResult, relative_error
from repro.core.quality import QualityPolicy
from repro.datasets import lofar

THRESHOLDS = (0.0, 0.3, 0.6, 0.8, 0.95)


@pytest.mark.benchmark(group="ablation")
def test_quality_gate_threshold_sweep(benchmark, scale):
    num_sources = max(int(35_692 * scale * 0.1), 80)
    dataset = lofar.generate(num_sources=num_sources, observations_per_source=36, seed=5, anomaly_fraction=0.0)
    sql = "SELECT avg(intensity) AS m FROM measurements WHERE frequency = 0.15"

    def evaluate_threshold(threshold: float):
        db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=threshold))
        db.register_table(dataset.to_table("measurements"))
        # Capture order matters: the bad model is newer, so a permissive gate
        # that accepts both must still not let it displace the better one.
        good = db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
        bad = db.fit("measurements", "intensity ~ constant(frequency)", group_by="source")
        exact = db.sql(sql).scalar()
        answer = db.approximate_sql(sql)
        used = None
        if answer.used_model_ids:
            used = db.models.get(answer.used_model_ids[0]).family_name
        return {
            "threshold": threshold,
            "good_accepted": good.accepted,
            "bad_accepted": bad.accepted,
            "route": answer.route,
            "model_used": used or "(exact fallback)",
            "relative_error": relative_error(answer.scalar(), exact) if answer.table.num_rows else float("nan"),
        }

    def run():
        return [evaluate_threshold(threshold) for threshold in THRESHOLDS]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)

    result = ExperimentResult(
        name="Ablation: R² acceptance threshold for captured models",
        metadata={"sources": num_sources, "query": sql},
    )
    for row in rows:
        result.add_row(**row)
    result.print()

    by_threshold = {row["threshold"]: row for row in rows}
    # A permissive gate accepts even the constant model; the default gate rejects it.
    assert by_threshold[0.0]["bad_accepted"] is True
    assert by_threshold[0.8]["bad_accepted"] is False
    # Whenever a model answer is produced, model selection prefers the power law,
    # and the answer error stays small.
    for row in rows:
        if row["route"] != "exact-fallback":
            assert row["model_used"] == "powerlaw"
            assert row["relative_error"] < 0.10
    # An extreme gate rejects everything and the engine falls back to exact execution.
    assert by_threshold[0.95]["route"] == "exact-fallback"
