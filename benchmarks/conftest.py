"""Shared fixtures for the benchmark suite.

Dataset sizes are controlled by the ``REPRO_SCALE`` environment variable
(fraction of the paper's dataset size; default 0.02 keeps the suite fast,
``REPRO_SCALE=1.0`` reproduces the full 1.45M-row LOFAR workload).
"""

from __future__ import annotations

import pytest

from repro import LawsDatabase
from repro.bench import repro_scale
from repro.core.quality import QualityPolicy
from repro.datasets import lofar, tpcds_lite


@pytest.fixture(scope="session")
def scale() -> float:
    return repro_scale()


@pytest.fixture(scope="session")
def lofar_bench_dataset(scale):
    """LOFAR dataset at the configured fraction of paper scale."""
    config = lofar.scaled_config(scale)
    return lofar.generate(config=config)


@pytest.fixture(scope="session")
def lofar_bench_db(lofar_bench_dataset):
    db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.7))
    db.register_table(lofar_bench_dataset.to_table("measurements"))
    report = db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
    assert report.accepted
    return db


@pytest.fixture(scope="session")
def lofar_bench_model(lofar_bench_db):
    return lofar_bench_db.best_model("measurements", "intensity")


@pytest.fixture(scope="session")
def tpcds_bench_dataset(scale):
    factor = max(scale * 10, 0.05)
    return tpcds_lite.generate(
        num_items=max(int(200 * factor), 40),
        num_stores=max(int(20 * factor), 4),
        num_days=max(int(365 * factor), 60),
        sales_per_day_per_store=8,
        seed=7,
    )


@pytest.fixture(scope="session")
def tpcds_bench_db(tpcds_bench_dataset):
    db = LawsDatabase()
    tpcds_lite.load_into(db.database, tpcds_bench_dataset)
    db.fit("store_sales", "sales_price ~ linear(list_price)")
    db.fit("store_sales", "list_price ~ linear(wholesale_cost)")
    return db
