"""Observability tour: traces, EXPLAIN ANALYZE, metrics, events, compliance.

Walks the query-lifecycle telemetry end to end on a sensor workload:

1. ``explain_analyze()`` — the span tree of a live query: per-stage wall
   time, simulated page IO, the route decision with rejected candidates,
   and predicted vs observed error for model-served answers;
2. ``last_trace()`` — programmatic access to the same span tree;
3. ``metrics()`` / ``metrics_prometheus()`` — counters, gauges and latency
   histograms, including plan-cache and storage-savings gauges;
4. the event journal — model captures, drift, maintenance refits;
5. the contract-compliance ledger — per-route promised vs delivered error;
6. the slow-query log.

Run with::

    PYTHONPATH=src python examples/observability_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import AccuracyContract, LawsDatabase


def build_database(seed: int = 11) -> LawsDatabase:
    rng = np.random.default_rng(seed)
    # slow_query_seconds=0.0 logs every query so the tour has entries to show.
    db = LawsDatabase(verify_sample_fraction=0.0, slow_query_seconds=0.0)
    rows = 4000
    sensor = rng.integers(0, 8, rows)
    load = rng.integers(0, 6, rows).astype(float)
    temperature = 15.0 + 2.5 * sensor + 1.8 * load + rng.normal(0.0, 0.3, rows)
    db.load_dict(
        "readings",
        {
            "sensor": [int(v) for v in sensor],
            "load": [float(v) for v in load],
            "temperature": [float(v) for v in temperature],
        },
    )
    report = db.fit("readings", "temperature ~ linear(load)", group_by="sensor")
    assert report.accepted
    return db


def main() -> None:
    db = build_database()
    contract = AccuracyContract(max_relative_error=0.05)
    grouped_sql = (
        "SELECT sensor, avg(temperature) AS t FROM readings "
        "GROUP BY sensor ORDER BY sensor"
    )

    print("=" * 72)
    print("1. EXPLAIN ANALYZE — a model-served query, verified against exact")
    print("=" * 72)
    print(db.explain_analyze(grouped_sql, contract))

    print()
    print("=" * 72)
    print("2. The same span tree, programmatically")
    print("=" * 72)
    db.query(grouped_sql, contract)
    trace = db.last_trace()
    print(f"spans: {trace.span_names()}")
    plan_span = trace.find("plan")
    print(f"decision: {plan_span.attributes['decision']}")
    for line in plan_span.attributes["candidates"]:
        print(f"  candidate: {line}")
    print(f"total wall time: {trace.elapsed_seconds * 1e3:.3f}ms, pages read: {trace.pages_read:g}")

    print()
    print("=" * 72)
    print("3. Metrics — a hybrid and an exact query, then the snapshot")
    print("=" * 72)
    # A sensor the model never saw forces the hybrid route's exact fill-in.
    db.insert_rows("readings", [(9, float(x), 70.0 + 1.8 * x) for x in range(6)])
    hybrid = db.query(grouped_sql, contract)
    print(f"after insert, route: {hybrid.route_taken}")
    db.query("SELECT count(*) AS n FROM readings")
    snapshot = db.metrics()
    for entry in snapshot["counters"]["queries_total"]:
        print(f"queries_total{entry['labels']} = {entry['value']:g}")
    for name in ("plan_cache_hits", "storage_total_raw_bytes", "storage_total_model_bytes"):
        for entry in snapshot["gauges"][name]:
            print(f"{name}{entry['labels']} = {entry['value']:g}")
    print()
    print("Prometheus exposition (first lines):")
    for line in db.metrics_prometheus().splitlines()[:6]:
        print(f"  {line}")

    print()
    print("=" * 72)
    print("4. The event journal")
    print("=" * 72)
    for event in db.events():
        print(event.describe())

    print()
    print("=" * 72)
    print("5. Contract compliance — promised vs delivered, per route")
    print("=" * 72)
    # Force verification via EXPLAIN ANALYZE (it samples at fraction 1.0).
    db.explain_analyze(grouped_sql, contract)
    for route, entry in db.compliance_report()["routes"].items():
        predicted = entry["mean_predicted_relative_error"]
        observed = entry["mean_observed_relative_error"]
        print(
            f"{route}: served={entry['served']} verified={entry['verified']} "
            f"predicted={predicted if predicted is None else f'{predicted:.2%}'} "
            f"observed={observed if observed is None else f'{observed:.2%}'} "
            f"violations={entry['budget_violations']}"
        )

    print()
    print("=" * 72)
    print("6. The slow-query log (threshold 0.0s here, so everything logs)")
    print("=" * 72)
    for slow in db.slow_queries(limit=3):
        print(slow.describe())


if __name__ == "__main__":
    main()
