"""LOFAR Transients walkthrough: the paper's astronomy use case end to end.

Run with::

    python examples/lofar_transients.py

Covers the full §2 + §4 story: per-source power-law harvesting, the Figure 1
single-source fit, anomaly hunting via residuals, model exploration, zero-IO
scans and semantic compression — on a synthetic dataset with injected
anomalous sources (flat spectra, turn-overs, pure interference).
"""

from __future__ import annotations

import numpy as np

from repro import LawsDatabase
from repro.core.approx.exploration import explore_gradients, extreme_parameter_groups
from repro.core.quality import QualityPolicy
from repro.datasets import lofar


def main() -> None:
    dataset = lofar.generate(
        num_sources=800, observations_per_source=40, seed=2015, anomaly_fraction=0.03
    )
    db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.7))
    db.register_table(dataset.to_table("measurements"))

    # --- harvest the spectral-index model --------------------------------------
    report = db.strawman("measurements").fit("intensity ~ powerlaw(frequency)", group_by="source")
    model = report.model
    print(f"Captured {model.describe()}")

    # --- Figure 1: one source in detail -----------------------------------------
    source_id = next(sid for sid, truth in dataset.truths.items() if not truth.is_anomalous)
    fit = model.result_for_group((source_id,))
    truth = dataset.truth_for(source_id)
    print(f"\nFigure 1 analogue, source {source_id}:")
    print(f"  fitted   alpha = {fit.param_dict['alpha']:.3f}, p = {fit.param_dict['p']:.4f}, "
          f"RSE = {fit.residual_standard_error:.4f}")
    print(f"  generated with alpha = {truth.alpha:.3f}, p = {truth.p:.4f}")
    curve_nu = np.linspace(0.10, 0.20, 6)
    curve = fit.predict({"frequency": curve_nu})
    rendered = ", ".join(f"{nu:.2f}->{val:.3f}" for nu, val in zip(curve_nu, curve))
    print(f"  fitted curve I(nu): {rendered}")

    # --- anomalies: the transients we are actually hunting ----------------------
    anomaly_report = db.anomalies("measurements", mad_multiplier=3.0)
    flagged = {key[0] for key in anomaly_report.anomalous_keys}
    true_anomalies = dataset.anomalous_sources()
    hits = len(flagged & true_anomalies)
    print(f"\nAnomaly hunt: flagged {len(flagged)} sources, "
          f"{hits}/{len(true_anomalies)} injected anomalies found "
          f"(precision {hits / max(len(flagged), 1):.2f}, recall {hits / len(true_anomalies):.2f})")
    for anomaly in anomaly_report.top(5):
        marker = "*" if anomaly.key[0] in true_anomalies else " "
        print(f"  {marker} {anomaly}")

    # --- model exploration --------------------------------------------------------
    steepest = extreme_parameter_groups(model, "alpha", k=3, largest=False)
    print("\nSteepest spectral indices (most negative alpha):")
    for key, alpha in steepest:
        print(f"  source {key[0]}: alpha = {alpha:.3f}")
    regions = explore_gradients(model, {"frequency": (0.10, 0.20)}, group_key=(source_id,))
    print(f"Highest-gradient frequency region for source {source_id}: {regions['frequency'][0]}")

    # --- storage: zero-IO scans and compression -----------------------------------
    scan = db.compare_scan("measurements", "intensity")
    print(f"\nZero-IO scan: {scan.summary()}")
    lossless = db.compress_table("measurements")
    lossy = db.compress_table("measurements", quantisation_step=0.001)
    print(f"Semantic compression (lossless residuals): {lossless.stats.summary()}")
    print(f"Semantic compression (quantised to 0.001 Jy): {lossy.stats.summary()}")

    # --- the data keeps growing (§2): models stay small ----------------------------
    db.insert_rows("measurements", [(source_id, 0.15, float(curve[2]))] * 100)
    db.lifecycle.revalidate("measurements")
    refreshed = db.lifecycle.refit_if_needed("measurements", "intensity")
    print(f"\nAfter appending 100 new observations the active model is model#{refreshed.model_id} "
          f"({refreshed.status}); parameter table still {refreshed.stored_byte_size()} bytes.")


if __name__ == "__main__":
    main()
