"""Resilience tour: faults in, disclosures out.

Walks the self-healing layer end to end on a durable store:

1. deterministic fault injection — a seeded schedule of IO errors replayed
   at named fault points inside the production code;
2. retry with backoff — a transient WAL append error that heals invisibly,
   journaled as a ``retry`` event;
3. torn WAL tail — crash mid-frame, reopen: the tail is truncated,
   quarantined and journaled; every intact batch survives;
4. warehouse corruption — flipped bytes in one model entry: exactly that
   entry quarantines, every other model serves;
5. graceful degradation — queries over the damaged table serve from the
   surviving models *with disclosure*, or raise a typed
   ``DegradedServiceError``; ``acknowledge_degraded()`` restores service.

Run with::

    PYTHONPATH=src python examples/resilience_tour.py
"""

from __future__ import annotations

import errno
import json
import shutil
import tempfile
from pathlib import Path

from repro import AccuracyContract, LawsDatabase
from repro.errors import DegradedServiceError
from repro.resilience import FaultInjector
from repro.resilience.faults import FaultSpec

ROWS = 200


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def fill(db: LawsDatabase) -> None:
    db.load_dict(
        "sensors",
        {
            "t": [float(t) for t in range(ROWS)],
            "temp": [15.0 + 0.02 * t for t in range(ROWS)],
            "load": [3.0 + 0.05 * t for t in range(ROWS)],
        },
    )
    db.fit("sensors", "temp ~ t")
    db.fit("sensors", "load ~ t")


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="resilience-tour-")) / "store"

    banner("1+2. A transient WAL error heals by retry")
    faults = FaultInjector(
        [FaultSpec("persist.wal.append", "oserror", errno_code=errno.EIO, hit=4)]
    )
    db = LawsDatabase.open(root, fault_injector=faults)
    fill(db)
    db.ingest("sensors", [(float(ROWS + i), 19.0, 13.0) for i in range(8)], flush=True)
    retries = db.events(kind="retry")
    print(f"injected: {[ (e.point, e.kind) for e in faults.fired() ]}")
    print(f"journaled retries: {[e.fields for e in retries]}")
    assert retries and retries[0].fields["outcome"] == "success"
    db.checkpoint()
    db.close()

    banner("3. Crash tears the WAL tail; reopen truncates + quarantines")
    db = LawsDatabase.open(root)
    db.insert_rows("sensors", [(500.0, 20.0, 14.0), (501.0, 20.1, 14.1)])
    db.close()  # no checkpoint: those rows live only in the WAL
    wal = root / "wal.log"
    wal.write_bytes(wal.read_bytes()[:-5])  # the power cut
    db = LawsDatabase.open(root)
    outcome = db.events(kind="recovery")[-1].fields["outcome"]
    truncation = db.events(kind="wal-truncation")[-1].fields
    print(f"recovery outcome: {outcome}")
    print(f"truncation: {truncation['reason']} ({truncation['truncated_bytes']} bytes "
          f"preserved at {truncation['quarantined_path']})")
    print(f"rows after reopen: {db.table('sensors').num_rows}")
    db.checkpoint()
    db.close()

    banner("4. Flipped bytes in one warehouse entry")
    manifest = json.loads((root / "MANIFEST.json").read_text())
    warehouse = root / manifest["warehouse_file"]
    payload = json.loads(warehouse.read_text())
    victim = next(e for e in payload["models"] if e["coverage"]["output_column"] == "temp")
    victim["fit"] = "\x7fcorrupted\x00"
    warehouse.write_text(json.dumps(payload))
    db = LawsDatabase.open(root)
    report = db.quarantine_report()
    print(f"quarantined: {report['by_artefact']} -> {report['directory']}")
    print(f"warehouse health: {db.resilience.health.state('warehouse')!r}")
    survivors = [f"{m.table_name}.{m.output_column}" for m in db.captured_models()]
    print(f"surviving models: {survivors}")

    banner("5. Degraded service: disclosed answers or typed refusals")
    # Pretend the table itself lost segments, the strongest degradation.
    db.resilience.health.mark_failed("table:sensors", "snapshot segments quarantined")
    answer = db.query(
        "SELECT avg(load) AS mean_load FROM sensors",
        AccuracyContract(max_relative_error=0.1, verify_fraction=0.0),
    )
    print(f"approx answer: {float(answer.scalar()):.3f} "
          f"(degraded_reason={answer.plan.degraded_reason!r})")
    try:
        db.query("SELECT avg(load) AS m FROM sensors", AccuracyContract(mode="exact"))
    except DegradedServiceError as exc:
        print(f"exact refused: [{type(exc).__name__}] component={exc.component!r}")
    db.acknowledge_degraded("table:sensors")
    exact = db.query("SELECT avg(load) AS m FROM sensors", AccuracyContract(mode="exact"))
    print(f"after acknowledge_degraded: exact answer {float(exact.scalar()):.3f}")
    print("\nhealth report:", json.dumps(db.health_report()["health"], indent=2))
    db.close()
    shutil.rmtree(root.parent, ignore_errors=True)


if __name__ == "__main__":
    main()
