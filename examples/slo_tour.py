"""SLO tour: the self-observing loop, end to end.

Walks the PR-10 telemetry subsystem on a sensor workload:

1. **Flight recorder** — served queries flush into reserved
   ``_telemetry_*`` tables through the real streaming-ingest path; the
   telemetry warehouse is then ordinary SQL, and a latency baseline model
   is harvested over the system's own series so a regression journals the
   same ``drift-detected`` event a drifting sensor table would;
2. **Adaptive cost calibration** — observed per-operator span timings
   retune the planner's cost model online, with the provenance visible in
   ``explain()`` and the recalibration journaled;
3. **SLO engine** — a seeded latency cliff trips the fast burn-rate
   window (the slow window, diluted by an hour of good service, holds),
   degrading the ``slo:latency`` component in the health registry;
   recovery clears it;
4. **Ops surface** — ``ops_report()`` as one status document, OTLP trace
   export, and the ``tools/repro_top.py`` dashboard rendering.

Run with::

    PYTHONPATH=src python examples/slo_tour.py
"""

from __future__ import annotations

import json
import random

import numpy as np

from repro import AccuracyContract, LawsDatabase
from repro.obs.flight import QUERY_TABLE
from repro.obs.slo import SLO, SLOEngine
from repro.resilience.health import HealthRegistry


def build_database(seed: int = 23) -> LawsDatabase:
    rng = np.random.default_rng(seed)
    db = LawsDatabase(verify_sample_fraction=0.25, verify_seed=7)
    rows = 4000
    sensor = rng.integers(0, 8, rows)
    load = rng.integers(0, 6, rows).astype(float)
    temperature = 15.0 + 2.5 * sensor + 1.8 * load + rng.normal(0.0, 0.3, rows)
    db.load_dict(
        "readings",
        {
            "sensor": [int(v) for v in sensor],
            "load": [float(v) for v in load],
            "temperature": [float(v) for v in temperature],
        },
    )
    report = db.fit("readings", "temperature ~ linear(load)", group_by="sensor")
    assert report.accepted
    return db


def tour_flight_recorder(db: LawsDatabase) -> None:
    print("=" * 72)
    print("1. The flight recorder: telemetry as data")
    print("=" * 72)
    contract = AccuracyContract(max_relative_error=0.1)
    for _ in range(12):
        db.query("SELECT sensor, avg(temperature) AS t FROM readings GROUP BY sensor", contract)
        db.query("SELECT count(*) AS n FROM readings", AccuracyContract(mode="exact"))
    rows = db.flush_telemetry()
    print(f"\nflushed {rows} telemetry rows through the streaming-ingest path")

    print("\nthe telemetry warehouse is ordinary SQL:")
    result = db.query(
        f"SELECT route, count(*) AS n, avg(elapsed_us) AS mean_us "
        f"FROM {QUERY_TABLE} GROUP BY route ORDER BY route"
    )
    for route, n, mean_us in result.rows():
        print(f"  {route:<18} {n:>4} queries   mean {mean_us:8.1f} µs")
    print("\n(and it is guarded: that query minted zero new telemetry rows)")

    flight = db.obs.flight.report()
    print(f"\nflight recorder: {flight['recorded_queries']} recorded, "
          f"{flight['flushes']} flush(es), {flight['flushed_rows']} rows")

    # Drive enough jittered traffic for the latency baseline to be fitted
    # over the system's own series, then inject a latency regression.
    rng = random.Random(5)
    db.obs.flight.baseline_min_rows = 48
    for _ in range(48):
        db.obs.flight.record_query("exact", 0.004 + rng.gauss(0.0, 0.0004))
    db.flush_telemetry()
    print(f"\nlatency baseline fitted: model "
          f"#{db.obs.flight.report()['baseline_model_id']} watching {QUERY_TABLE}")

    for _ in range(2):
        for _ in range(16):
            db.obs.flight.record_query("exact", 0.200 + rng.gauss(0.0, 0.0004))
        db.flush_telemetry()
    for event in db.events(kind="drift-detected", table=QUERY_TABLE):
        print(f"latency regression detected by the PR-1 drift machinery:\n  {event.describe()}")


def tour_calibration(db: LawsDatabase) -> None:
    print()
    print("=" * 72)
    print("2. Adaptive cost calibration")
    print("=" * 72)
    sql = "SELECT sensor, avg(temperature) AS t FROM readings GROUP BY sensor"
    print(f"\ncost provenance before: {db.calibration_report()['source']}")

    # Skew the observed world through the tracer's injectable clock: every
    # span reading advances 20ms, so traced per-row rates come out orders
    # of magnitude worse than the committed BENCH calibration.
    class SkewedClock:
        def __init__(self) -> None:
            self.now = 0.0

        def __call__(self) -> float:
            self.now += 0.02
            return self.now

    db.obs.tracer.clock = SkewedClock()
    for _ in range(8):
        db.query(sql)
    report = db.calibration_report()
    print(f"cost provenance after {report['observed_traces']} traced queries: "
          f"{report['source']}")
    for event in db.events(kind="cost-recalibration", limit=1):
        shifted = ", ".join(sorted(event.fields["shifted"]))
        print(f"journaled: {event.kind} generation {event.fields['generation']} "
              f"(shifted: {shifted})")
    print("\nexplain() discloses the provenance:")
    for line in db.explain(sql).splitlines()[:4]:
        print(f"  {line}")


def tour_slo_engine() -> None:
    print()
    print("=" * 72)
    print("3. SLOs: multiwindow burn-rate alerting through the health registry")
    print("=" * 72)

    # A standalone engine with a settable clock makes the windows visible
    # without sleeping; LawsDatabase wires the same engine to its own
    # health registry and journal.
    class Clock:
        now = 100_000.0

        def __call__(self) -> float:
            return self.now

    clock = Clock()
    health = HealthRegistry()
    engine = SLOEngine(
        health=health,
        slos=(SLO(name="latency", kind="latency", objective=0.99, threshold_seconds=0.1),),
        clock=clock,
    )

    # An hour of good service, then a cliff in the last ten seconds.
    for i in range(600):
        clock.now = 100_000.0 - 3000.0 + i * (2600.0 / 600.0)
        engine.observe_query(0.005)
    for i in range(30):
        clock.now = 100_000.0 - 10.0 + i / 3.0
        engine.observe_query(0.450)
    clock.now = 100_000.0

    report = engine.evaluate()["latency"]
    for label, window in report["windows"].items():
        marker = "BURN" if window["alerting"] else "ok"
        print(f"  {label:<5} window: burn {window['burn_rate']:6.1f}x "
              f"(threshold {window['burn_threshold']:g}x, "
              f"{window['bad']}/{window['events']} bad)  [{marker}]")
    print(f"\nalerting on the {report['alert_window']} window; "
          f"health registry says slo:latency = {health.state('slo:latency')}")
    print(f"  reason: {health.reason('slo:latency')}")

    # The cliff ages out; good traffic restores the error budget.
    clock.now += 200.0
    for _ in range(30):
        engine.observe_query(0.005)
    clock.now += 200.0
    engine.evaluate()
    print(f"\nafter 400s of good service: slo:latency = {health.state('slo:latency')}")


def tour_ops_surface(db: LawsDatabase) -> None:
    print()
    print("=" * 72)
    print("4. The ops surface")
    print("=" * 72)
    report = db.ops_report()
    print("\nops_report() — one JSON document (abridged):")
    queries = report["queries"]
    print(f"  queries: total={queries['total']:.0f} by_route={queries['by_route']}")
    print(f"  calibration: {report['calibration']['source']}")
    print(f"  flight: flushed_rows={report['flight']['flushed_rows']}")
    top_events = sorted(report["events"].items(), key=lambda kv: -kv[1])[:4]
    print(f"  events: {dict(top_events)}")

    otlp = db.export_traces_otlp()
    spans = otlp["resourceSpans"][0]["scopeSpans"][0]["spans"]
    print(f"\nOTLP export: {len(spans)} span(s); first span:")
    print("  " + json.dumps({k: spans[0][k] for k in ("traceId", "spanId", "name")}))

    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
    from repro_top import render

    print("\ntools/repro_top.py renders the same report as a dashboard frame:")
    print()
    print(render(report, color=False))


def main() -> None:
    db = build_database()
    tour_flight_recorder(db)
    tour_calibration(db)
    tour_slo_engine()
    tour_ops_surface(db)
    print("\nSLO tour complete.")


if __name__ == "__main__":
    main()
