"""Sensor-network scenario: the MauveDB workload under model harvesting.

Run with::

    python examples/sensor_network.py

A fleet of temperature sensors samples a smooth daily curve with noise and
dropouts.  The example harvests a per-sensor sinusoidal model, compares it
with a MauveDB-style gridded view and a FunctionDB-style piecewise table,
and uses the captured model for gap filling and compression.
"""

from __future__ import annotations

import numpy as np

from repro import LawsDatabase
from repro.baselines import functiondb, mauvedb
from repro.core.quality import QualityPolicy
from repro.datasets import sensors


def main() -> None:
    dataset = sensors.generate(num_sensors=24, num_hours=24 * 14, dropout_fraction=0.05, seed=4)
    db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.7))
    table = dataset.to_table()
    db.register_table(table)
    print(f"{table.num_rows} readings from {dataset.config.num_sensors} sensors "
          f"({table.byte_size() / 1e3:.0f} KB nominal)")

    # Harvest one sinusoid per sensor (daily temperature cycle).
    report = db.strawman("sensor_readings").fit("temperature ~ sinusoid(hour)", group_by="sensor")
    print(f"Harvested sinusoid per sensor: R^2 = {report.r_squared:.3f}, accepted = {report.accepted}")

    # Gap filling: predict a reading that was dropped.
    model = report.model
    sensor_id = 3
    fit = model.result_for_group((sensor_id,))
    predicted = fit.predict({"hour": np.array([100.0])})[0]
    offset, amplitude = dataset.truths[sensor_id]
    truth = dataset.config.base_temperature + offset + amplitude * np.sin(2 * np.pi * (100.0 - 9.0) / 24.0)
    print(f"Gap fill, sensor {sensor_id} @ hour 100: model {predicted:.2f} C vs generating curve {truth:.2f} C")

    # Compare storage footprints against the related-work representations.
    captured_bytes = model.stored_byte_size()
    view = mauvedb.build_regression_view(table, "hour", "temperature", group_column="sensor", grid_points=48, degree=3)
    function_table = functiondb.build_function_table(table, "hour", "temperature", group_column="sensor", num_segments=14, degree=2)
    print("\nStorage footprint of each representation:")
    print(f"  raw readings                 : {table.byte_size():>9} bytes")
    print(f"  captured sinusoid parameters : {captured_bytes:>9} bytes")
    print(f"  MauveDB-style gridded view   : {view.byte_size():>9} bytes")
    print(f"  FunctionDB piecewise table   : {function_table.byte_size():>9} bytes")

    compressed = db.compress_table("sensor_readings", quantisation_step=0.05)
    print(f"\nSemantic compression with 0.05 C tolerance: {compressed.stats.summary()}")

    # Approximate queries over the sensor fleet.
    comparison = db.compare_sql(
        "SELECT sensor, avg(temperature) AS mean_temp FROM sensor_readings "
        "WHERE sensor IN (1, 2, 3, 4) GROUP BY sensor ORDER BY sensor"
    )
    print(f"\nPer-sensor mean temperature, model vs exact: max relative error "
          f"{comparison['max_relative_error']:.2%} with {comparison['approx_pages_read']:.0f} pages read "
          f"(exact scan read {comparison['exact_pages_read']:.0f}).")


if __name__ == "__main__":
    main()
