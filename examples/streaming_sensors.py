"""Streaming sensors: online model maintenance across a regime change.

Run from the repo root with::

    PYTHONPATH=src python examples/streaming_sensors.py

A fleet of temperature sensors streams readings into the database.  Halfway
through, an HVAC failure shifts every sensor by several degrees — a regime
change.  The residual drift detector notices, the multiscale change-point
test localises the break, and the maintenance tick harvests fresh models
(one per regime segment plus a whole-table replacement) so approximate
queries keep answering accurately — the paper's "autonomous and proactive
harvesting" under continuous ingestion.
"""

from __future__ import annotations

import numpy as np

from repro import LawsDatabase

NUM_SENSORS = 6
HOURS_PER_REGIME = 240
NOISE_STD = 0.15
SHIFT_DEGREES = 9.0
SQL = "SELECT avg(temperature) AS fleet_mean FROM sensor_feed"


def reading(sensor: int, hour: float, shifted: bool, rng: np.random.Generator) -> float:
    base = 12.0 + sensor + 0.02 * hour
    if shifted:
        base += SHIFT_DEGREES
    return base + float(rng.normal(0.0, NOISE_STD))


def main() -> None:
    rng = np.random.default_rng(23)
    db = LawsDatabase(ingest_batch_size=NUM_SENSORS * 40)

    # Bootstrap: the first regime is already stored; harvest one model per sensor.
    data = {"sensor": [], "hour": [], "temperature": []}
    for hour in range(HOURS_PER_REGIME):
        for sensor in range(1, NUM_SENSORS + 1):
            data["sensor"].append(sensor)
            data["hour"].append(float(hour))
            data["temperature"].append(reading(sensor, hour, shifted=False, rng=rng))
    db.load_dict("sensor_feed", data)
    report = db.fit("sensor_feed", "temperature ~ linear(hour)", group_by="sensor")
    print(f"Bootstrapped {db.table('sensor_feed').num_rows} readings from "
          f"{NUM_SENSORS} sensors; harvested per-sensor model "
          f"(R^2 = {report.r_squared:.3f}, accepted = {report.accepted})")

    target = db.watch("sensor_feed", "temperature", order_column="hour")
    print(f"Watching sensor_feed.temperature (drift threshold "
          f"{target.detector.threshold:.3f} C RMS residual)\n")

    # Stream the second regime: the HVAC failure hits at hour HOURS_PER_REGIME.
    for hour in range(HOURS_PER_REGIME, 2 * HOURS_PER_REGIME):
        rows = [
            (sensor, float(hour), reading(sensor, hour, shifted=True, rng=rng))
            for sensor in range(1, NUM_SENSORS + 1)
        ]
        for batch in db.ingest("sensor_feed", rows):
            verdict = target.last_verdict
            print(f"  batch rows [{batch.start_row}, {batch.end_row}): {verdict.describe()}")
    db.flush_ingest()

    # Before maintenance: the stale pre-failure model is still serving (deprioritized,
    # not hidden) and its full-range answer is off by the unmodelled shift.
    exact = db.sql(SQL).table.row(0)[0]
    stale = db.approximate_sql(SQL)
    print(f"\nBefore maintain(): fleet mean approx {stale.scalar():.2f} C "
          f"vs exact {exact:.2f} C (stale model#{stale.used_model_ids[0]})")

    maintenance = db.maintain()
    print("\nMaintenance tick:")
    for action in maintenance.actions:
        print(f"  {action.describe()}")

    print("\nModel store after maintenance:")
    for model in db.captured_models("sensor_feed"):
        predicate = model.coverage.predicate_sql or "whole table"
        print(f"  {model.describe()}  [{predicate}]")

    fresh = db.approximate_sql(SQL)
    estimate = fresh.error_estimate("fleet_mean")
    print(f"\nAfter maintain(): fleet mean approx {fresh.scalar():.2f} C vs exact {exact:.2f} C "
          f"(+/- {estimate.standard_error:.3f} reported, model#{fresh.used_model_ids[0]})")
    print(f"Absolute error shrank from {abs(stale.scalar() - exact):.2f} C "
          f"to {abs(fresh.scalar() - exact):.3f} C.")
    print(f"\nIngest accounting: {db.ingest_stats('sensor_feed').summary()}")


if __name__ == "__main__":
    main()
