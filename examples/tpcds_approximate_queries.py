"""TPC-DS-lite: the evaluation the paper proposes in its concluding remarks.

Run with::

    python examples/tpcds_approximate_queries.py

Generates a star schema with planted regularities (category mark-ups, a
global discount, seasonal demand), harvests linear models of those laws, and
answers benchmark-style aggregate queries three ways: exactly, from the
captured models, and from a sampling baseline — reporting error and the
pages each approach reads.
"""

from __future__ import annotations

from repro import LawsDatabase
from repro.baselines import sampling
from repro.bench.reporting import relative_error
from repro.datasets import tpcds_lite


def main() -> None:
    dataset = tpcds_lite.generate(num_items=150, num_stores=12, num_days=365, sales_per_day_per_store=8)
    db = LawsDatabase()
    tpcds_lite.load_into(db.database, dataset)
    sales = db.table("store_sales")
    print(f"store_sales: {sales.num_rows} rows ({sales.byte_size() / 1e6:.1f} MB nominal), "
          f"planted discount = {dataset.discount}")

    # Harvest the pricing laws the generator planted.
    for formula in (
        "sales_price ~ linear(list_price)",
        "list_price ~ linear(wholesale_cost)",
        "net_profit ~ linear(sales_price, wholesale_cost, quantity)",
    ):
        report = db.fit("store_sales", formula)
        print(f"  harvested {formula!r}: R^2 = {report.r_squared:.3f}, accepted = {report.accepted}")

    # The fitted slope of sales_price ~ list_price recovers the planted discount.
    model = db.best_model("store_sales", "sales_price")
    slope = model.fit.param_dict["beta_list_price"]
    print(f"Recovered discount factor: {slope:.3f} (planted {dataset.discount})\n")

    queries = [
        ("total revenue", "SELECT sum(sales_price) AS v FROM store_sales"),
        ("average sale price", "SELECT avg(sales_price) AS v FROM store_sales"),
        ("maximum sale price", "SELECT max(sales_price) AS v FROM store_sales"),
    ]
    sampler = sampling.UniformSampler(sales, fraction=0.01, seed=3)

    header = f"{'query':<22} {'exact':>14} {'model':>14} {'model err':>10} {'sample':>14} {'sample err':>11}"
    print(header)
    print("-" * len(header))
    for name, sql in queries:
        exact = db.sql(sql).scalar()
        approx = db.approximate_sql(sql)
        model_value = approx.scalar()
        function = sql.split("(")[0].split()[-1].lower()
        sample_value = sampler.estimate(function, "sales_price").value
        print(
            f"{name:<22} {exact:>14.2f} {model_value:>14.2f} {relative_error(model_value, exact):>10.2%} "
            f"{sample_value:>14.2f} {relative_error(sample_value, exact):>11.2%}"
        )
    print("\nModel answers read 0 data pages; the exact answers scan the fact table, "
          "and the sample needs its 1% synopsis stored and maintained.")

    # A grouped query falls back to exact execution (documented behaviour):
    grouped = db.approximate_sql(tpcds_lite.BENCHMARK_QUERIES[2][1])
    print(f"\nMonthly-revenue join query route: {grouped.route} ({grouped.reason})")


if __name__ == "__main__":
    main()
