"""Accuracy contracts walkthrough: one query entry point, cost-routed.

Demonstrates the unified planner end to end on a sensor-style workload:

1. ``query()`` with an error budget — the planner serves from captured
   models when the predicted error fits, exactly otherwise;
2. ``explain()`` — every candidate route with predicted cost and error;
3. pinned modes and deadlines;
4. the closed feedback loop — the data shifts, sampled verification
   catches the model lying, the maintenance tick refits it.

Run with::

    PYTHONPATH=src python examples/accuracy_contracts.py
"""

from __future__ import annotations

import numpy as np

from repro import AccuracyContract, LawsDatabase


def build_database(seed: int = 7) -> LawsDatabase:
    rng = np.random.default_rng(seed)
    db = LawsDatabase(verify_sample_fraction=0.0)  # we sample explicitly below
    rows = 4000
    sensor = rng.integers(0, 8, rows)
    load = rng.integers(0, 6, rows).astype(float)
    # Each sensor's temperature follows its own linear law of the load.
    temperature = 15.0 + 2.5 * sensor + 1.8 * load + rng.normal(0.0, 0.3, rows)
    db.load_dict(
        "readings",
        {
            "sensor": [int(v) for v in sensor],
            "load": [float(v) for v in load],
            "temperature": [float(v) for v in temperature],
        },
    )
    report = db.fit("readings", "temperature ~ linear(load)", group_by="sensor")
    print(f"captured model #{report.model.model_id}: {report.quality.summary()}")
    return db


def main() -> None:
    db = build_database()
    sql = "SELECT sensor, avg(temperature) AS m FROM readings GROUP BY sensor ORDER BY sensor"

    print("\n=== 1. An error budget admits the model path ===")
    answer = db.query(sql, AccuracyContract(max_relative_error=0.05))
    print(f"route taken: {answer.route_taken}  (reason: {answer.plan.reason})")
    for row in answer.rows()[:3]:
        print("  ", row)

    print("\n=== 2. EXPLAIN: candidates, predicted cost and error ===")
    print(db.explain(sql, AccuracyContract(max_relative_error=0.05)))

    print("\n=== 3. A budget the models cannot meet pins exact execution ===")
    strict = db.query(sql, AccuracyContract(max_relative_error=1e-9))
    print(f"route taken: {strict.route_taken}  (reason: {strict.plan.reason})")

    print("\n=== 4. Deadlines prefer the model path when exact would be late ===")
    print(
        db.query(sql, AccuracyContract(deadline_ms=1000.0)).route_taken,
        "— generous deadline, cost decides;",
    )

    print("\n=== 5. The feedback loop: drifted data demotes the model ===")
    rng = np.random.default_rng(11)
    rows = 36000
    sensor = rng.integers(0, 8, rows)
    load = rng.integers(0, 6, rows).astype(float)
    # A recalibration quadruples the load coefficient: the captured law
    # no longer holds for the (now dominant) new regime.
    temperature = 15.0 + 2.5 * sensor + 7.2 * load + rng.normal(0.0, 0.3, rows)
    db.watch("readings", "temperature")
    db.insert_rows(
        "readings",
        list(zip((int(v) for v in sensor), (float(v) for v in load), temperature.tolist())),
    )
    audit = AccuracyContract(max_relative_error=0.5, verify_fraction=1.0)
    for i in range(3):
        audited = db.query(sql, audit)
        print(
            f"  audited run {i + 1}: route={audited.route_taken}, "
            f"observed error {audited.observed_relative_error:.1%}"
            + (
                f" -> demoted models {audited.feedback.demoted_model_ids}"
                if audited.feedback and audited.feedback.demoted_model_ids
                else ""
            )
        )
    report = db.maintain()
    print("maintenance:", report.summary())
    healthy = db.query(sql, audit)
    print(
        f"after refit: route={healthy.route_taken}, "
        f"observed error {healthy.observed_relative_error:.2%}"
    )


if __name__ == "__main__":
    main()
