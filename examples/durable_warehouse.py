"""Durable warehouse walkthrough: checkpoint, crash, cold start, archive.

Run from the repo root with::

    PYTHONPATH=src python examples/durable_warehouse.py

Acts out the full durability story of the model warehouse:

1. a database is opened on disk, loaded with radio-source measurements and
   a per-source power-law model is harvested and checkpointed;
2. a stream of new measurements lands in the WAL — then the process "dies"
   with the log's tail torn mid-record;
3. a fresh process reopens the directory: the snapshot loads, the intact
   WAL prefix replays, the warehouse rehydrates the models, and queries are
   served from models immediately — no refit, no raw reload;
4. the cold historical rows are archived to the model-only tier: queries
   over them are answered purely from the warehouse models with zero
   simulated raw-page IO, and a contract the models cannot honour is
   refused with an explicit reason instead of a silently wrong answer.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro import AccuracyContract, LawsDatabase

NUM_SOURCES = 8
BASE_ROWS = 4000
STREAMED_ROWS = 1500
FREQUENCIES = [0.12, 0.15, 0.16, 0.18]


def measurement_batch(rng: np.random.Generator, count: int, start: int) -> list[tuple]:
    rows = []
    for i in range(count):
        source = int(rng.integers(0, NUM_SOURCES))
        frequency = float(rng.choice(FREQUENCIES))
        intensity = float(
            (2.0 + 0.5 * source) * frequency**-0.7 * (1.0 + 0.02 * rng.standard_normal())
        )
        rows.append((start + i, source, frequency, intensity))
    return rows


def main() -> None:
    rng = np.random.default_rng(11)
    root = Path(tempfile.mkdtemp(prefix="laws_warehouse_")) / "db"

    # -- 1. build, harvest, checkpoint -------------------------------------------
    db = LawsDatabase.open(root)
    base = measurement_batch(rng, BASE_ROWS, start=0)
    db.load_dict(
        "measurements",
        {
            "seq": [r[0] for r in base],
            "source": [r[1] for r in base],
            "frequency": [r[2] for r in base],
            "intensity": [r[3] for r in base],
        },
    )
    report = db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
    print(f"harvested: {report.summary()}")
    print(db.checkpoint().describe())

    # -- 2. stream into the WAL, then die mid-write ------------------------------
    db.ingest("measurements", measurement_batch(rng, STREAMED_ROWS, start=BASE_ROWS), flush=True)
    wal_path = db.durable.wal.path
    db.durable.wal.close()
    torn = wal_path.stat().st_size - 17
    with open(wal_path, "r+b") as handle:  # the crash: a record torn mid-frame
        handle.truncate(torn)
    print(f"\nsimulated crash: WAL torn to {torn} bytes (no checkpoint, no close)")

    # -- 3. cold start ------------------------------------------------------------
    cold = LawsDatabase.open(root)
    assert cold.last_recovery is not None
    print(f"recovery: {cold.last_recovery.describe()}")
    # The replayed WAL rows marked the restored model stale (data changed
    # since capture); one revalidation pass re-scores it on the grown table
    # and returns it to active serving — exactly what a maintain() tick does.
    cold.lifecycle.revalidate("measurements")
    print(f"after revalidation: {cold.captured_models()[0].describe()}")
    sql = "SELECT source, AVG(intensity) AS mean_intensity FROM measurements GROUP BY source"
    answer = cold.query(sql, AccuracyContract(max_relative_error=0.10, verify_fraction=0.0))
    print(
        f"cold-start query served via {answer.route_taken!r} "
        f"({answer.approx.io.get('pages_read', 0.0):.0f} raw pages read)"
    )

    # -- 4. the model-only tier ----------------------------------------------------
    archive_report = cold.archive("measurements", f"seq < {BASE_ROWS}")
    print(f"\n{archive_report.describe()}")
    served = cold.query(sql, AccuracyContract(max_relative_error=0.10, verify_fraction=0.0))
    print(
        f"after archiving, query served via {served.route_taken!r} with "
        f"{served.approx.io.get('pages_read', 0.0):.0f} raw pages read (models only)"
    )
    try:
        cold.query(sql, AccuracyContract(mode="exact"))
    except Exception as exc:
        print(f"exact contract honestly refused:\n  {exc}")
    storage = cold.storage_report()
    table_report = storage["tables"]["measurements"]
    print(
        f"storage: {table_report['raw_bytes']} live bytes, "
        f"{table_report['archived_bytes']} archived bytes, "
        f"{table_report['model_bytes']} model bytes"
    )

    cold.checkpoint()
    cold.close()
    shutil.rmtree(root.parent)


if __name__ == "__main__":
    main()
