"""Quickstart: harvest a model and answer queries from it.

Run with::

    python examples/quickstart.py

The script loads a small synthetic LOFAR-style table, fits the paper's power
law ``I = p * nu**alpha`` per source through a strawman frame (so the fit is
intercepted and captured by the database), and then answers the paper's two
example queries from the captured model alone — no data pages read.
"""

from __future__ import annotations

from repro import LawsDatabase
from repro.datasets import lofar


def main() -> None:
    # 1. Load data into the model-harvesting database.
    dataset = lofar.generate(num_sources=500, observations_per_source=40, seed=1)
    db = LawsDatabase()
    db.register_table(dataset.to_table("measurements"))
    print(f"Loaded {dataset.num_rows} measurements of {dataset.num_sources} sources "
          f"({db.table('measurements').byte_size() / 1e6:.1f} MB nominal).")

    # 2. Fit the user's model through the strawman frame (Figure 2, steps 1-3).
    frame = db.strawman("measurements")
    report = frame.fit("intensity ~ powerlaw(frequency)", group_by="source")
    print(f"Fitted power law per source: R^2 = {report.r_squared:.3f}, "
          f"residual SE = {report.residual_standard_error:.4f}, accepted = {report.accepted}")
    print("Stored parameter table (first rows):")
    print(report.parameter_table().to_text(limit=5))

    # 3. The paper's point query, answered from the model with error bounds.
    answer = db.approximate_sql(
        "SELECT intensity FROM measurements WHERE source = 42 AND frequency = 0.15"
    )
    estimate = answer.error_estimate("intensity")
    print(f"\nPoint query -> {estimate} (route: {answer.route}, pages read: {answer.io['pages_read']:.0f})")

    # 4. The paper's selection query: which sources are bright at 0.15 GHz?
    selection = db.approximate_sql(
        "SELECT source, intensity FROM measurements WHERE frequency = 0.15 AND intensity > 0.5"
    )
    print(f"Selection query -> {selection.table.num_rows} bright sources "
          f"(generated {selection.virtual_rows_generated} virtual rows, pages read: "
          f"{selection.io['pages_read']:.0f})")

    # 5. Compare an aggregate against exact execution.
    comparison = db.compare_sql("SELECT avg(intensity) AS mean_flux FROM measurements WHERE frequency = 0.18")
    approx = comparison["approximate"].scalar()
    exact = comparison["exact"].scalar()
    print(f"\navg(intensity) at 0.18 GHz: model = {approx:.4f}, exact = {exact:.4f} "
          f"(relative error {abs(approx - exact) / exact:.2%}; "
          f"pages read {comparison['approx_pages_read']:.0f} vs {comparison['exact_pages_read']:.0f})")

    # 6. Storage: the captured model is a few percent of the raw table (Table 1).
    compressed = db.compress_table("measurements")
    print(f"\nSemantic compression: {compressed.stats.summary()}")


if __name__ == "__main__":
    main()
